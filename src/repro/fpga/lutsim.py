"""Functional verification of the technology mapping.

A mapper that merely *counts* LUTs could be wrong in ways area numbers
never reveal.  This module makes the mapping executable: every selected
LUT is materialized with its truth table (by exhaustively evaluating its
logic cone over the chosen cut's inputs), and :func:`verify_mapping`
co-simulates the LUT network against the original gate netlist on random
input/state vectors, comparing every visible wire (flip-flop D/enable/
clear pins and primary outputs).

This closes the loop on the Table 2 substitution: the slice counts are
derived from a cover that provably computes the same functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import random

from repro.errors import HardwareModelError
from repro.fpga.techmap import TechMapResult, technology_map
from repro.hdl.gates import GATE_EVAL, GateKind
from repro.hdl.netlist import Circuit

__all__ = ["MappedLUT", "extract_luts", "verify_mapping"]


@dataclass(frozen=True)
class MappedLUT:
    """One materialized LUT: ordered input wires + truth-table mask.

    ``mask`` bit ``k`` is the output for the input assignment whose bit
    ``i`` (of ``k``) drives ``inputs[i]``.
    """

    output: int  # wire index
    inputs: Tuple[int, ...]  # leaf wire indices (<= 4)
    mask: int

    def evaluate(self, values: Dict[int, int]) -> int:
        k = 0
        for i, w in enumerate(self.inputs):
            k |= values[w] << i
        return (self.mask >> k) & 1


def _cone_gates(circuit: Circuit, root: int, cut, alias) -> List[int]:
    """Gates of ``root``'s cone, in evaluation order (inputs first)."""

    def resolve(w: int) -> int:
        while w in alias:
            w = alias[w]
        return w

    producer = {
        g.output: gi
        for gi, g in enumerate(circuit.gates)
        if g.kind is not GateKind.BUF
    }
    member: List[int] = []
    seen = set()

    def visit(gi: int) -> None:
        if gi in seen:
            return
        seen.add(gi)
        for w in circuit.gates[gi].inputs:
            w = resolve(w)
            if w in cut:
                continue
            src = producer.get(w)
            if src is not None:
                visit(src)
        member.append(gi)

    visit(root)
    return member


def extract_luts(circuit: Circuit, mapping: TechMapResult = None) -> List[MappedLUT]:
    """Materialize every selected LUT of a mapping with its truth table."""
    m = mapping if mapping is not None else technology_map(circuit)
    alias = m.alias
    const0, const1 = circuit.const0.index, circuit.const1.index

    def resolve(w: int) -> int:
        while w in alias:
            w = alias[w]
        return w

    luts: List[MappedLUT] = []
    for root, cut in m.cut_of_root.items():
        leaves = tuple(sorted(cut))
        if len(leaves) > 4:
            raise HardwareModelError(f"cut of root {root} exceeds 4 inputs")
        cone = _cone_gates(circuit, root, cut, alias)
        mask = 0
        for k in range(1 << len(leaves)):
            values: Dict[int, int] = {const0: 0, const1: 1}
            for i, w in enumerate(leaves):
                values[w] = (k >> i) & 1
            for gi in cone:
                g = circuit.gates[gi]
                try:
                    ins = [values[resolve(w)] for w in g.inputs]
                except KeyError as exc:
                    raise HardwareModelError(
                        f"cut of root {root} does not cover support wire "
                        f"{circuit.wire_names[exc.args[0]]!r} (bad mapping)"
                    ) from exc
                values[g.output] = GATE_EVAL[g.kind](*ins)
            if values[circuit.gates[root].output]:
                mask |= 1 << k
        luts.append(MappedLUT(output=circuit.gates[root].output, inputs=leaves, mask=mask))
    return luts


def verify_mapping(
    circuit: Circuit,
    mapping: TechMapResult = None,
    *,
    vectors: int = 32,
    seed: int = 0,
) -> int:
    """Co-simulate LUT network vs gate netlist on random vectors.

    Free wires (primary inputs and flip-flop outputs) get random values;
    both models settle combinationally; every visible wire (FF data/
    enable/clear pins, primary outputs) must agree.  Returns the number of
    wires checked (x vectors); raises :class:`HardwareModelError` on any
    mismatch.
    """
    m = mapping if mapping is not None else technology_map(circuit)
    luts = extract_luts(circuit, m)
    alias = m.alias

    def resolve(w: int) -> int:
        while w in alias:
            w = alias[w]
        return w

    # Free wires: anything a LUT leaf can be that is not a LUT output.
    lut_outputs = {l.output for l in luts}
    producer_gate = {
        g.output for g in circuit.gates if g.kind is not GateKind.BUF
    }
    free: set = set()
    for l in luts:
        for w in l.inputs:
            if w not in lut_outputs:
                free.add(w)
    # Visible wires to compare.
    visible: List[int] = []
    for f in circuit.dffs:
        visible.append(resolve(f.d))
        if f.enable is not None:
            visible.append(resolve(f.enable))
        if f.clear is not None:
            visible.append(resolve(f.clear))
    for w in circuit.outputs.values():
        visible.append(resolve(w))
    # FF outputs / primary inputs that feed visible wires directly must be
    # seeded too.
    for w in visible:
        if w not in producer_gate and w not in (circuit.const0.index, circuit.const1.index):
            free.add(w)

    # Topological order of LUTs by input dependency.
    order: List[MappedLUT] = []
    placed: set = set()
    pending = list(luts)
    guard = 0
    while pending:
        progressed = False
        rest = []
        for l in pending:
            if all(w in placed or w not in lut_outputs for w in l.inputs):
                order.append(l)
                placed.add(l.output)
                progressed = True
            else:
                rest.append(l)
        pending = rest
        guard += 1
        if not progressed:
            raise HardwareModelError("cyclic LUT network (mapping bug)")
        if guard > len(luts) + 2:
            raise HardwareModelError("LUT ordering did not converge")

    from repro.hdl.simulator import Simulator

    sim = Simulator(circuit)
    rng = random.Random(seed)
    checked = 0
    for _ in range(vectors):
        values: Dict[int, int] = {
            circuit.const0.index: 0,
            circuit.const1.index: 1,
        }
        for w in free:
            values[w] = rng.getrandbits(1)
        # Gate-level reference: poke free wires, settle.
        for w, v in values.items():
            sim.values[w] = v
        sim.settle()
        # LUT network evaluation.
        for l in order:
            values[l.output] = l.evaluate(values)
        for w in visible:
            ref = sim.values[w]
            # A visible wire is a LUT output, a seeded free wire, or a
            # constant — all present in `values`.
            got = values.get(w, ref)
            if got != ref:
                raise HardwareModelError(
                    f"LUT network disagrees with netlist on wire "
                    f"{circuit.wire_names[w]!r}: {got} != {ref}"
                )
            checked += 1
    return checked
