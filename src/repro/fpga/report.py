"""Regeneration of the paper's Table 1 and Table 2.

Each row combines three ingredients, none of which is taken from the
paper's results:

* **cycle counts** — measured on the cycle-accurate simulators (and equal
  to the closed-form ``3l+4`` / ``4.5l²+12l+12`` formulas, which the test
  suite verifies independently);
* **slices** — the Virtex-E technology mapping of the fully elaborated
  MMMC netlist;
* **Tp** — the component-delay timing model over the mapped critical path.

The paper's reported values ride along (from
:mod:`repro.fpga.calibration`) for the side-by-side comparison printed by
the benchmarks and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.fpga.calibration import PAPER_TABLE1, PAPER_TABLE2
from repro.fpga.techmap import TechMapResult, technology_map
from repro.fpga.timing_model import TimingReport, estimate_clock_period
from repro.fpga.virtex import V812E, VirtexEDevice
from repro.systolic.mmmc_netlist import build_mmmc
from repro.systolic.timing import average_exponentiation_cycles, mmm_cycles

__all__ = [
    "ImplementationPoint",
    "implementation_report",
    "table1_rows",
    "table2_rows",
]


@dataclass(frozen=True)
class ImplementationPoint:
    """Model results for one bit length (one row of the paper's tables)."""

    l: int
    slices: int
    luts: int
    flip_flops: int
    tp_ns: float
    lut_depth: int
    mmm_cycles: int
    t_mmm_us: float
    ta_slice_ns: float
    avg_exp_cycles: float
    avg_exp_ms: float
    # Paper columns (None where the paper has no row).
    paper_slices: Optional[int] = None
    paper_tp_ns: Optional[float] = None
    paper_t_mmm_us: Optional[float] = None
    paper_ta: Optional[float] = None
    paper_avg_exp_ms: Optional[float] = None


_CACHE: Dict = {}


def implementation_report(
    l: int,
    mode: str = "paper",
    device: VirtexEDevice = V812E,
    *,
    optimize_netlist: bool = False,
) -> ImplementationPoint:
    """Elaborate, map and time the full MMMC for bit length ``l``.

    ``mode="paper"`` (default here, unlike the simulators) reproduces the
    printed architecture so the area/latency comparison is apples to
    apples; pass ``mode="corrected"`` to cost the fixed design.
    ``optimize_netlist=True`` runs the constant-fold/CSE/dead-code passes
    before mapping (the ablation of how much slack our structural
    elaboration leaves for synthesis).
    """
    key = (l, mode, device.name, optimize_netlist)
    if key in _CACHE:
        return _CACHE[key]
    ports = build_mmmc(l, mode=mode)
    circuit = ports.circuit
    if optimize_netlist:
        from repro.hdl.optimize import optimize

        circuit = optimize(circuit).circuit
    mapped: TechMapResult = technology_map(circuit, device)
    timing: TimingReport = estimate_clock_period(
        circuit, l, device, mapped=mapped
    )
    cycles = mmm_cycles(l) + (1 if mode == "corrected" else 0)
    tp = timing.clock_period_ns
    avg_cycles = average_exponentiation_cycles(l)
    p1 = PAPER_TABLE1.get(l)
    p2 = PAPER_TABLE2.get(l)
    point = ImplementationPoint(
        l=l,
        slices=mapped.slices,
        luts=mapped.luts,
        flip_flops=mapped.flip_flops,
        tp_ns=tp,
        lut_depth=timing.lut_depth,
        mmm_cycles=cycles,
        t_mmm_us=cycles * tp / 1e3,
        ta_slice_ns=mapped.slices * tp,
        avg_exp_cycles=avg_cycles,
        avg_exp_ms=avg_cycles * tp / 1e6,
        paper_slices=p2.slices if p2 else None,
        paper_tp_ns=(p2.tp_ns if p2 else (p1.tp_ns if p1 else None)),
        paper_t_mmm_us=p2.t_mmm_us if p2 else None,
        paper_ta=p2.ta_slice_ns if p2 else None,
        paper_avg_exp_ms=p1.avg_exp_ms if p1 else None,
    )
    _CACHE[key] = point
    return point


def table1_rows(
    bit_lengths: Sequence[int] = (32, 128, 256, 512, 1024), mode: str = "paper"
) -> List[ImplementationPoint]:
    """Rows of Table 1: Tp and average exponentiation time per bit length."""
    return [implementation_report(l, mode) for l in bit_lengths]


def table2_rows(
    bit_lengths: Sequence[int] = (32, 64, 128, 256, 512, 1024), mode: str = "paper"
) -> List[ImplementationPoint]:
    """Rows of Table 2: slices, Tp, TA and T_MMM per bit length."""
    return [implementation_report(l, mode) for l in bit_lengths]
