"""Clock-period estimation from the mapped netlist.

The paper's central timing claim (Section 4.3): the critical path of the
systolic array is one regular cell — ``2·T_FA(cin→cout) + T_HA(cin→cout)``
— and therefore *independent of the bit length*; Table 2's Tp column shows
~9.2–10.5 ns across l = 32..1024 on the V812E-8.

Our model computes the register-to-register critical path of the *array
core* in LUT levels from the technology-mapped netlist, then applies the
Virtex-E component delays:

    Tp = T_cko + depth · (T_lut + T_net(l)) + T_setup

``T_net(l)`` grows weakly (logarithmically) with the design width,
modelling the routing-congestion effect that makes the paper's Tp drift
from 9.2 ns to 10.5 ns.  Control-path arithmetic (the cycle counter and
its comparators) is assumed mapped onto the dedicated carry chains, as
real synthesis does — its per-bit carry delay is ~0.06 ns, so a
``log2(3l)``-bit counter never becomes the critical path (the report
includes that path for transparency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.techmap import TechMapResult, technology_map
from repro.fpga.virtex import V812E, VirtexEDevice
from repro.hdl.netlist import Circuit

__all__ = ["TimingReport", "estimate_clock_period"]


@dataclass(frozen=True)
class TimingReport:
    """Clock-period estimate for one mapped circuit."""

    device: str
    design_bits: int
    lut_depth: int
    clock_period_ns: float
    frequency_mhz: float
    carry_chain_path_ns: float

    @property
    def tp_ns(self) -> float:
        return self.clock_period_ns


def estimate_clock_period(
    circuit: Circuit,
    design_bits: int,
    device: VirtexEDevice = V812E,
    mapped: TechMapResult = None,
    array_prefix: str = "arr",
) -> TimingReport:
    """Estimate Tp for ``circuit`` (an MMMC or array netlist).

    Parameters
    ----------
    design_bits:
        The operand bit length ``l`` (drives the net-delay model).
    mapped:
        Optional pre-computed technology mapping (avoids re-mapping).
    array_prefix:
        Wire-name prefix of the array core; the LUT depth is measured over
        LUTs whose output wire carries this prefix, which is the paper's
        critical path.  Falls back to the whole circuit's depth if no such
        wires exist.
    """
    m = mapped if mapped is not None else technology_map(circuit, device)
    # Depth over the array core only (counter/comparator ride carry chains).
    core_depth = 0
    for root, depth in m.depth_by_root.items():
        name = circuit.wire_names[circuit.gates[root].output]
        if name.startswith(array_prefix):
            core_depth = max(core_depth, depth)
    if core_depth == 0:
        core_depth = m.lut_depth
    t_net = device.net_delay_ns(design_bits)
    tp = (
        device.t_cko_ns
        + core_depth * (device.t_lut_ns + t_net)
        + device.t_setup_ns
    )
    # Control path on the carry chain: one LUT + w carry bits + routing.
    w = max((3 * design_bits + 5).bit_length(), 1)
    carry_path = (
        device.t_cko_ns
        + device.t_lut_ns
        + w * device.t_carry_ns
        + t_net
        + device.t_setup_ns
    )
    tp = max(tp, carry_path)
    return TimingReport(
        device=device.name,
        design_bits=design_bits,
        lut_depth=core_depth,
        clock_period_ns=tp,
        frequency_mhz=1000.0 / tp,
        carry_chain_path_ns=carry_path,
    )
