"""Gate netlists of the four cell types, exactly as drawn in Fig. 1.

Each builder attaches one cell to an existing :class:`repro.hdl.Circuit`
and returns the output wires.  The gate inventories match the paper:

=============  =============================  ==========================
cell           paper inventory                decomposition used here
=============  =============================  ==========================
regular (a)    2 FA + 1 HA + 2 AND            FA(xy, mn, c0_in) → s1;
                                              HA(s1, t_in) → t;
                                              FA(c1_in, cA, cB) → c0, c1
rightmost (b)  1 AND + 1 OR + 1 XOR           m = t_in ⊕ xy; c0 = t_in ∨ xy
1st-bit (c)    1 FA + 2 HA + 2 AND            FA(xy, mn, c0_in) → s1;
                                              HA(s1, t_in) → t;
                                              HA(cA, cB) → c0, c1
leftmost (d)   1 FA + 1 AND + 1 XOR           FA(t_in, xy, c0_in) → t;
                                              t_next = carry ⊕ c1_in
=============  =============================  ==========================

where FA = 2 XOR + 2 AND + 1 OR and HA = 1 XOR + 1 AND
(see :mod:`repro.hdl.gates`).  Exhaustive equivalence against the
behavioral models in :mod:`repro.systolic.cells` is enforced by the test
suite, including the leftmost cell's reliance on the ``T < 2N`` invariant
(its XOR is only correct on the reachable input set).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.hdl.gates import full_adder, half_adder
from repro.hdl.netlist import Circuit, Wire

__all__ = [
    "RegularCellWires",
    "RightmostCellWires",
    "FirstBitCellWires",
    "LeftmostCellWires",
    "build_regular_cell",
    "build_rightmost_cell",
    "build_first_bit_cell",
    "build_leftmost_cell",
    "build_no_modulus_cell",
    "build_top_cell",
]


class RegularCellWires(NamedTuple):
    t: Wire
    c0: Wire
    c1: Wire


class RightmostCellWires(NamedTuple):
    m: Wire
    c0: Wire


class FirstBitCellWires(NamedTuple):
    t: Wire
    c0: Wire
    c1: Wire


class LeftmostCellWires(NamedTuple):
    t: Wire
    t_next: Wire
    # Adder carry feeding the t_next XOR.  Not a new gate — a tap on the
    # existing FA/HA carry so simulation wrappers can detect the lost-carry
    # overflow (carry AND c1_in is exactly the ``row sum >= 4`` condition
    # the behavioral model raises on) without perturbing the gate census.
    carry: Wire


def build_regular_cell(
    c: Circuit,
    t_in: Wire,
    x: Wire,
    y: Wire,
    m: Wire,
    n: Wire,
    c0_in: Wire,
    c1_in: Wire,
    name: str = "cell",
) -> RegularCellWires:
    """Fig. 1(a): 2 FA + 1 HA + 2 AND computing Eq. (4).

    Weight-1 plane: the partial products ``x·y`` and ``m·n`` join ``c0_in``
    in the first full adder; its sum meets ``t_in`` in the half adder,
    producing the ``t`` output.  Weight-2 plane: the two carries of those
    adders join ``c1_in`` in the second full adder, producing ``c0`` (its
    sum, weight 2) and ``c1`` (its carry, weight 4).
    """
    xy = c.and_(x, y, name=f"{name}.xy")
    mn = c.and_(m, n, name=f"{name}.mn")
    s1, ca = full_adder(c, xy, mn, c0_in, name=f"{name}.fa1")
    t, cb = half_adder(c, s1, t_in, name=f"{name}.ha")
    c0, c1 = full_adder(c, ca, cb, c1_in, name=f"{name}.fa2")
    return RegularCellWires(t=t, c0=c0, c1=c1)


def build_rightmost_cell(
    c: Circuit, t_in: Wire, x: Wire, y0: Wire, name: str = "cell0"
) -> RightmostCellWires:
    """Fig. 1(b): 1 AND + 1 OR + 1 XOR.

    Generates the quotient digit ``m = t_in ⊕ x·y0`` (Eq. 5) and the single
    carry ``c0 = t_in ∨ x·y0`` (Eq. 7); the sum bit is identically zero.
    """
    xy = c.and_(x, y0, name=f"{name}.xy")
    m = c.xor(t_in, xy, name=f"{name}.m")
    c0 = c.or_(t_in, xy, name=f"{name}.c0")
    return RightmostCellWires(m=m, c0=c0)


def build_first_bit_cell(
    c: Circuit,
    t_in: Wire,
    x: Wire,
    y1: Wire,
    m: Wire,
    n1: Wire,
    c0_in: Wire,
    name: str = "cell1",
) -> FirstBitCellWires:
    """Fig. 1(c): 1 FA + 2 HA + 2 AND computing Eq. (8).

    Identical to the regular cell except the weight-2 plane has only two
    terms (there is no ``c1_in`` from the rightmost cell), so a half adder
    replaces the second full adder.
    """
    xy = c.and_(x, y1, name=f"{name}.xy")
    mn = c.and_(m, n1, name=f"{name}.mn")
    s1, ca = full_adder(c, xy, mn, c0_in, name=f"{name}.fa")
    t, cb = half_adder(c, s1, t_in, name=f"{name}.ha1")
    c0, c1 = half_adder(c, ca, cb, name=f"{name}.ha2")
    return FirstBitCellWires(t=t, c0=c0, c1=c1)


def build_leftmost_cell(
    c: Circuit,
    t_in: Wire,
    x: Wire,
    yl: Wire,
    c0_in: Wire,
    c1_in: Wire,
    name: str = "cellL",
) -> LeftmostCellWires:
    """Fig. 1(d): 1 FA + 1 AND + 1 XOR computing Eq. (9).

    ``n_l = 0`` removes the m·n product; the FA adds ``t_in + x·y_l +
    c0_in`` and its carry is XORed with ``c1_in`` to form the top bit —
    exact because the ``T < 2N`` bound keeps the two XOR inputs from being
    1 simultaneously (asserted by the behavioral model and property tests).
    """
    xy = c.and_(x, yl, name=f"{name}.xy")
    t, carry = full_adder(c, t_in, xy, c0_in, name=f"{name}.fa")
    t_next = c.xor(carry, c1_in, name=f"{name}.tnext")
    return LeftmostCellWires(t=t, t_next=t_next, carry=carry)


# ----------------------------------------------------------------------
# Corrected-architecture cells (the reproduction's overflow fix; see the
# array-mode discussion in repro.systolic.array).
# ----------------------------------------------------------------------
def build_no_modulus_cell(
    c: Circuit,
    t_in: Wire,
    x: Wire,
    yl: Wire,
    c0_in: Wire,
    c1_in: Wire,
    name: str = "cellN",
) -> RegularCellWires:
    """Position-``l`` cell of the corrected array: 1 FA + 2 HA + 1 AND.

    A regular cell with the ``m·n`` product removed (``n_l = 0``) but full
    carry outputs, so the final carries can propagate into the extra top
    position instead of being lost.
    """
    xy = c.and_(x, yl, name=f"{name}.xy")
    s1, ca = half_adder(c, xy, c0_in, name=f"{name}.ha1")
    t, cb = half_adder(c, s1, t_in, name=f"{name}.ha2")
    c0, c1 = full_adder(c, ca, cb, c1_in, name=f"{name}.fa")
    return RegularCellWires(t=t, c0=c0, c1=c1)


def build_top_cell(
    c: Circuit,
    t_in: Wire,
    c0_in: Wire,
    c1_in: Wire,
    name: str = "cellT",
) -> LeftmostCellWires:
    """Position-``l+1`` top cell of the corrected array: 1 HA + 1 XOR.

    No ``x·y`` product (``y_{l+1} = 0``) and no modulus bit; it merely
    folds the final carries into bits ``l+1`` and ``l+2`` of the row sum.
    ``S_i < 2^{l+3}`` makes the XOR provably exact here (sum ≤ 3).
    """
    t, carry = half_adder(c, t_in, c0_in, name=f"{name}.ha")
    t_next = c.xor(carry, c1_in, name=f"{name}.tnext")
    return LeftmostCellWires(t=t, t_next=t_next, carry=carry)
