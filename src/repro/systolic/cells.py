"""Behavioral models of the four systolic cell types (paper Fig. 1).

Each function is a pure combinational model of one cell, implementing the
digit recurrences of Section 4.2.  The digit convention: ``t_{i,j}`` is bit
``j`` of the *undivided* iteration sum ``S_i = T_{i-1} + x_i·Y + m_i·N``;
the division by two of Algorithm 2 is realized by wiring — cell ``j`` of
row ``i`` reads ``t_{i-1, j+1}``, i.e. bit ``j`` of ``T_{i-1} = S_{i-1}/2``.
This is why ``t_{i,0}`` is identically zero (S_i is even by construction of
``m_i``) and why the multiplier's result lives in bits ``t[1..l+1]``.

Carry weights: a cell at position ``j`` outputs ``c0`` with weight ``2^(j+1)``
and ``c1`` with weight ``2^(j+2)``; the neighbouring cell ``j+1`` consumes
them as ``c0_in`` (weight 1 in its own frame) and ``c1_in`` (weight 2) —
Eq. (4)'s ``2·c1_{i,j-1} + c0_{i,j-1}`` terms.

All functions validate that their inputs are single bits and return plain
ints, so they double as the oracle for exhaustive gate-netlist equivalence
tests.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import ParameterError, SimulationError

__all__ = [
    "RegularOut",
    "RightmostOut",
    "FirstBitOut",
    "LeftmostOut",
    "regular_cell",
    "rightmost_cell",
    "first_bit_cell",
    "leftmost_cell",
]


def _bit(name: str, value: int) -> int:
    if value not in (0, 1):
        raise ParameterError(f"{name} must be a bit (0/1), got {value!r}")
    return value


class RegularOut(NamedTuple):
    """Outputs of the regular cell: Eq. (4)."""

    t: int
    c0: int
    c1: int


class RightmostOut(NamedTuple):
    """Outputs of the rightmost cell: Eqs. (5)–(7).  ``t`` is always 0."""

    m: int
    c0: int


class FirstBitOut(NamedTuple):
    """Outputs of the 1st-bit cell: Eq. (8)."""

    t: int
    c0: int
    c1: int


class LeftmostOut(NamedTuple):
    """Outputs of the leftmost cell: Eq. (9).

    ``t`` is bit ``l`` of the row sum; ``t_next`` is bit ``l+1`` (the
    top bit, stored in T(l+1) and fed back as next row's ``t_in``).
    """

    t: int
    t_next: int


def regular_cell(
    t_in: int, x: int, y: int, m: int, n: int, c0_in: int, c1_in: int
) -> RegularOut:
    """Regular cell (Fig. 1a): Eq. (4).

    ``2²·c1 + 2·c0 + t = t_in + x·y + m·n + 2·c1_in + c0_in``

    Hardware: 2 FA + 1 HA + 2 AND.
    """
    total = (
        _bit("t_in", t_in)
        + _bit("x", x) * _bit("y", y)
        + _bit("m", m) * _bit("n", n)
        + 2 * _bit("c1_in", c1_in)
        + _bit("c0_in", c0_in)
    )
    return RegularOut(t=total & 1, c0=(total >> 1) & 1, c1=(total >> 2) & 1)


def rightmost_cell(t_in: int, x: int, y0: int) -> RightmostOut:
    """Rightmost cell (Fig. 1b): Eqs. (5)–(7).

    Generates the quotient digit ``m_i = t_in ⊕ x·y0`` (here ``t_in`` is
    ``t_{i-1,1}``, the LSB of T_{i-1}) and the single carry
    ``c0 = t_in ∨ x·y0``.  The sum bit ``t_{i,0}`` is identically zero and
    therefore not an output.  Hardware: 1 AND + 1 OR + 1 XOR.
    """
    p = _bit("x", x) & _bit("y0", y0)
    t = _bit("t_in", t_in)
    return RightmostOut(m=t ^ p, c0=t | p)


def first_bit_cell(
    t_in: int, x: int, y1: int, m: int, n1: int, c0_in: int
) -> FirstBitOut:
    """1st-bit cell (Fig. 1c): Eq. (8).

    Like the regular cell but its only carry input is the rightmost cell's
    single ``c0`` (weight 1).  Hardware: 1 FA + 2 HA + 2 AND.
    """
    total = (
        _bit("t_in", t_in)
        + _bit("x", x) * _bit("y1", y1)
        + _bit("m", m) * _bit("n1", n1)
        + _bit("c0_in", c0_in)
    )
    return FirstBitOut(t=total & 1, c0=(total >> 1) & 1, c1=(total >> 2) & 1)


def leftmost_cell(
    t_in: int, x: int, yl: int, c0_in: int, c1_in: int, *, check: bool = True
) -> LeftmostOut:
    """Leftmost cell (Fig. 1d): Eq. (9), exploiting ``n_l = 0``.

    ``2·t_next + t = t_in + x·y_l + 2·c1_in + c0_in``

    Hardware: 1 FA + 1 AND + 1 XOR.  The XOR combines the FA's carry with
    ``c1_in``; arithmetic worst case would need weight 4, but the window
    bound ``T_i < 2N < 2^{l+1}`` guarantees the two XOR inputs are never
    simultaneously 1.  With ``check=True`` (the default) that invariant is
    asserted — a violation means the bound analysis was broken upstream.
    """
    total = (
        _bit("t_in", t_in)
        + _bit("x", x) * _bit("yl", yl)
        + 2 * _bit("c1_in", c1_in)
        + _bit("c0_in", c0_in)
    )
    if check and total >= 4:
        raise SimulationError(
            "leftmost cell overflow: row sum needs bit l+2, violating T < 2N "
            f"(t_in={t_in}, x·y_l={x * yl}, c1_in={c1_in}, c0_in={c0_in})"
        )
    return LeftmostOut(t=total & 1, t_next=(total >> 1) & 1)
