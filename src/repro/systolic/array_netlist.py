"""The complete systolic array as one flat gate netlist (Fig. 2).

:func:`elaborate_array` adds the cells (from
:mod:`repro.systolic.cell_netlists`), the T/C0/C1 registers and the
two-cycle x/m pipelines to an existing :class:`repro.hdl.netlist.Circuit`;
:func:`build_array` wraps it into a standalone circuit with its own phase
toggle, and :class:`GateLevelArray` adds a two-phase simulator with the
same ``run_multiplication`` semantics as the vectorized RTL model.  The
full MMMC of Fig. 3 embeds the same core via
:mod:`repro.systolic.mmmc_netlist`.

The netlist serves three purposes:

* **equivalence** — the test suite proves gate ≡ RTL ≡ golden;
* **census** — the gate inventory behind the paper's Section 4.3 area
  formula (the Fig. 2 benchmark prints formula vs. measurement);
* **technology mapping** — input to the Virtex-E slice/timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ParameterError, SimulationError
from repro.hdl.compiled import CompiledSimulator
from repro.hdl.netlist import Circuit, Wire
from repro.hdl.registers import _drive
from repro.hdl.simulator import Simulator
from repro.systolic.array import ARRAY_MODES, MultiplicationResult
from repro.systolic.cell_netlists import (
    build_first_bit_cell,
    build_leftmost_cell,
    build_no_modulus_cell,
    build_regular_cell,
    build_rightmost_cell,
    build_top_cell,
)
from repro.utils.bits import bits_to_int

__all__ = [
    "ArrayCore",
    "ArrayPorts",
    "elaborate_array",
    "build_array",
    "GateLevelArray",
    "SIMULATOR_ENGINES",
    "make_simulator",
]

SIMULATOR_ENGINES = ("interpreted", "compiled")


def make_simulator(circuit: Circuit, engine: str, *, lanes: int = 1, watch=(), probes=()):
    """Build the requested simulation engine over ``circuit``.

    ``"interpreted"`` returns the classic :class:`~repro.hdl.Simulator`
    (every wire peekable, required for waveform capture); ``"compiled"``
    returns a :class:`~repro.hdl.CompiledSimulator` with ``watch`` wires
    kept peekable and ``probes`` wires reachable through the codegenned
    flight-recorder tap (interpreted simulators can tap any wire, so the
    argument is only consulted by the compiled engine).  ``lanes > 1``
    requires the compiled engine.
    """
    if engine not in SIMULATOR_ENGINES:
        raise ParameterError(f"simulator must be one of {SIMULATOR_ENGINES}, got {engine!r}")
    if engine == "compiled":
        return CompiledSimulator(circuit, lanes=lanes, watch=watch, probes=probes)
    if lanes != 1:
        raise ParameterError("lane-packed simulation requires simulator='compiled'")
    return Simulator(circuit)


@dataclass
class ArrayCore:
    """Wires of an array core embedded in a larger circuit."""

    l: int
    mode: str
    t_regs: List[Wire]  # registered T(1..top_t), index 0 -> T(1)
    t_comb: List[Wire]  # combinational t outputs of cells 1..top_cell
    t_next_comb: Wire  # combinational top bit of the row sum
    m0: Wire  # combinational m output of the rightmost cell
    # Remaining state registers, exposed for fault-injection campaigns
    # (every DFF of the core is reachable through one of these lists).
    c0_regs: List[Wire]  # C0[0..top_cell-1]
    c1_regs: List[Wire]  # C1[1..top_cell-1], index 0 -> C1(1)
    x_pipe_regs: List[Wire]  # two-cycle x pipeline latches
    m_pipe_regs: List[Wire]  # two-cycle m pipeline latches
    # Overflow taps: the topmost cell's adder carry and the C1 register it
    # is XORed with.  Both high means the row sum needs a bit the XOR
    # cannot produce — the exact condition the behavioral model raises
    # SimulationError on (lost carry in paper mode, impossible-range
    # violation in corrected mode).  Taps on existing wires; no extra gates.
    overflow_carry: Wire
    overflow_c1: Wire

    @property
    def top_cell(self) -> int:
        return self.l + 1 if self.mode == "corrected" else self.l

    def overflow_message(self, cycle: int) -> str:
        if self.mode == "paper":
            return (
                f"paper-mode leftmost cell lost a carry at cycle {cycle}: "
                "row sum needs bit l+2 (intermediate T >= 2^(l+1)); the "
                "printed Fig. 2 array computes this operand set incorrectly"
            )
        return (
            f"corrected-mode top cell overflow at cycle {cycle}: "
            "S_i >= 2^(l+3) should be mathematically impossible"
        )

    def productive(self, cycle: int) -> bool:
        """True when the topmost cell computes a real row at ``cycle``.

        Mirrors ``SystolicArrayRTL._productive`` so netlist wrappers gate
        the overflow taps on the same cycles as the behavioral model.
        """
        cell = self.top_cell
        if (cycle - cell) % 2:
            return False
        row = (cycle - cell) // 2
        return 0 <= row <= self.l + 1


def elaborate_array(
    c: Circuit,
    x0: Wire,
    y: List[Wire],
    n: List[Wire],
    *,
    mode: str = "corrected",
    en_mul1: Wire,
    en_mul2: Wire,
    clear: Optional[Wire] = None,
    name: str = "arr",
) -> ArrayCore:
    """Add the array core to ``c``.

    Parameters
    ----------
    x0, y, n:
        Serial ``X(0)`` wire and the Y/N operand buses (``l+1`` wires).
    en_mul1 / en_mul2:
        Phase strobes: ``en_mul1`` is high on even (MUL1) cycles — it
        enables the m-pipeline latches — and ``en_mul2`` on odd (MUL2)
        cycles, enabling the x-pipeline.  The MMMC derives them from its
        controller state; the standalone array from a toggle FF.
    clear:
        Optional synchronous clear for the array state (the operand-load
        strobe of Fig. 3).  It must zero *all* array registers — T,
        carries and both pipelines — because the phase-gated top T
        register captures one shadow-lattice value before its first
        productive read; with every register zeroed at load that shadow
        value is provably 0 (the fresh-reset condition the equivalence
        proofs cover).  When None the registers are only cleared by the
        simulator's reset, so the circuit is single-shot.
    """
    l = len(y) - 1
    if l < 2:
        raise ParameterError(f"systolic array needs l >= 2, got {l}")
    if mode not in ARRAY_MODES:
        raise ParameterError(f"mode must be one of {ARRAY_MODES}, got {mode!r}")

    top_cell = l + 1 if mode == "corrected" else l
    top_t = top_cell + 1

    # State registers, created up front so cells can read them before the
    # driving logic exists (placeholder-D pattern; DFFs break the cycles).
    # The load strobe rides the flip-flops' dedicated SR pin (dominating
    # any enable), so clearing the whole array at load costs no fabric.
    t_d = [c.new_wire(f"{name}.T.d{j}") for j in range(1, top_t + 1)]
    t_q = [
        c.dff(
            t_d[j - 1],
            name=f"{name}.T[{j}]",
            # Top T register is the self-loop register: phase-gated.
            enable=(en_mul2 if top_cell % 2 else en_mul1) if j == top_t else None,
            clear=clear,
        )
        for j in range(1, top_t + 1)
    ]

    def T(j: int) -> Wire:
        return t_q[j - 1]

    c0_d = [c.new_wire(f"{name}.C0.d{j}") for j in range(top_cell)]
    c0_q = [c.dff(c0_d[j], name=f"{name}.C0[{j}]", clear=clear) for j in range(top_cell)]
    c1_d = [c.new_wire(f"{name}.C1.d{j}") for j in range(1, top_cell)]
    c1_q = [
        c.dff(c1_d[j - 1], name=f"{name}.C1[{j}]", clear=clear)
        for j in range(1, top_cell)
    ]

    def C1(j: int) -> Wire:
        return c1_q[j - 1]

    pipe_len = max(l // 2, 1)
    m_d = [c.new_wire(f"{name}.MP.d{k}") for k in range(pipe_len)]
    m_q = [
        c.dff(m_d[k], name=f"{name}.MP[{k}]", enable=en_mul1, clear=clear)
        for k in range(pipe_len)
    ]
    x_d = [c.new_wire(f"{name}.XP.d{k}") for k in range(pipe_len)]
    x_q = [
        c.dff(x_d[k], name=f"{name}.XP[{k}]", enable=en_mul2, clear=clear)
        for k in range(pipe_len)
    ]

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    t_comb: List[Wire] = []
    right = build_rightmost_cell(c, T(1), x0, y[0], name=f"{name}.cell0")
    first = build_first_bit_cell(
        c, T(2), x0, y[1], m_q[0], n[1], c0_q[0], name=f"{name}.cell1"
    )
    t_comb.append(first.t)
    c0_outs = {0: right.c0, 1: first.c0}
    c1_outs = {1: first.c1}
    for j in range(2, l):
        cell = build_regular_cell(
            c,
            T(j + 1),
            x_q[(j - 2) // 2],
            y[j],
            m_q[(j - 1) // 2],
            n[j],
            c0_q[j - 1],
            C1(j - 1),
            name=f"{name}.cell{j}",
        )
        t_comb.append(cell.t)
        c0_outs[j] = cell.c0
        c1_outs[j] = cell.c1
    x_l = x_q[(l - 2) // 2]
    if mode == "paper":
        left = build_leftmost_cell(
            c, T(l + 1), x_l, y[l], c0_q[l - 1], C1(l - 1), name=f"{name}.cell{l}"
        )
        t_comb.append(left.t)
        t_next = left.t_next
        overflow_carry, overflow_c1 = left.carry, C1(l - 1)
    else:
        nom = build_no_modulus_cell(
            c, T(l + 1), x_l, y[l], c0_q[l - 1], C1(l - 1), name=f"{name}.cell{l}"
        )
        t_comb.append(nom.t)
        c0_outs[l] = nom.c0
        c1_outs[l] = nom.c1
        top = build_top_cell(c, T(l + 2), c0_q[l], C1(l), name=f"{name}.cell{l + 1}")
        t_comb.append(top.t)
        t_next = top.t_next
        overflow_carry, overflow_c1 = top.carry, C1(l)

    # ------------------------------------------------------------------
    # Close the register input placeholders.
    # ------------------------------------------------------------------
    for j in range(1, top_t):  # T(1..top_t-1) <- t outputs of cells 1..top
        _drive(c, t_d[j - 1], t_comb[j - 1])
    _drive(c, t_d[top_t - 1], t_next)
    for j in range(top_cell):
        _drive(c, c0_d[j], c0_outs[j])
    for j in range(1, top_cell):
        _drive(c, c1_d[j - 1], c1_outs[j])
    _drive(c, m_d[0], right.m)
    for k in range(1, pipe_len):
        _drive(c, m_d[k], m_q[k - 1])
    _drive(c, x_d[0], x0)
    for k in range(1, pipe_len):
        _drive(c, x_d[k], x_q[k - 1])

    return ArrayCore(
        l=l,
        mode=mode,
        t_regs=t_q,
        t_comb=t_comb,
        t_next_comb=t_next,
        m0=right.m,
        c0_regs=c0_q,
        c1_regs=c1_q,
        x_pipe_regs=x_q,
        m_pipe_regs=m_q,
        overflow_carry=overflow_carry,
        overflow_c1=overflow_c1,
    )


@dataclass
class ArrayPorts:
    """Handles into a standalone array netlist."""

    circuit: Circuit
    core: ArrayCore
    x0: Wire
    y: List[Wire]
    n: List[Wire]
    phase: Wire  # 0 during MUL1 (even) cycles, 1 during MUL2

    @property
    def l(self) -> int:
        return self.core.l

    @property
    def mode(self) -> str:
        return self.core.mode


def build_array(l: int, mode: str = "corrected", name: str = "systolic") -> ArrayPorts:
    """Elaborate the array as a standalone circuit with its own phase toggle."""
    c = Circuit(f"{name}_l{l}_{mode}")
    x0 = c.add_input("x0")
    y = c.add_input("y", l + 1)
    n = c.add_input("n", l + 1)
    # Phase toggle: q=0 during the first (MUL1) cycle, flips every cycle.
    phase_d = c.new_wire("phase.d")
    phase = c.dff(phase_d, name="phase")
    _drive(c, phase_d, c.not_(phase, name="phase.n"))
    not_phase = c.not_(phase, name="phase.inv")
    core = elaborate_array(
        c, x0, y, n, mode=mode, en_mul1=not_phase, en_mul2=phase, name="arr"
    )
    c.mark_output("t", core.t_regs)
    c.mark_output("m0", core.m0)
    c.validate()
    return ArrayPorts(circuit=c, core=core, x0=x0, y=y, n=n, phase=phase)


class GateLevelArray:
    """Gate-level twin of :class:`~repro.systolic.array.SystolicArrayRTL`.

    Wraps the elaborated netlist in a :class:`~repro.hdl.Simulator` and
    drives the serial ``X(0)`` input with the operand bits on the correct
    cycles (bit ``i`` during cycles ``2i`` and ``2i+1``), collecting the
    result along the output diagonal exactly as the RTL model does.
    Practical for ``l`` up to a few hundred; the equivalence tests use
    small ``l`` with randomized operands.
    """

    def __init__(self, l: int, mode: str = "corrected", simulator: str = "interpreted") -> None:
        self.ports = build_array(l, mode=mode)
        core = self.ports.core
        # Everything run_multiplication peeks must stay materialized when
        # the codegen engine folds the combinational cloud (the overflow C1
        # register would otherwise live in a closure cell).
        watch = tuple(core.t_comb) + (core.t_next_comb, core.overflow_carry, core.overflow_c1)
        self.sim = make_simulator(self.ports.circuit, simulator, watch=watch)
        self.simulator = simulator
        self.l = l
        self.mode = mode

    @property
    def datapath_cycles(self) -> int:
        return 2 * (self.l + 1) + self.ports.core.top_cell + 1

    def run_multiplication(self, x: int, y: int, n: int) -> MultiplicationResult:
        """Cycle-accurate multiplication through the gate-level simulator."""
        l = self.l
        if n.bit_length() > l or n % 2 == 0 or n < 3:
            raise ParameterError(f"bad modulus {n} for l={l}")
        for name, v in (("x", x), ("y", y)):
            if not 0 <= v < 2 * n:
                raise ParameterError(f"{name}={v} outside [0, 2N) for N={n}")
        sim, core = self.sim, self.ports.core
        sim.reset()
        sim.poke(self.ports.y, y)
        sim.poke(self.ports.n, n)
        result_bits = [0] * (l + 1)
        first = 2 * l + 3
        last_b = l if self.mode == "corrected" else l - 1
        for tau in range(self.datapath_cycles):
            sim.poke(self.ports.x0, (x >> (tau // 2)) & 1)
            # Pre-edge C1 register read, then the fused cycle; combinational
            # taps below reflect this cycle's settle (pre-edge values).
            c1 = sim.peek(core.overflow_c1) if core.productive(tau) else 0
            sim.step()
            # Overflow taps: carry AND C1 at the topmost cell is the same
            # row-sum >= 4 condition the behavioral model raises on.
            if c1 and sim.peek(core.overflow_carry):
                raise SimulationError(core.overflow_message(tau))
            # Diagonal capture from the combinational outputs (what the
            # per-bit-enabled datapath T register of Fig. 3 latches).
            if first <= tau <= first + last_b:
                result_bits[tau - first] = sim.peek(core.t_comb[tau - first])
            if self.mode == "paper" and tau == 3 * l + 2:
                result_bits[l] = sim.peek(core.t_next_comb)
        return MultiplicationResult(
            value=bits_to_int(result_bits),
            datapath_cycles=self.datapath_cycles,
            total_cycles=self.datapath_cycles + 1,
        )
