"""Overlapped (pipelined) multiplication issue on the linear array.

The paper prices one multiplication at ``3l+4`` cycles but its
pre-computation at ``2(2(l+2)+1) + l = 5l+10`` — i.e. **two**
multiplications at an issue interval of ``2(l+2)+1`` plus one final
drain.  That only adds up if back-to-back multiplications overlap in the
pipeline, which the linear array indeed supports:

* rows of one multiplication issue at cycles ``0, 2, 4, ..., 2(l+1)``;
  after the last row enters, the low cells only drain — a *new*
  multiplication whose operands are ready can start issuing immediately:
  issue interval ``2(l+2)+1`` for independent operands (the paper's
  constant, one extra cycle for the X/Y/N register swap);
* the result emerges LSB-first along the diagonal (bit ``b`` final at
  cycle ``2l+3+b``) while the consumer's X input is consumed LSB-first at
  one bit per two cycles (bit ``i`` at ``2i``) — so an operation whose
  **X operand is the previous result** (with Y standing in a register)
  can start at offset ``2l+3`` and never starves: ``2l+3+i <= 2l+3+2i``;
* an operation needing the previous result as **Y** (parallel load, e.g.
  a squaring) must wait for the full drain: interval ``3l+4``.

:class:`IssuePlanner` turns an operation sequence with dependency kinds
into a cycle count; :func:`exponentiation_cycles_overlapped` applies it
to square-and-multiply, where the multiplications by the standing
``M·R mod N`` overlap with the preceding squaring's drain — recovering
most of the drain cost of half the operations.  The overlap ablation
benchmark quantifies the saving the paper's controller left on the table
(its measured totals use the non-overlapped ``3l+4`` per operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Literal, Tuple

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = [
    "IssueKind",
    "IssuePlanner",
    "issue_interval",
    "precomputation_overlapped",
    "exponentiation_cycles_overlapped",
]

IssueKind = Literal["independent", "stream_x", "full_drain"]


def issue_interval(l: int, kind: IssueKind) -> int:
    """Cycles between the starts of two consecutive multiplications.

    ``independent``: both operands ready (register swap limited):
    ``2(l+2)+1``.  ``stream_x``: X is the previous result, streamed bit
    by bit as it emerges; Y standing: ``2l+3``.  ``full_drain``: the
    previous result is needed in parallel (as Y or both operands):
    ``3l+4``.
    """
    ensure_positive("l", l)
    if kind == "independent":
        return 2 * (l + 2) + 1
    if kind == "stream_x":
        return 2 * l + 3
    if kind == "full_drain":
        return 3 * l + 4
    raise ParameterError(f"unknown issue kind {kind!r}")


@dataclass
class IssuePlanner:
    """Accumulates a sequence of multiplications with issue dependencies."""

    l: int
    _intervals: List[int] = None

    def __post_init__(self) -> None:
        ensure_positive("l", self.l)
        self._intervals = []

    def add(self, kind: IssueKind) -> "IssuePlanner":
        """Append one multiplication; ``kind`` states how it depends on
        the *previous* operation (ignored for the first)."""
        self._intervals.append(issue_interval(self.l, kind))
        return self

    def extend(self, kinds: Iterable[IssueKind]) -> "IssuePlanner":
        for k in kinds:
            self.add(k)
        return self

    @property
    def operations(self) -> int:
        return len(self._intervals)

    def total_cycles(self) -> int:
        """Start-to-last-result time.

        Each operation after the first starts its dependency interval
        after its predecessor's start; the final operation runs to full
        drain (``3l+4``).  The first operation's kind carries no gap.
        """
        if not self._intervals:
            return 0
        return sum(self._intervals[1:]) + (3 * self.l + 4)


def precomputation_overlapped(l: int) -> int:
    """The paper's pre-computation count, derived from the issue model.

    Two independent multiplications at interval ``2(l+2)+1`` with the
    second's result collected after a further ``l`` drain cycles beyond
    its own issue window: ``2(2(l+2)+1) + l = 5l+10`` — exactly the
    printed formula, supporting the pipelined-issue reading.
    """
    ensure_positive("l", l)
    return 2 * (2 * (l + 2) + 1) + l


def exponentiation_cycles_overlapped(l: int, exponent: int) -> Tuple[int, int]:
    """(overlapped, non-overlapped) cycle totals for one exponentiation.

    Schedule: squarings need the previous value in parallel
    (``full_drain``); multiplications by the standing ``M·R`` stream the
    previous result into X (``stream_x``); the following squaring then
    needs that product in parallel again.  Pre/post are one multiplication
    each (pre independent, post full-drain).
    """
    ensure_positive("exponent", exponent)
    planner = IssuePlanner(l)
    planner.add("independent")  # pre: Mont(M, R^2), operands known
    for i in reversed(range(exponent.bit_length() - 1)):
        planner.add("full_drain")  # square: needs A in parallel
        if (exponent >> i) & 1:
            planner.add("stream_x")  # multiply: A streams in, M-bar stands
    planner.add("full_drain")  # post: Mont(A, 1)
    overlapped = planner.total_cycles()
    non_overlapped = planner.operations * (3 * l + 4)
    return overlapped, non_overlapped
