"""The complete Montgomery Modular Multiplication Circuit as a gate netlist.

This is Fig. 3 in full, at gate granularity: the four-state controller
(2 state flip-flops + next-state logic), the cycle counter with its two
comparators (count-end and token-start), the ``l+1``-bit X shift register,
the Y and N operand registers, the embedded systolic array core, the
result-capture token chain, the output RESULT register and the DONE flag.

Interface (exactly the paper's): X, Y, N data inputs, START strobe,
RESULT output, DONE output.  Drive START for one cycle while IDLE with the
operands applied; DONE rises ``3l+4`` cycles later (``3l+5`` for the
corrected array mode).

Reproduction notes (see DESIGN.md):

* the paper specifies a ``log2(l+2)``-bit counter incremented only in MUL2
  with count-end at "2(l+1)" — mutually inconsistent statements; we use a
  ``⌈log2(3l+5)⌉``-bit counter incremented every MUL cycle;
* the paper does not specify how the skewed result diagonal reaches the
  parallel T register; we use a traveling-token enable chain, the cheapest
  realization consistent with Fig. 3's single comparator + counter style.

The elaborated circuit is what the Virtex-E technology mapper consumes to
reproduce Table 2's slice counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParameterError, SimulationError
from repro.hdl.netlist import Circuit, Wire
from repro.hdl.probes import make_sampler, mmmc_probe_set
from repro.hdl.registers import _drive, counter, equality_comparator, mux2, register, shift_register_right
from repro.observability import OBS
from repro.observability.occupancy import schedule_busy_mask
from repro.systolic.array import ARRAY_MODES
from repro.systolic.array_netlist import ArrayCore, elaborate_array, make_simulator
from repro.systolic.mmmc import MMMCRun
from repro.utils.bits import bits_to_int

__all__ = ["MMMCPorts", "build_mmmc", "GateLevelMMMC"]


@dataclass
class MMMCPorts:
    """Handles into the elaborated MMMC netlist."""

    circuit: Circuit
    l: int
    mode: str
    x_in: List[Wire]
    y_in: List[Wire]
    n_in: List[Wire]
    start: Wire
    result: List[Wire]
    done: Wire
    state: List[Wire]  # [s0, s1]
    counter: List[Wire]
    core: ArrayCore
    x_shift: List[Wire]  # the l+1-bit X shift register (fault-site access)


# State encoding: IDLE=00, MUL1=01, MUL2=10, OUT=11 (s1 s0).
_IDLE, _MUL1, _MUL2, _OUT = 0b00, 0b01, 0b10, 0b11


def build_mmmc(l: int, mode: str = "corrected", name: str = "mmmc") -> MMMCPorts:
    """Elaborate the complete MMMC for bit length ``l``."""
    if l < 2:
        raise ParameterError(f"MMMC needs l >= 2, got {l}")
    if mode not in ARRAY_MODES:
        raise ParameterError(f"mode must be one of {ARRAY_MODES}, got {mode!r}")
    c = Circuit(f"{name}_l{l}_{mode}")
    x_in = c.add_input("X", l + 1)
    y_in = c.add_input("Y", l + 1)
    n_in = c.add_input("N", l + 1)
    start = c.add_input("START")

    datapath_cycles = 3 * l + 4 if mode == "corrected" else 3 * l + 3

    # ------------------------------------------------------------------
    # Controller: 2 state FFs + next-state logic (Fig. 4 ASM).
    # ------------------------------------------------------------------
    s0_d = c.new_wire("ctl.s0d")
    s1_d = c.new_wire("ctl.s1d")
    s0 = c.dff(s0_d, name="ctl.s0")
    s1 = c.dff(s1_d, name="ctl.s1")
    ns0 = c.not_(s0, name="ctl.ns0")
    ns1 = c.not_(s1, name="ctl.ns1")
    in_idle = c.and_(ns1, ns0, name="ctl.idle")
    in_mul1 = c.and_(ns1, s0, name="ctl.mul1")
    in_mul2 = c.and_(s1, ns0, name="ctl.mul2")
    in_out = c.and_(s1, s0, name="ctl.out")
    load = c.and_(in_idle, start, name="ctl.load")
    in_mul = c.or_(in_mul1, in_mul2, name="ctl.mul")

    # Counter: counts MUL cycles 0..datapath_cycles-1; cleared on load.
    width = max((datapath_cycles).bit_length(), 1)
    ctr = counter(c, width, increment=in_mul, reset_to_zero=load, name="ctr")
    count_end = equality_comparator(c, ctr, datapath_cycles - 1, name="cmp.end")
    token_start = equality_comparator(c, ctr, 2 * l + 2, name="cmp.tok")

    # Next state:
    #   IDLE: START ? MUL1 : IDLE
    #   MUL1: count_end ? OUT : MUL2
    #   MUL2: count_end ? OUT : MUL1
    #   OUT : IDLE
    go_out = c.and_(in_mul, count_end, name="ctl.goOut")
    stay1 = c.and_(in_mul2, c.not_(count_end, name="ctl.nend"), name="ctl.back1")
    to_mul1 = c.or_(load, stay1, name="ctl.toMul1")
    to_mul2 = c.and_(in_mul1, c.not_(count_end, name="ctl.nend2"), name="ctl.toMul2")
    # s0' = to_mul1 | go_out ; s1' = to_mul2 | go_out
    _drive(c, s0_d, c.or_(to_mul1, go_out, name="ctl.s0n"))
    _drive(c, s1_d, c.or_(to_mul2, go_out, name="ctl.s1n"))

    # ------------------------------------------------------------------
    # Datapath registers (Fig. 3).
    # ------------------------------------------------------------------
    x_q = shift_register_right(c, x_in, load=load, shift=in_mul2, name="Xreg")
    y_q = register(c, y_in, name="Yreg", enable=load)
    n_q = register(c, n_in, name="Nreg", enable=load)

    core = elaborate_array(
        c,
        x_q[0],
        y_q,
        n_q,
        mode=mode,
        en_mul1=in_mul1,
        en_mul2=in_mul2,
        clear=load,
        name="arr",
    )

    # ------------------------------------------------------------------
    # Result capture: traveling-token enable chain along the diagonal.
    # ------------------------------------------------------------------
    token_len = l + 1 if mode == "corrected" else l
    tok_d = [c.new_wire(f"tok.d{k}") for k in range(token_len)]
    tok_q = [c.dff(tok_d[k], name=f"tok[{k}]") for k in range(token_len)]
    _drive(c, tok_d[0], c.and_(token_start, in_mul, name="tok.inj"))
    for k in range(1, token_len):
        _drive(c, tok_d[k], tok_q[k - 1])

    result_q: List[Wire] = []
    for b in range(l + 1):
        if mode == "corrected":
            src, en = core.t_comb[b], tok_q[b]
        else:
            if b < l:
                src, en = core.t_comb[b], tok_q[b]
            else:
                # Paper mode: bit l comes from the leftmost cell's second
                # output, at the same cycle as bit l-1.
                src, en = core.t_next_comb, tok_q[l - 1]
        result_q.append(c.dff(src, name=f"RES[{b}]", enable=en))

    done = c.buf(in_out, name="DONE")
    c.mark_output("RESULT", result_q)
    c.mark_output("DONE", done)
    c.validate()
    return MMMCPorts(
        circuit=c,
        l=l,
        mode=mode,
        x_in=x_in,
        y_in=y_in,
        n_in=n_in,
        start=start,
        result=result_q,
        done=done,
        state=[s0, s1],
        counter=ctr,
        core=core,
        x_shift=x_q,
    )


class GateLevelMMMC:
    """Gate-level twin of :class:`~repro.systolic.mmmc.MMMC`.

    Drives START/operands through the netlist simulator and waits for
    DONE, measuring the latency in clock cycles.  Used by the equivalence
    tests (gate MMMC ≡ behavioral MMMC ≡ golden) and the waveform example.
    """

    def __init__(
        self,
        l: int,
        mode: str = "corrected",
        simulator: str = "interpreted",
        lanes: int = 1,
    ) -> None:
        self.ports = build_mmmc(l, mode=mode)
        core = self.ports.core
        # multiply() observes the overflow carry tap (combinational), the
        # controller state bits and the overflow C1 register; watching them
        # keeps them in the value array while every other register stays in
        # the compiled kernel's closure cells.
        s0, s1 = self.ports.state
        # Standard flight-recorder probe layout: every fault-injectable
        # register class plus controller/counter/DONE.  Compiling with the
        # probe list codegens the capture tap into the kernel (hidden
        # closure-cell registers stay hidden); it costs nothing until a
        # recorder is armed and the tap is actually called.
        self.probe_set = mmmc_probe_set(self.ports)
        self.sim = make_simulator(
            self.ports.circuit,
            simulator,
            lanes=lanes,
            watch=(core.overflow_carry, core.overflow_c1, s0, s1),
            probes=self.probe_set.wire_indices,
        )
        self._s0_i, self._s1_i = s0.index, s1.index
        self._c1_i = core.overflow_c1.index
        self._carry_i = core.overflow_carry.index
        self._done_i = self.ports.done.index
        self.simulator = simulator
        self.lanes = lanes
        self.l = l
        self.mode = mode
        self._top_cell = l + 1 if mode == "corrected" else l
        # One-shot scheduled fault: (cycle, wire, lane_or_None), consumed
        # by the next multiply/multiply_lanes.  See schedule_fault().
        self._pending_fault = None
        self.sim.reset()

    # ------------------------------------------------------------------
    # Fault injection (single-event-upset campaigns, chaos middleware)
    # ------------------------------------------------------------------
    def fault_sites(self) -> dict:
        """Map register-class name -> list of DFF output wires.

        The classes mirror ``repro.analysis.fault.REGISTER_CLASSES`` so a
        :class:`~repro.analysis.fault.FaultSite` addresses the same
        architectural state in the behavioral RTL and in this netlist:
        ``t``/``c0``/``c1`` array state, the two pipelines, the RESULT
        register and the X shift register.  Every datapath DFF of the
        MMMC is reachable through exactly one of these lists.
        """
        core, p = self.ports.core, self.ports
        return {
            "t": list(core.t_regs),
            "c0": list(core.c0_regs),
            "c1": list(core.c1_regs),
            "x_pipe": list(core.x_pipe_regs),
            "m_pipe": list(core.m_pipe_regs),
            "result": list(p.result),
            "x_shift": list(p.x_shift),
        }

    def schedule_fault(self, site, lane: int = None) -> None:
        """Arm a one-shot bit flip for the next multiplication.

        ``site`` is a :class:`~repro.analysis.fault.FaultSite` (duck-typed:
        ``cycle``/``register``/``index``).  The flip is applied to the
        register's Q immediately after clock edge number ``site.cycle``
        (0-based, counted from the first post-load cycle), modeling a
        particle strike on the stored bit; the corrupted value propagates
        on the following settle.  ``lane`` restricts the flip to one
        packed lane (compiled engine); ``None`` hits all lanes.
        """
        sites = self.fault_sites()
        regs = sites.get(site.register)
        if regs is None:
            raise ParameterError(
                f"unknown register class {site.register!r}; one of {sorted(sites)}"
            )
        if not 0 <= site.index < len(regs):
            raise ParameterError(
                f"register index {site.index} out of range for "
                f"{site.register!r} (width {len(regs)})"
            )
        if site.cycle < 0:
            raise ParameterError(f"fault cycle must be >= 0, got {site.cycle}")
        if lane is not None and not (0 <= lane < self.lanes):
            raise ParameterError(f"lane {lane} out of range [0, {self.lanes})")
        self._pending_fault = (site.cycle, regs[site.index], lane)

    def _take_pending_fault(self):
        pending, self._pending_fault = self._pending_fault, None
        return pending

    def _arm_recorder(self, lane_hint: int = 0):
        """(hub, recorder, sampler) when a flight recorder is armed, else Nones.

        One ``OBS.flightrec`` load + truth test per multiplication when
        disarmed — the recorder's entire disarmed cost.  The sampler is the
        engine-appropriate tap: peek-based on the interpreted simulator,
        the codegenned ``capture`` closure on the compiled one.
        """
        hub = OBS.flightrec
        if hub is None or not hub.armed:
            return None, None, None
        rec = hub.new_recorder(
            self.probe_set.names,
            self.probe_set.widths,
            self.probe_set.decode,
            lane=lane_hint,
            meta={"l": self.l, "mode": self.mode, "engine": self.simulator},
        )
        if rec is None:
            return None, None, None
        return hub, rec, make_sampler(self.sim, self.probe_set)

    def _fault_cause(self, wire: Wire, lane) -> str:
        name = self.ports.circuit.wire_names[wire.index]
        where = "" if lane is None else f" lane {lane}"
        return f"bit-flip on {name}{where}"

    def _apply_fault(self, wire, lane) -> None:
        if self.simulator == "compiled":
            self.sim.flip(wire, lanes=None if lane is None else [lane])
        else:
            self.sim.flip(wire)
        if OBS.enabled:
            OBS.count("mmmc.faults_injected")

    def _validate(self, x: int, y: int, n: int) -> None:
        if n.bit_length() > self.l or n % 2 == 0 or n < 3:
            raise ParameterError(f"bad modulus {n} for l={self.l}")
        for nm, v in (("x", x), ("y", y)):
            if not 0 <= v < 2 * n:
                raise ParameterError(f"{nm}={v} outside [0, 2N) for N={n}")

    def _in_mul(self) -> bool:
        # Direct value-array read (both engines expose .values and keep the
        # watched state bits there); MUL1=01 / MUL2=10 means s0 XOR s1.
        vals = self.sim.values
        return bool((vals[self._s0_i] ^ vals[self._s1_i]) & 1)

    def _sample_occupancy(self, mul_cycle: int) -> None:
        """Record array occupancy for one executed MUL cycle.

        The MUL-cycle stream is *measured* from the gate-level controller
        state bits; each cycle expands to its productive-cell mask via the
        ``2i+j`` schedule the datapath enables implement.
        """
        occ = OBS.occupancy
        if occ is None:
            return
        busy = occ.sample(
            "gate",
            mul_cycle,
            schedule_busy_mask(mul_cycle, self.l, self._top_cell),
            self._top_cell + 1,
        )
        OBS.counter_event("occupancy.gate", busy, cat="mmmc")

    def multiply(self, x: int, y: int, n: int) -> MMMCRun:
        """Run one multiplication; cycles counted from first MUL to DONE."""
        p, sim, core = self.ports, self.sim, self.ports.core
        self._validate(x, y, n)
        observed = OBS.enabled
        if observed:
            # Mirror the behavioral MMMC's span shape so traces captured
            # through either engine nest identically under the exponentiator.
            OBS.begin(
                "mmm", cat="mmmc", l=self.l, mode=self.mode, engine=self.simulator
            )
        sim.poke(p.x_in, x)
        sim.poke(p.y_in, y)
        sim.poke(p.n_in, n)
        sim.poke(p.start, 1)
        sim.step()  # the IDLE/load cycle (not charged, as in the behavioral MMMC)
        sim.poke(p.start, 0)
        cycles = 0
        mul_cycles = 0  # mirrors the behavioral array's cycle index
        limit = 4 * self.l + 16
        vals = sim.values
        s0_i, s1_i, c1_i = self._s0_i, self._s1_i, self._c1_i
        step = sim.step
        pending = self._take_pending_fault()
        hub, rec, sampler = self._arm_recorder()
        if rec is not None:
            # Operands make the dump differentially re-runnable: a clean
            # multiply(x, y, n) on the same engine replays the window.
            rec.meta.update(x=x, y=y, n=n)
        while cycles < limit:
            # Pre-edge register reads (state, overflow C1) happen before the
            # fused step; combinational taps (carry, DONE) are settled from
            # those same pre-edge values and stay valid after it.
            in_mul = (vals[s0_i] ^ vals[s1_i]) & 1
            c1 = (vals[c1_i] & 1) if in_mul else 0
            step()
            if pending is not None and cycles == pending[0]:
                self._apply_fault(pending[1], pending[2])
                if rec is not None:
                    rec.notify_fault(
                        cycles, self._fault_cause(pending[1], pending[2]), lane=0
                    )
                pending = None
            if rec is not None and rec.wants_sample(cycles):
                rec.sample(cycles, sampler())
            if (
                c1
                and core.productive(mul_cycles)
                and vals[self._carry_i] & 1
            ):
                if rec is not None:
                    rec.notify_fault(cycles, core.overflow_message(mul_cycles))
                    hub.emit(rec, cycles=cycles)
                sim.reset()  # leave the instance reusable after the raise
                raise SimulationError(core.overflow_message(mul_cycles))
            done = vals[self._done_i] & 1
            cycles += 1
            if in_mul:
                if observed:
                    self._sample_occupancy(mul_cycles)
                mul_cycles += 1
            if observed:
                OBS.tick()
            if done:
                if rec is not None:
                    hub.emit(rec, cycles=cycles)
                if observed:
                    OBS.count("mmmc.multiplications")
                    OBS.record("mmmc.multiplication_cycles", cycles)
                    OBS.end(cycles=cycles)
                return MMMCRun(
                    result=bits_to_int([sim.peek(w) for w in p.result]),
                    cycles=cycles,
                    state_sequence=[],
                )
        if rec is not None:
            hub.emit(rec, cycles=cycles)
        raise ParameterError(f"DONE did not rise within {limit} cycles")

    def multiply_lanes(self, xs, ys, ns) -> List[MMMCRun]:
        """Run up to ``lanes`` multiplications in one bit-sliced sweep.

        The controller is data-independent, so every lane shares the same
        START/MUL/DONE schedule; each wire carries the K lanes as bits of
        one int and the compiled kernels evaluate them simultaneously.
        Short batches are padded by replicating the last operand set (the
        padding lanes' results are discarded).
        """
        if self.lanes < 2 or self.simulator != "compiled":
            raise ParameterError(
                "multiply_lanes requires GateLevelMMMC(..., simulator='compiled', lanes=K)"
            )
        if not (0 < len(xs) <= self.lanes) or not (len(xs) == len(ys) == len(ns)):
            raise ParameterError(
                f"batch of {len(xs)}/{len(ys)}/{len(ns)} operands does not fit "
                f"{self.lanes} lanes"
            )
        for x, y, n in zip(xs, ys, ns):
            self._validate(x, y, n)
        used = len(xs)
        pad = self.lanes - used
        xs = list(xs) + [xs[-1]] * pad
        ys = list(ys) + [ys[-1]] * pad
        ns = list(ns) + [ns[-1]] * pad
        p, sim, core = self.ports, self.sim, self.ports.core
        observed = OBS.enabled
        if observed:
            OBS.count("hdl.lanes_packed", used)
            OBS.record("hdl.lane_fill", used, lanes=self.lanes)
            OBS.counter_event("occupancy.lanes", used, cat="mmmc")
            # One span covers the whole sweep: K multiplications advance in
            # lock-step, so the trace shows one "mmm" segment with a lanes=
            # attribute rather than K overlapping copies.
            OBS.begin(
                "mmm",
                cat="mmmc",
                l=self.l,
                mode=self.mode,
                engine=self.simulator,
                lanes=used,
            )
        sim.poke_lanes(p.x_in, xs)
        sim.poke_lanes(p.y_in, ys)
        sim.poke_lanes(p.n_in, ns)
        sim.active_lanes = used  # lane-fill accounting in the compiled engine
        sim.poke(p.start, 1)  # broadcast: every lane starts together
        sim.step()
        sim.poke(p.start, 0)
        cycles = 0
        mul_cycles = 0
        limit = 4 * self.l + 16
        vals = sim.values
        carry_i, c1_i = core.overflow_carry.index, core.overflow_c1.index
        pending = self._take_pending_fault()
        # Decode/extraction follows the faulting lane when a fault is armed.
        lane_hint = pending[2] if pending is not None and pending[2] is not None else 0
        hub, rec, sampler = self._arm_recorder(lane_hint)
        if rec is not None:
            # Per-lane operands: replaying lane k cleanly is
            # multiply(xs[k], ys[k], ns[k]) on a scalar instance.
            rec.meta.update(xs=xs[:used], ys=ys[:used], ns=ns[:used])
        while cycles < limit:
            in_mul = self._in_mul()
            c1_word = vals[c1_i] if in_mul else 0  # pre-edge C1 lanes
            sim.step()
            if pending is not None and cycles == pending[0]:
                self._apply_fault(pending[1], pending[2])
                if rec is not None:
                    rec.notify_fault(
                        cycles,
                        self._fault_cause(pending[1], pending[2]),
                        lane=pending[2],
                    )
                pending = None
            if rec is not None and rec.wants_sample(cycles):
                rec.sample(cycles, sampler())
            if in_mul and c1_word and core.productive(mul_cycles):
                over = vals[carry_i] & c1_word
                if over:
                    bad = [k for k in range(used) if (over >> k) & 1]
                    if bad:
                        if rec is not None:
                            rec.notify_fault(
                                cycles,
                                f"lanes {bad}: " + core.overflow_message(mul_cycles),
                                lane=bad[0],
                            )
                            hub.emit(rec, cycles=cycles, lanes=used)
                        sim.reset()  # leave the instance reusable after the raise
                        sim.active_lanes = self.lanes
                        raise SimulationError(
                            f"lanes {bad}: " + core.overflow_message(mul_cycles)
                        )
            done = sim.peek(p.done)
            cycles += 1
            if in_mul:
                if observed:
                    self._sample_occupancy(mul_cycles)
                mul_cycles += 1
            if observed:
                OBS.tick()
            if done:
                results = sim.peek_lanes(p.result)
                sim.active_lanes = self.lanes
                if rec is not None:
                    hub.emit(rec, cycles=cycles, lanes=used)
                if observed:
                    OBS.count("mmmc.multiplications", used)
                    OBS.count("hdl.wasted_lane_cycles", pad * cycles)
                    OBS.record("mmmc.multiplication_cycles", cycles)
                    OBS.end(cycles=cycles)
                return [
                    MMMCRun(result=results[k], cycles=cycles, state_sequence=[])
                    for k in range(used)
                ]
        sim.active_lanes = self.lanes
        if rec is not None:
            hub.emit(rec, cycles=cycles, lanes=used)
        raise ParameterError(f"DONE did not rise within {limit} cycles")
