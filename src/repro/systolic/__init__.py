"""The paper's core contribution: the systolic Montgomery multiplier.

Layers (bottom-up, matching Section 4 of the paper):

* :mod:`repro.systolic.cells` — behavioral models of the four cell types
  (Fig. 1), i.e. the digit recurrences Eqs. (4)–(9).
* :mod:`repro.systolic.cell_netlists` — the same cells as gate netlists
  with exactly the paper's gate inventory.
* :mod:`repro.systolic.schedule` — the ``2i + j`` wavefront schedule.
* :mod:`repro.systolic.array` — cycle-accurate register-transfer model of
  the complete linear array (Fig. 2), NumPy-vectorized across cells.
* :mod:`repro.systolic.array_netlist` — the complete array as one flat
  gate netlist (census + gate-level simulation).
* :mod:`repro.systolic.controller` — the ASM of Fig. 4.
* :mod:`repro.systolic.mmmc` — the full Montgomery Modular Multiplication
  Circuit of Fig. 3 (controller + datapath), cycle-accurate.
* :mod:`repro.systolic.exponentiator` — the modular exponentiator of
  Section 4.5 built on the MMMC.
* :mod:`repro.systolic.timing` — the paper's closed-form cycle formulas.
"""

from repro.systolic.cells import (
    regular_cell,
    rightmost_cell,
    first_bit_cell,
    leftmost_cell,
)
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.mmmc import MMMC
from repro.systolic.exponentiator import ModularExponentiator
from repro.systolic.timing import (
    mmm_cycles,
    mmm_cycles_corrected,
    precomputation_cycles,
    postprocessing_cycles,
    exponentiation_cycle_bounds,
    average_exponentiation_cycles,
)
from repro.systolic.pipeline import exponentiation_cycles_overlapped
from repro.systolic.highradix_machine import HighRadixMachine
from repro.systolic.gf2_array import Gf2ArrayBroadcast, Gf2ArraySystolic

__all__ = [
    "regular_cell",
    "rightmost_cell",
    "first_bit_cell",
    "leftmost_cell",
    "SystolicArrayRTL",
    "MMMC",
    "ModularExponentiator",
    "mmm_cycles",
    "mmm_cycles_corrected",
    "precomputation_cycles",
    "postprocessing_cycles",
    "exponentiation_cycle_bounds",
    "average_exponentiation_cycles",
    "exponentiation_cycles_overlapped",
    "HighRadixMachine",
    "Gf2ArrayBroadcast",
    "Gf2ArraySystolic",
]
