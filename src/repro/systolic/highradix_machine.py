"""A cycle-accurate high-radix (2^α) Montgomery machine.

Section 2 discusses the high-radix alternative (Blum–Paar [4], iteration
count ``⌈(l+2)/α⌉`` from [1]) only as a design point; this module makes
it executable so the radix ablation can *measure* cycles instead of
assuming them.

Machine organization (word-parallel, digit-serial — the standard
high-radix Montgomery datapath):

* operands live in full-width registers; each cycle consumes one α-bit
  digit ``x_i`` of X;
* the quotient digit needs the precomputed ``N' = -N^{-1} mod 2^α``
  (for α = 1 this is constant 1, which is why the paper's radix-2 cell
  needs no quotient multiplier — the cost being modeled here);
* per cycle: ``q = ((T + x_i·Y) mod 2^α)·N' mod 2^α`` then
  ``T ← (T + x_i·Y + q·N) / 2^α``;
* ``⌈(l+2)/α⌉`` datapath cycles keep the Walter window: inputs and
  outputs in ``[0, 2N)``, no final subtraction (R = 2^(α·iterations) ≥
  2^(l+2) > 4N).

The machine reports its measured cycle count and the two digit
multiplications (x_i·Y and q·N are full-width-by-digit products) per
cycle, from which the cell-complexity model prices the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError, SimulationError
from repro.montgomery.params import MontgomeryContext
from repro.utils.validation import ensure_positive

__all__ = ["HighRadixMachine", "HighRadixRun"]


@dataclass(frozen=True)
class HighRadixRun:
    """Outcome of one high-radix multiplication."""

    result: int
    cycles: int
    digit_products: int  # full-width × digit multiplications issued


class HighRadixMachine:
    """Digit-serial radix-2^α Montgomery multiplier, cycle-accurate.

    Parameters
    ----------
    ctx:
        Montgomery context built with ``word_bits=α`` (it fixes the digit
        count and R so the no-subtraction window holds).
    """

    def __init__(self, ctx: MontgomeryContext) -> None:
        if ctx.word_bits < 1:
            raise ParameterError("alpha must be >= 1")
        self.ctx = ctx
        self.alpha = ctx.word_bits
        self.base = 1 << self.alpha
        self.mask = self.base - 1
        self.n_prime = ctx.n_prime
        self.t = 0
        self.x_shift = 0
        self.cycle = 0
        self._digit_products = 0

    @property
    def datapath_cycles(self) -> int:
        """⌈(l·1 + 2)/α⌉ digits — the Section 2 iteration count."""
        return self.ctx.iterations

    def load(self, x: int, y: int) -> None:
        self.ctx.check_operand("x", x)
        self.ctx.check_operand("y", y)
        self.t = 0
        self.x_shift = x
        self._y = y
        self.cycle = 0
        self._digit_products = 0

    def step(self) -> None:
        x_i = self.x_shift & self.mask
        s = self.t + x_i * self._y
        self._digit_products += 1
        q = ((s & self.mask) * self.n_prime) & self.mask
        s = s + q * self.ctx.modulus
        self._digit_products += 1
        if s & self.mask:
            raise SimulationError("quotient digit failed to clear the low digit")
        self.t = s >> self.alpha
        self.x_shift >>= self.alpha
        self.cycle += 1

    def multiply(self, x: int, y: int) -> HighRadixRun:
        """One multiplication: ``x·y·2^{-α·iterations} mod 2N``."""
        self.load(x, y)
        for _ in range(self.datapath_cycles):
            self.step()
        if self.t >= 2 * self.ctx.modulus:
            raise SimulationError("window violated — context inconsistent")
        return HighRadixRun(
            result=self.t,
            cycles=self.cycle + 1,  # +1 OUT/load, matching the radix-2 count
            digit_products=self._digit_products,
        )

    # ------------------------------------------------------------------
    def exponentiation_cycles(self, exponent: int) -> int:
        """Square-and-multiply cycles at this radix (pre/post included)."""
        ensure_positive("exponent", exponent)
        ops = 2 + (exponent.bit_length() - 1) + (bin(exponent).count("1") - 1)
        return ops * (self.datapath_cycles + 1)
