"""Gate netlist of the systolic GF(2^m) array — dual-field at gate level.

The carry-free counterpart of :mod:`repro.systolic.array_netlist`: same
``2i+j`` wavefront, same T registers and a/m pipelines, but each cell is
just ``t = t_in ⊕ a_i·b_j ⊕ m_i·f_j`` (2 AND + 2 XOR) and the C0/C1
carry registers do not exist.  Elaborating both arrays at the same width
lets the dual-field benchmark compare *measured netlists*, not just
per-cell formulas — the Savaş et al. [24] claim at gate granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ParameterError
from repro.hdl.netlist import Circuit, Wire
from repro.hdl.registers import _drive
from repro.hdl.simulator import Simulator
from repro.montgomery.gf2 import GF2MontgomeryContext
from repro.systolic.gf2_array import Gf2MultiplicationResult
from repro.utils.bits import bits_to_int

__all__ = ["Gf2ArrayPorts", "build_gf2_array", "GateLevelGf2Array"]


@dataclass
class Gf2ArrayPorts:
    """Handles into an elaborated GF(2^m) array netlist."""

    circuit: Circuit
    m: int
    a0: Wire  # serial A(0) input
    b: List[Wire]  # B operand bus (m bits)
    f: List[Wire]  # field polynomial bus (m+1 bits, monic)
    t_regs: List[Wire]  # T(1..m)
    t_comb: List[Wire]  # combinational t outputs of cells 1..m
    m0: Wire
    phase: Wire


def build_gf2_array(m: int, name: str = "gf2array") -> Gf2ArrayPorts:
    """Elaborate the systolic GF(2^m) array for field degree ``m``."""
    if m < 2:
        raise ParameterError(f"GF(2^m) array needs m >= 2, got {m}")
    c = Circuit(f"{name}_m{m}")
    a0 = c.add_input("a0")
    b = c.add_input("b", m)
    f = c.add_input("f", m + 1)

    phase_d = c.new_wire("phase.d")
    phase = c.dff(phase_d, name="phase")
    _drive(c, phase_d, c.not_(phase, name="phase.n"))
    not_phase = c.not_(phase, name="phase.inv")

    # T registers T(1..m); index m+1 is identically 0 (degree bound).
    t_d = [c.new_wire(f"T.d{j}") for j in range(1, m + 1)]
    t_q = [c.dff(t_d[j - 1], name=f"T[{j}]") for j in range(1, m + 1)]

    def T(j: int) -> Wire:
        return t_q[j - 1] if j <= m else c.const0

    pipe_len = max((m + 1) // 2, 1)
    m_d = [c.new_wire(f"MP.d{k}") for k in range(pipe_len)]
    m_q = [c.dff(m_d[k], name=f"MP[{k}]", enable=not_phase) for k in range(pipe_len)]
    a_d = [c.new_wire(f"AP.d{k}") for k in range(pipe_len)]
    a_q = [c.dff(a_d[k], name=f"AP[{k}]", enable=phase) for k in range(pipe_len)]

    # Cell 0: m_i = t_in ⊕ a_i·b_0 (1 AND + 1 XOR, no carries at all).
    ab0 = c.and_(a0, b[0], name="cell0.ab")
    m0 = c.xor(T(1), ab0, name="cell0.m")

    t_comb: List[Wire] = []
    for j in range(1, m):
        a_src = a0 if j == 1 else a_q[(j - 2) // 2]
        m_src = m_q[(j - 1) // 2]
        ab = c.and_(a_src, b[j], name=f"cell{j}.ab")
        mf = c.and_(m_src, f[j], name=f"cell{j}.mf")
        t = c.xor(c.xor(T(j + 1), ab, name=f"cell{j}.x1"), mf, name=f"cell{j}.t")
        t_comb.append(t)
    # Cell m: t = m_i · f_m (f monic ⇒ a plain AND; t_in = 0, b_m absent).
    tm = c.and_(m_q[(m - 1) // 2], f[m], name=f"cell{m}.t")
    t_comb.append(tm)

    for j in range(1, m + 1):
        _drive(c, t_d[j - 1], t_comb[j - 1])
    _drive(c, m_d[0], m0)
    for k in range(1, pipe_len):
        _drive(c, m_d[k], m_q[k - 1])
    _drive(c, a_d[0], a0)
    for k in range(1, pipe_len):
        _drive(c, a_d[k], a_q[k - 1])

    c.mark_output("t", t_q)
    c.mark_output("m0", m0)
    c.validate()
    return Gf2ArrayPorts(
        circuit=c, m=m, a0=a0, b=b, f=f, t_regs=t_q, t_comb=t_comb, m0=m0, phase=phase
    )


class GateLevelGf2Array:
    """Gate-level twin of :class:`~repro.systolic.gf2_array.Gf2ArraySystolic`."""

    def __init__(self, ctx: GF2MontgomeryContext) -> None:
        self.ctx = ctx
        self.m = ctx.m
        self.ports = build_gf2_array(ctx.m)
        self.sim = Simulator(self.ports.circuit)

    @property
    def datapath_cycles(self) -> int:
        return 3 * self.m - 1

    def multiply(self, a: int, b: int) -> Gf2MultiplicationResult:
        self.ctx.check_element("a", a)
        self.ctx.check_element("b", b)
        sim, ports = self.sim, self.ports
        m = self.m
        sim.reset()
        sim.poke(ports.b, b)
        sim.poke(ports.f, self.ctx.modulus)
        result_bits = [0] * m
        first = 2 * m - 1
        for tau in range(self.datapath_cycles):
            sim.poke(ports.a0, (a >> (tau // 2)) & 1)
            sim.settle()
            if first <= tau <= first + m - 1:
                result_bits[tau - first] = sim.peek(ports.t_comb[tau - first])
            sim.clock()
        return Gf2MultiplicationResult(
            value=bits_to_int(result_bits),
            datapath_cycles=self.datapath_cycles,
            total_cycles=self.datapath_cycles + 1,
        )
