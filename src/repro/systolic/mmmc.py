"""The Montgomery Modular Multiplication Circuit of Fig. 3.

:class:`MMMC` combines the ASM controller (:mod:`repro.systolic.controller`)
with the cycle-accurate array datapath (:mod:`repro.systolic.array`) behind
the paper's exact interface: three ``l+1``-bit data inputs (X, Y, N), a
START strobe, a DONE flag and the RESULT output.  The circuit is stepped
one clock at a time, so latency is *measured*, not assumed — the tests
check the measurement against the ``3l + 4`` formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.observability import OBS
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.controller import MMMController, State
from repro.systolic.timing import mmm_cycles

__all__ = ["MMMC", "MMMCRun"]


@dataclass(frozen=True)
class MMMCRun:
    """Record of one completed multiplication through the circuit."""

    result: int
    cycles: int
    state_sequence: List[State]


class MMMC:
    """Cycle-accurate Montgomery Modular Multiplication Circuit.

    Parameters
    ----------
    l:
        Operand bit length (modulus has exactly ``l`` bits).
    mode:
        Array mode, ``"corrected"`` (default) or ``"paper"``; see
        :class:`~repro.systolic.array.SystolicArrayRTL`.  Latency is
        ``3l+5`` corrected, ``3l+4`` paper.

    Example
    -------
    >>> from repro.montgomery import MontgomeryContext
    >>> ctx = MontgomeryContext(0b1011)   # N = 11, l = 4
    >>> mmmc = MMMC(ctx.l, mode="paper")
    >>> run = mmmc.multiply(9, 5, ctx.modulus)
    >>> run.cycles == 3 * ctx.l + 4
    True
    """

    def __init__(self, l: int, *, mode: str = "corrected") -> None:
        self.l = l
        self.mode = mode
        self.array = SystolicArrayRTL(l, mode=mode)
        self.controller = MMMController(l, self.array.datapath_cycles)
        self.done = False
        self.result: Optional[int] = None
        self._cycles_this_run = 0
        self.total_cycles = 0  # across all multiplications (exponentiator use)
        self.multiplications = 0

    # ------------------------------------------------------------------
    def start(self, x: int, y: int, n: int) -> None:
        """Apply operands and assert START (circuit must be IDLE)."""
        if self.controller.state is not State.IDLE:
            raise ProtocolError(
                f"START while controller in {self.controller.state.name}"
            )
        self._pending = (x, y, n)
        self.controller.start()
        self.done = False
        self.result = None
        self._cycles_this_run = 0
        if OBS.enabled:
            OBS.begin("mmm", cat="mmmc", l=self.l, mode=self.mode)

    def step(self) -> None:
        """Advance one clock cycle of the whole circuit."""
        sig = self.controller.tick()
        if sig.load_registers:
            x, y, n = self._pending
            self.array.load(x, y, n)
        if sig.clock_array:
            self.array.step()
        if sig.done:
            self.result = self.array.result_value()
            self.done = True
        # IDLE cycles (including the load cycle, which overlaps the host's
        # START strobe) are not charged: the operation cost is the 3l+3
        # MUL cycles plus the OUT cycle = the paper's 3l+4.
        if sig.state is not State.IDLE:
            self._cycles_this_run += 1
            self.total_cycles += 1
            if OBS.enabled:
                OBS.tick()
                if OBS.trace_states:
                    OBS.complete(
                        f"state:{sig.state.name}",
                        OBS.now - 1,
                        1,
                        cat="controller",
                    )
        if sig.done and OBS.enabled:
            OBS.count("mmmc.multiplications")
            OBS.record("mmmc.multiplication_cycles", self._cycles_this_run)
            OBS.end(cycles=self._cycles_this_run)

    def run_to_done(self, max_cycles: Optional[int] = None) -> MMMCRun:
        """Clock the circuit until DONE rises; returns the run record.

        ``max_cycles`` guards against a hung controller (default: twice the
        formula value).
        """
        limit = max_cycles if max_cycles is not None else 2 * mmm_cycles(self.l) + 8
        start_len = len(self.controller.state_log)
        for _ in range(limit):
            self.step()
            if self.done:
                assert self.result is not None
                self.multiplications += 1
                return MMMCRun(
                    result=self.result,
                    cycles=self._cycles_this_run,
                    state_sequence=self.controller.state_log[start_len:],
                )
        raise ProtocolError(f"DONE did not rise within {limit} cycles")

    # ------------------------------------------------------------------
    def multiply(self, x: int, y: int, n: int) -> MMMCRun:
        """One-shot convenience: START, clock to DONE, return the record.

        The cycle count includes the load cycle through the OUT cycle —
        note the load cycle overlaps START (IDLE), so the count equals the
        paper's ``3l + 4`` (3l+3 MUL cycles + 1 OUT), with the load not
        separately charged; tests pin this down.
        """
        self.start(x, y, n)
        run = self.run_to_done()
        return run
