"""Cycle-accurate register-transfer model of the linear systolic array (Fig. 2).

Microarchitecture
-----------------
One physical row of cells processes the ``l+2`` virtual rows of
Algorithm 2; cell ``j`` computes digit ``t_{i,j}`` at cycle ``2i + j``
(cycle 0 = first cycle after operand load).  ``t_{i,j}`` is bit ``j`` of
the *undivided* row sum ``S_i = T_{i-1} + x_i·Y + m_i·N``; the division by
two is realized by wiring (cell ``j`` reads ``t_{i-1, j+1}``).

Register inventory, matching the paper's **4l flip-flop** count:

* ``T(j)``       — each cell's registered ``t`` output.
* ``C0/C1``      — registered carries, consumed by the left neighbour one
  cycle later.
* ``m``-pipeline — ``m_i`` is generated in the rightmost cell (Eq. 5) at
  cycle ``2i`` and must reach cell ``j`` at ``2i+j``.  Stage ``k`` serves
  cells ``2k+1`` and ``2k+2``, latching at the end of even (MUL1) cycles.
* ``x``-pipeline — cells 0 and 1 read ``X(0)`` directly (the X register
  shifts at the end of every odd/MUL2 cycle); stage ``k`` serves cells
  ``2k+2`` and ``2k+3``, latching at the end of odd cycles.

T/C0/C1 capture every cycle; on a cell's off-parity cycles the captured
value belongs to an interleaved shadow computation which parity analysis
shows never contaminates the productive lattice.  The single exception is
the topmost ``T`` register, which the top cell both writes and reads — it
carries a phase-gated enable (capturing only on the top cell's parity).

Array modes — a reproduction finding
------------------------------------
``mode="paper"`` is the architecture exactly as printed: cells ``0..l``
with the Fig. 1(d) leftmost cell at position ``l``.  That cell XORs the
final carries into bit ``l+1`` of the row sum and has **nowhere to put
bit ``l+2``** — yet the loop invariant is ``T_i < Y + N`` (< 3N, not 2N!),
so ``S_i = 2·T_i`` can reach ``6N``, which exceeds ``2^(l+2)`` whenever
``N > (2/3)·2^l``.  Empirically ~6% of random ``(N, x, y)`` triples with
``x, y < 2N`` hit the overflow and the printed array would return a wrong
product.  In this mode the model raises
:class:`~repro.errors.SimulationError` at the cycle the carry is lost.

``mode="corrected"`` (default) appends one position: cell ``l`` becomes a
regular cell with the ``m·n`` product removed (``n_l = 0``) but full carry
outputs, and a new top cell ``l+1`` (1 HA + 1 XOR — no ``x·y`` product
since ``y_{l+1} = 0``) absorbs the final carries into bits ``l+1`` and
``l+2``.  Since ``S_i < 6N < 2^(l+3)``, the top cell's sum is provably
≤ 3 and the design is exact for the full ``[0, 2N)`` operand window.
Cost: one extra cell, ~4 extra flip-flops, and one extra clock cycle
(``3l+5`` instead of ``3l+4`` per multiplication).

The regular cells are evaluated vectorized with NumPy, so the model is
practical at RSA sizes (l = 1024 and beyond).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ParameterError, SimulationError
from repro.observability import OBS
from repro.utils.bits import bit_array_to_int, int_to_bit_array

__all__ = ["SystolicArrayRTL", "MultiplicationResult", "ARRAY_MODES"]

ARRAY_MODES = ("corrected", "paper")


@dataclass(frozen=True)
class MultiplicationResult:
    """Outcome of one cycle-accurate multiplication run."""

    value: int
    datapath_cycles: int
    total_cycles: int


class SystolicArrayRTL:
    """Vectorized cycle-accurate model of the complete systolic array.

    Parameters
    ----------
    l:
        Modulus bit length.  ``l >= 2``.
    mode:
        ``"corrected"`` (default, exact on the full operand window) or
        ``"paper"`` (the printed Fig. 2 architecture; raises
        :class:`~repro.errors.SimulationError` if the final-carry overflow
        is reached).
    probe:
        Optional callable invoked after every cycle with the model, for
        waveform recording.
    """

    def __init__(
        self,
        l: int,
        *,
        mode: str = "corrected",
        probe: Optional[Callable[["SystolicArrayRTL"], None]] = None,
    ) -> None:
        if l < 2:
            raise ParameterError(f"systolic array needs l >= 2, got {l}")
        if mode not in ARRAY_MODES:
            raise ParameterError(f"mode must be one of {ARRAY_MODES}, got {mode!r}")
        self.l = l
        self.mode = mode
        self.probe = probe
        # Position of the topmost cell and of the top (self-loop) T register.
        self.top_cell = l + 1 if mode == "corrected" else l
        self.top_t = self.top_cell + 1
        pipe_len = max(l // 2, 1)
        # Registers.
        self.t_reg = np.zeros(self.top_t + 1, dtype=np.uint8)  # T(1..top_t)
        self.c0_reg = np.zeros(self.top_cell, dtype=np.uint8)  # C0(0..top-1)
        self.c1_reg = np.zeros(self.top_cell, dtype=np.uint8)  # C1(1..top-1)
        self.x_pipe = np.zeros(pipe_len, dtype=np.uint8)
        self.m_pipe = np.zeros(pipe_len, dtype=np.uint8)
        self.x_shift = 0  # the (l+1)-bit X register
        self.result_reg = np.zeros(l + 1, dtype=np.uint8)  # datapath T register
        self.cycle = 0
        # Operand bit planes (loaded per multiplication).
        self.y_bits = np.zeros(l + 1, dtype=np.uint8)
        self.n_bits = np.zeros(l + 1, dtype=np.uint8)
        # Static gather indices for vectorized regular cells j = 2..l-1.
        js = np.arange(2, l)
        self._idx_x = (js - 2) // 2
        self._idx_m = (js - 1) // 2

    # ------------------------------------------------------------------
    # Derived timing facts (measured against these by the tests)
    # ------------------------------------------------------------------
    @property
    def datapath_cycles(self) -> int:
        """Cycles until the last result bit exists: 3l+3 (paper), 3l+4 (corrected)."""
        return 2 * (self.l + 1) + self.top_cell + 1

    # ------------------------------------------------------------------
    # Loading / state
    # ------------------------------------------------------------------
    def load(self, x: int, y: int, n: int) -> None:
        """Load operands and reset the pipeline (the IDLE→MUL1 transition)."""
        l = self.l
        if n.bit_length() > l:
            raise ParameterError(f"modulus needs {n.bit_length()} bits > l={l}")
        if n % 2 == 0 or n < 3:
            raise ParameterError(f"modulus must be odd and >= 3, got {n}")
        for name, v in (("x", x), ("y", y)):
            if not 0 <= v < 2 * n:
                raise ParameterError(f"{name}={v} outside [0, 2N) for N={n}")
        self.y_bits = int_to_bit_array(y, l + 1)
        self.n_bits = int_to_bit_array(n, l + 1)  # n_l = 0 by construction
        self.x_shift = x
        self.t_reg[:] = 0
        self.c0_reg[:] = 0
        self.c1_reg[:] = 0
        self.x_pipe[:] = 0
        self.m_pipe[:] = 0
        self.result_reg[:] = 0
        self.cycle = 0
        if OBS.enabled:
            OBS.count("array.loads")
            OBS.gauge("array.cells", self.top_cell + 1)

    @property
    def phase(self) -> str:
        """Controller state this cycle: MUL1 on even cycles, MUL2 on odd."""
        return "MUL1" if self.cycle % 2 == 0 else "MUL2"

    # ------------------------------------------------------------------
    # One clock cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one clock: evaluate all cells combinationally, capture."""
        l = self.l
        t, c0, c1 = self.t_reg, self.c0_reg, self.c1_reg
        x0 = self.x_shift & 1

        # --- combinational evaluation from current register state ---
        # Rightmost cell (j = 0): generates m_i and C0(0); Eqs. (5)-(7).
        p0 = x0 & int(self.y_bits[0])
        m0_comb = int(t[1]) ^ p0
        new_c0_0 = int(t[1]) | p0

        # 1st-bit cell (j = 1): Eq. (8).
        tot1 = (
            int(t[2])
            + x0 * int(self.y_bits[1])
            + int(self.m_pipe[0]) * int(self.n_bits[1])
            + int(c0[0])
        )
        new_t1, new_c0_1, new_c1_1 = tot1 & 1, (tot1 >> 1) & 1, (tot1 >> 2) & 1

        # Regular cells (j = 2..l-1), vectorized: Eq. (4).
        if l > 2:
            totals = (
                t[3 : l + 1].astype(np.int32)
                + self.x_pipe[self._idx_x].astype(np.int32) * self.y_bits[2:l]
                + self.m_pipe[self._idx_m].astype(np.int32) * self.n_bits[2:l]
                + 2 * c1[1 : l - 1].astype(np.int32)
                + c0[1 : l - 1]
            )
            new_t_mid = (totals & 1).astype(np.uint8)
            new_c0_mid = ((totals >> 1) & 1).astype(np.uint8)
            new_c1_mid = ((totals >> 2) & 1).astype(np.uint8)
        else:
            new_t_mid = new_c0_mid = new_c1_mid = None

        # Cell l: in paper mode this is the Fig. 1(d) leftmost cell; in
        # corrected mode a regular cell with the m·n product removed
        # (n_l = 0) and full carry outputs.
        xl = int(self.x_pipe[(l - 2) // 2])
        totl = (
            int(t[l + 1])
            + xl * int(self.y_bits[l])
            + 2 * int(c1[l - 1])
            + int(c0[l - 1])
        )
        if self.mode == "paper":
            if totl >= 4 and self._productive(l):
                raise SimulationError(
                    f"paper-mode leftmost cell lost a carry at cycle "
                    f"{self.cycle}: row sum needs bit l+2 (intermediate "
                    "T >= 2^(l+1)); the printed Fig. 2 array computes this "
                    "operand set incorrectly"
                )
            new_tl, new_top = totl & 1, (totl >> 1) & 1
            new_c0_l = new_c1_l = None
            new_t_top = None
        else:
            new_tl = totl & 1
            new_c0_l = (totl >> 1) & 1
            new_c1_l = (totl >> 2) & 1
            # Top cell (j = l+1): 1 HA + 1 XOR; no x·y (y_{l+1} = 0).
            tot_top = int(t[l + 2]) + 2 * int(c1[l]) + int(c0[l])
            if tot_top >= 4 and self._productive(l + 1):
                raise SimulationError(
                    f"corrected-mode top cell overflow at cycle {self.cycle}: "
                    "S_i >= 2^(l+3) should be mathematically impossible"
                )
            new_t_top, new_top = tot_top & 1, (tot_top >> 1) & 1

        # --- synchronous capture (simultaneous) ---
        t[1] = new_t1
        if new_t_mid is not None:
            t[2:l] = new_t_mid
            c0[2:l] = new_c0_mid  # regular cell j writes C0(j), C1(j)
            c1[2:l] = new_c1_mid
        t[l] = new_tl
        if self.mode == "corrected":
            c0[l] = new_c0_l
            c1[l] = new_c1_l
            t[l + 1] = new_t_top
        # The top T register is the only one read by the cell that writes
        # it (the top cell's t_next feeds back as its own t_in two cycles
        # later), so it captures only on that cell's productive parity —
        # in hardware, a phase-gated enable.
        if self.cycle % 2 == self.top_cell % 2:
            t[self.top_t] = new_top
        c0[0] = new_c0_0
        c0[1] = new_c0_1
        c1[1] = new_c1_1
        # m pipeline: latch at the end of MUL1 (even) cycles.
        if self.cycle % 2 == 0:
            self.m_pipe[1:] = self.m_pipe[:-1]
            self.m_pipe[0] = m0_comb
        else:
            # x pipeline + X register: latch/shift at the end of MUL2 cycles.
            self.x_pipe[1:] = self.x_pipe[:-1]
            self.x_pipe[0] = x0
            self.x_shift >>= 1

        # Diagonal result capture (the datapath T register of Fig. 3).
        # Result bit b = t_{l+1, b+1}, finalized by cell b+1 at cycle
        # 2(l+1) + b + 1; bit l comes from the top position.
        tau = self.cycle
        first = 2 * l + 3
        if self.mode == "paper":
            if first <= tau <= 3 * l + 1:
                self.result_reg[tau - first] = t[tau - first + 1]
            if tau == 3 * l + 2:
                self.result_reg[l - 1] = t[l]
                self.result_reg[l] = new_top
        else:
            if first <= tau <= first + l:
                self.result_reg[tau - first] = t[tau - first + 1]

        self.cycle += 1
        if OBS.enabled:
            OBS.count("array.cycles")
            occ = OBS.occupancy
            if occ is not None:
                # Sample the cycle just executed (tau): which cells computed
                # a real row, per the same parity gating the overflow checks
                # use.  Validated against the analytic 2i+j closed form.
                busy = occ.sample(
                    "array", tau, self.busy_mask(tau), self.top_cell + 1
                )
                OBS.counter_event("occupancy.array", busy, cat="array")
            if OBS.trace_cycles:
                OBS.instant("array.cycle", cat="array", cycle=self.cycle)
        if self.probe is not None:
            self.probe(self)

    def _productive(self, cell: int) -> bool:
        """True when ``cell`` is computing a real row this cycle."""
        if (self.cycle - cell) % 2:
            return False
        row = (self.cycle - cell) // 2
        return 0 <= row <= self.l + 1

    def busy_mask(self, cycle: Optional[int] = None) -> int:
        """Bitmask of productive cells at ``cycle`` (default: current cycle).

        Bit ``j`` set iff cell ``j`` computes a real row: same predicate as
        :meth:`_productive`, evaluated for every cell position.
        """
        if cycle is None:
            cycle = self.cycle
        mask = 0
        for j in range(self.top_cell + 1):
            if (cycle - j) % 2 == 0 and 0 <= (cycle - j) // 2 <= self.l + 1:
                mask |= 1 << j
        return mask

    # ------------------------------------------------------------------
    # Whole multiplications
    # ------------------------------------------------------------------
    def run_multiplication(self, x: int, y: int, n: int) -> MultiplicationResult:
        """Execute one complete Montgomery multiplication, cycle by cycle.

        Returns the result (``x·y·2^{-(l+2)} mod 2N``) together with the
        measured cycle counts: ``datapath_cycles`` (3l+3 paper / 3l+4
        corrected) and ``total_cycles`` including the OUT cycle (3l+4 /
        3l+5), matching the paper's ``T_MMM`` accounting.
        """
        self.load(x, y, n)
        datapath = self.datapath_cycles
        for _ in range(datapath):
            self.step()
        value = bit_array_to_int(self.result_reg)
        return MultiplicationResult(
            value=value,
            datapath_cycles=datapath,
            total_cycles=datapath + 1,
        )

    def result_value(self) -> int:
        """Current contents of the datapath result register, as an integer."""
        return bit_array_to_int(self.result_reg)

    # ------------------------------------------------------------------
    # Flight-recorder probes
    # ------------------------------------------------------------------
    def probe_layout(self):
        """``(name, bit_width)`` pairs describing :meth:`probe_values`.

        The names mirror the gate-level MMMC's probe set (same register
        classes the fault campaigns target), so a flight-recorder window
        captured on this model reads like one captured on the netlist.
        """
        return [
            ("t", len(self.t_reg) - 1),
            ("c0", len(self.c0_reg)),
            ("c1", len(self.c1_reg) - 1),
            ("x_pipe", len(self.x_pipe)),
            ("m_pipe", len(self.m_pipe)),
            ("x_shift", self.l + 1),
            ("result", self.l + 1),
        ]

    def probe_values(self):
        """One flat per-cycle sample of the register state (as integers)."""
        return (
            bit_array_to_int(self.t_reg[1:]),
            bit_array_to_int(self.c0_reg),
            bit_array_to_int(self.c1_reg[1:]),
            bit_array_to_int(self.x_pipe),
            bit_array_to_int(self.m_pipe),
            self.x_shift,
            bit_array_to_int(self.result_reg),
        )

    def attach_flight_recorder(self, recorder) -> None:
        """Sample ``recorder`` (a duck-typed FlightRecorder) every cycle.

        Installs a :attr:`probe` callback that feeds :meth:`probe_values`
        into ``recorder.sample(cycle, values)`` after each :meth:`step`.
        """
        def _probe(model: "SystolicArrayRTL") -> None:
            if recorder.wants_sample(model.cycle - 1):
                recorder.sample(model.cycle - 1, model.probe_values())

        self.probe = _probe

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SystolicArrayRTL(l={self.l}, mode={self.mode!r}, cycle={self.cycle})"
