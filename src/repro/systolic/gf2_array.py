"""The dual-field companion array: systolic Montgomery in GF(2^m).

GF(2) addition is XOR — **no carries** — so the row update of Algorithm 2
collapses to ``t_{i,j} = t_{i-1,j+1} ⊕ a_i·b_j ⊕ m_i·f_j`` and the two
architectural headaches of the GF(p) array disappear:

* no carry chain between cells → no C0/C1 registers, the regular cell is
  2 AND + 2 XOR (vs 5 XOR + 7 AND + 2 OR), and there is **no top-cell
  overflow** (the result degree is always < m, so exactly ``m``
  iterations suffice — no ``+2`` bound margin);
* the only inter-cell dependency left is the broadcast of ``a_i`` and
  ``m_i``, giving a genuine architecture choice:

  - :class:`Gf2ArrayBroadcast` — fan ``a_i``/``m_i`` out to every cell
    and retire **one full row per cycle**: ``m + 1`` cycles per
    multiplication, at a clock limited by the broadcast net (fanout m);
  - :class:`Gf2ArraySystolic` — pipeline ``a_i``/``m_i`` through the same
    two-cycle ``2i+j`` wavefront as the paper's GF(p) array: ``3m - 1``
    datapath cycles at a cell-local (l-independent) clock.

Both are cycle-accurate, NumPy-vectorized, and proven equal to the
algorithmic GF(2^m) Montgomery product; the dual-field benchmark prices
the crossover.  This realizes, at the architecture level, the Savaş–
Tenca–Koç dual-field claim the paper cites [24].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.montgomery.gf2 import GF2MontgomeryContext
from repro.utils.bits import bit_array_to_int, int_to_bit_array

__all__ = ["Gf2MultiplicationResult", "Gf2ArrayBroadcast", "Gf2ArraySystolic"]


@dataclass(frozen=True)
class Gf2MultiplicationResult:
    """Outcome of one cycle-accurate GF(2^m) multiplication."""

    value: int
    datapath_cycles: int
    total_cycles: int


class Gf2ArrayBroadcast:
    """One row per cycle: global ``a_i``/``m_i`` broadcast.

    Per cycle: ``m_i = t_0 ⊕ a_i·b_0`` (computed at the LSB cell, fanned
    out), then every cell updates ``t_j ← t_{j+1}' ...`` — modeled as the
    whole-row XOR update.  ``m`` datapath cycles, one OUT cycle.
    """

    def __init__(self, ctx: GF2MontgomeryContext) -> None:
        self.ctx = ctx
        self.m = ctx.m
        self.t = 0
        self.a_shift = 0
        self.cycle = 0

    def load(self, a: int, b: int) -> None:
        self.ctx.check_element("a", a)
        self.ctx.check_element("b", b)
        self.t = 0
        self.a_shift = a
        self._b = b
        self.cycle = 0

    def step(self) -> None:
        a_i = self.a_shift & 1
        m_i = (self.t ^ (a_i & self._b)) & 1
        self.t = (self.t ^ (a_i * self._b) ^ (m_i * self.ctx.modulus)) >> 1
        self.a_shift >>= 1
        self.cycle += 1

    def multiply(self, a: int, b: int) -> Gf2MultiplicationResult:
        self.load(a, b)
        for _ in range(self.m):
            self.step()
        return Gf2MultiplicationResult(
            value=self.t, datapath_cycles=self.m, total_cycles=self.m + 1
        )

    def clock_period_ns(self, base_tp_ns: float = 9.3) -> float:
        """Broadcast-limited clock: fanout-m net on the m_i wire.

        Modeled as the cell-local clock plus a log2(m) buffered-tree
        penalty — the standard fanout model."""
        import math

        return base_tp_ns * (0.7 + 0.12 * math.log2(max(self.m, 2)))


class Gf2ArraySystolic:
    """The paper's wavefront, carry-free: cell ``j`` computes ``t_{i,j}``
    at cycle ``2i + j``.

    Register inventory: T(1..m) digit registers, the serial A register,
    and the two-cycle a/m pipelines — no carry registers at all (the
    GF(p) array's C0/C1 simply vanish).  Result bit ``b`` is captured
    from the diagonal at cycle ``2(m-1) + b + 1``; datapath ``3m - 1``
    cycles, one OUT cycle.
    """

    def __init__(self, ctx: GF2MontgomeryContext) -> None:
        if ctx.m < 2:
            raise ParameterError("systolic GF(2^m) array needs m >= 2")
        self.ctx = ctx
        self.m = ctx.m
        m = ctx.m
        self.t_reg = np.zeros(m + 2, dtype=np.uint8)  # T(1..m+1); T(m+1)≡0 src
        # m-pipe stage k serves cells 2k+1, 2k+2; the top consumer is cell
        # m itself (monic f_m), so (m+1)//2 stages are needed.
        pipe_len = max((m + 1) // 2, 1)
        self.a_pipe = np.zeros(pipe_len, dtype=np.uint8)
        self.m_pipe = np.zeros(pipe_len, dtype=np.uint8)
        self.a_shift = 0
        self.result_reg = np.zeros(m, dtype=np.uint8)
        self.cycle = 0
        self.b_bits = np.zeros(m, dtype=np.uint8)
        self.f_bits = np.zeros(m + 1, dtype=np.uint8)
        js = np.arange(2, m)
        self._idx_a = (js - 2) // 2
        self._idx_m = (js - 1) // 2

    @property
    def datapath_cycles(self) -> int:
        """Last digit ``t_{m-1,m}`` lands at ``2(m-1)+m = 3m-2``: 3m-1 cycles."""
        return 3 * self.m - 1

    def load(self, a: int, b: int) -> None:
        self.ctx.check_element("a", a)
        self.ctx.check_element("b", b)
        m = self.m
        self.b_bits = int_to_bit_array(b, m)
        self.f_bits = int_to_bit_array(self.ctx.modulus, m + 1)
        self.a_shift = a
        self.t_reg[:] = 0
        self.a_pipe[:] = 0
        self.m_pipe[:] = 0
        self.result_reg[:] = 0
        self.cycle = 0

    def step(self) -> None:
        m = self.m
        t = self.t_reg
        a0 = self.a_shift & 1

        # Cell 0: generate m_i (S bit 0 is zero by construction).
        m0_comb = int(t[1]) ^ (a0 & int(self.b_bits[0]))
        # Cell 1: t = t_in ⊕ a_i·b_1 ⊕ m_i·f_1 (m from pipe stage 0).
        new_t1 = (
            int(t[2])
            ^ (a0 & int(self.b_bits[1]))
            ^ (int(self.m_pipe[0]) & int(self.f_bits[1]))
        )
        # Cells 2..m-1, vectorized.
        if m > 2:
            new_mid = (
                t[3 : m + 1]
                ^ (self.a_pipe[self._idx_a] & self.b_bits[2:m])
                ^ (self.m_pipe[self._idx_m] & self.f_bits[2:m])
            )
        else:
            new_mid = None
        # Cell m: t_{i,m} = m_i·f_m = m_i (f monic), pipelined m.
        new_tm = int(self.m_pipe[(m - 1) // 2]) & int(self.f_bits[m])

        t[1] = new_t1
        if new_mid is not None:
            t[2:m] = new_mid
        t[m] = new_tm
        if self.cycle % 2 == 0:
            self.m_pipe[1:] = self.m_pipe[:-1]
            self.m_pipe[0] = m0_comb
        else:
            self.a_pipe[1:] = self.a_pipe[:-1]
            self.a_pipe[0] = a0
            self.a_shift >>= 1

        # Diagonal result capture: bit b = t_{m-1, b+1} at 2(m-1)+b+1.
        first = 2 * m - 1
        if first <= self.cycle <= first + m - 1:
            self.result_reg[self.cycle - first] = t[self.cycle - first + 1]
        self.cycle += 1

    def multiply(self, a: int, b: int) -> Gf2MultiplicationResult:
        self.load(a, b)
        for _ in range(self.datapath_cycles):
            self.step()
        return Gf2MultiplicationResult(
            value=bit_array_to_int(self.result_reg),
            datapath_cycles=self.datapath_cycles,
            total_cycles=self.datapath_cycles + 1,
        )

    @staticmethod
    def cell_gate_count() -> dict:
        """Per regular cell: 2 AND + 2 XOR (vs the GF(p) cell's 14)."""
        return {"and": 2, "xor": 2, "or": 0}
