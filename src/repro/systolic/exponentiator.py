"""The modular exponentiator of Section 4.5, built on the MMMC.

:class:`ModularExponentiator` realizes Algorithm 3 by issuing Montgomery
multiplications to an engine:

* ``engine="rtl"`` — every multiplication runs through the cycle-accurate
  :class:`~repro.systolic.mmmc.MMMC`; total cycles are measured.
* ``engine="gate"`` — every multiplication runs through the gate-level
  netlist twin (:class:`~repro.systolic.mmmc_netlist.GateLevelMMMC`) on
  the compiled kernel engine; cycles are measured at the netlist level
  and provably equal the behavioral RTL count.
* ``engine="golden"`` — multiplications use the big-integer Algorithm 2
  while cycle accounting uses the RTL cost (``3l+4`` per operation, which
  the test suite proves identical to the measured RTL count).  This makes
  RSA-scale benchmarks tractable without changing any reported number.

The operation sequence is exactly the paper's: pre-multiplication by
``R² mod N`` (into the Montgomery domain), the left-to-right binary scan,
and the final multiplication by 1 (out of the domain).  No intermediate
value is ever reduced — everything lives in the ``[0, 2N)`` window, which
is the point of the no-subtraction bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ParameterError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.observability import OBS
from repro.systolic.mmmc import MMMC
from repro.systolic.timing import (
    exponentiation_cycles_measured_model,
    mmm_cycles,
    mmm_cycles_corrected,
)

__all__ = ["ModularExponentiator", "ExponentiationRun"]


@dataclass
class ExponentiationRun:
    """Result and measured costs of one exponentiation."""

    result: int
    cycles: int
    operations: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def num_multiplications(self) -> int:
        return len(self.operations)


class ModularExponentiator:
    """Square-and-multiply exponentiator over a systolic Montgomery multiplier.

    Parameters
    ----------
    ctx:
        Montgomery parameter context (fixes N, l, R = 2^(l+2), R² mod N).
    engine:
        ``"rtl"`` (cycle-accurate behavioral hardware model), ``"gate"``
        (gate-level netlist twin on compiled kernels) or ``"golden"``
        (big-integer arithmetic with the RTL cycle accounting).
    multiplier:
        Optional pre-built hardware multiplier (a behavioral ``MMMC`` or a
        ``GateLevelMMMC``) to use instead of constructing one.  Lets the
        serving backends reuse one elaborated netlist across requests; it
        must match ``ctx.l`` and ``mode``.  Only valid with a hardware
        engine (``"rtl"`` / ``"gate"``).
    """

    def __init__(
        self,
        ctx: MontgomeryContext,
        engine: str = "rtl",
        *,
        mode: str = "corrected",
        multiplier=None,
    ) -> None:
        if engine not in ("rtl", "gate", "golden"):
            raise ParameterError(f"unknown engine {engine!r}")
        self.ctx = ctx
        self.engine = engine
        self.mode = mode
        if engine == "golden":
            if multiplier is not None:
                raise ParameterError(
                    "multiplier= requires a hardware engine ('rtl' or 'gate')"
                )
            self.mmmc = None
        elif multiplier is not None:
            self.mmmc = multiplier
        elif engine == "gate":
            from repro.systolic.mmmc_netlist import GateLevelMMMC

            self.mmmc = GateLevelMMMC(ctx.l, mode=mode, simulator="compiled")
        else:
            self.mmmc = MMMC(ctx.l, mode=mode)
        self.cycles = 0

    @classmethod
    def for_modulus(
        cls,
        modulus: int,
        *,
        engine: str = "golden",
        mode: str = "corrected",
        l: int = 0,
    ) -> "ModularExponentiator":
        """Exponentiator over the shared cached parameter set for ``modulus``.

        Goes through
        :func:`~repro.montgomery.params.precompute_montgomery_constants`,
        so repeated constructions for the same modulus (the serving layer's
        per-batch workers, the RSA cipher's three exponentiators) reuse one
        pre-computation of ``R² mod N`` and ``N'``.
        """
        from repro.montgomery.params import precompute_montgomery_constants

        return cls(precompute_montgomery_constants(modulus, l), engine, mode=mode)

    # ------------------------------------------------------------------
    def _mont(self, kind: str, x: int, y: int, run: ExponentiationRun) -> int:
        n = self.ctx.modulus
        observed = OBS.enabled
        if observed:
            OBS.begin(kind, cat="exponentiator")
        if self.mmmc is not None:
            rec = self.mmmc.multiply(x, y, n)
            value, cost = rec.result, rec.cycles
        else:
            value = montgomery_no_subtraction(self.ctx, x, y)
            cost = (
                mmm_cycles_corrected(self.ctx.l)
                if self.mode == "corrected"
                else mmm_cycles(self.ctx.l)
            )
            if observed:
                # The golden engine skips the RTL, so the trace clock
                # advances by the modelled cost in one jump.
                OBS.tick(cost)
        if observed:
            OBS.end(cycles=cost)
            OBS.count("exponentiator.operations", kind=kind)
            OBS.record("exponentiator.operation_cycles", cost, kind=kind)
        run.cycles += cost
        run.operations.append((kind, cost))
        return value

    def exponentiate(self, message: int, exponent: int) -> ExponentiationRun:
        """Compute ``message ** exponent mod N`` through the hardware model.

        Returns the reduced result (in ``[0, N)``) and the measured cycle
        total, which equals
        :func:`~repro.systolic.timing.exponentiation_cycles_measured_model`
        for the same exponent.
        """
        ctx = self.ctx
        if not 0 <= message < ctx.modulus:
            raise ParameterError(
                f"message must be in [0, N); got {message} for N={ctx.modulus}"
            )
        if exponent <= 0:
            raise ParameterError(f"exponent must be >= 1, got {exponent}")
        run = ExponentiationRun(result=0, cycles=0)
        if OBS.enabled:
            OBS.begin(
                "exponentiate",
                cat="exponentiator",
                l=ctx.l,
                engine=self.engine,
                exponent_bits=exponent.bit_length(),
            )
        # Pre-processing: into the Montgomery domain.
        m_bar = self._mont("pre", message, ctx.r2_mod_n, run)
        a = m_bar
        # Left-to-right binary scan (Algorithm 3), MSB implicit.
        for i in reversed(range(exponent.bit_length() - 1)):
            a = self._mont("square", a, a, run)
            if (exponent >> i) & 1:
                a = self._mont("multiply", a, m_bar, run)
        # Post-processing: out of the domain (Mont(A, 1) <= N).
        a = self._mont("post", a, 1, run)
        run.result = a % ctx.modulus
        self.cycles += run.cycles
        if OBS.enabled:
            OBS.end(cycles=run.cycles, multiplications=run.num_multiplications)
            OBS.count("exponentiator.exponentiations")
            OBS.record("exponentiator.exponentiation_cycles", run.cycles)
        # Cross-check the measurement against the closed-form model.
        expected = exponentiation_cycles_measured_model(
            ctx.l, exponent, mode=self.mode
        ).total
        if run.cycles != expected:
            raise AssertionError(
                f"measured {run.cycles} cycles, cost model says {expected}"
            )
        return run

    def exponentiate_windowed(
        self,
        message: int,
        exponent: int,
        *,
        window: int = 4,
        method: str = "sliding",
    ) -> ExponentiationRun:
        """Windowed exponentiation through the same engine.

        Builds the :mod:`repro.montgomery.windowed` schedule and executes
        it with this exponentiator's multiplier (cycle-accurate when the
        engine is ``"rtl"``), trading a precomputed power table for fewer
        multiplier passes; see the window ablation benchmark.
        """
        from repro.montgomery.windowed import (
            binary_schedule,
            execute_schedule,
            mary_schedule,
            sliding_window_schedule,
        )

        if method == "sliding":
            sched = sliding_window_schedule(exponent, window)
        elif method == "mary":
            sched = mary_schedule(exponent, window)
        elif method == "binary":
            sched = binary_schedule(exponent)
        else:
            raise ParameterError(f"unknown method {method!r}")
        run = ExponentiationRun(result=0, cycles=0)
        if OBS.enabled:
            OBS.begin(
                "exponentiate_windowed",
                cat="exponentiator",
                l=self.ctx.l,
                method=method,
                window=window,
            )

        def hook(ctx: MontgomeryContext, x: int, y: int) -> int:
            return self._mont("window-op", x, y, run)

        run.result = execute_schedule(self.ctx, sched, message, mont=hook)
        self.cycles += run.cycles
        if OBS.enabled:
            OBS.end(cycles=run.cycles, multiplications=run.num_multiplications)
            OBS.count("exponentiator.exponentiations")
            OBS.record("exponentiator.exponentiation_cycles", run.cycles)
        return run
