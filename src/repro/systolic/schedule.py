"""The ``2i + j`` wavefront schedule of the linear systolic array.

The paper's key scheduling fact (Section 4.2/4.3): with a single row of
``l+1`` cells, cell ``j`` behaves like virtual cell ``(i, j)`` and computes
digit ``t_{i,j}`` at clock cycle ``2i + j``.  This module makes that
schedule a first-class object so tests and benchmarks can reason about it:
which cell is active when, pipeline occupancy, the result-ready time
``2(l+2) + l`` and the derived total latency ``3l + 4``.

Cycle convention (used consistently by the RTL model and the MMMC):
cycle 0 is the first cycle after operand load; row indices are 0-based
(``i = 0 .. l+1``), so our cycle ``2i + j`` equals the paper's 1-based
``2i' + j`` with ``i' = i + 1`` shifted by 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = ["WavefrontSchedule", "CellActivity"]


@dataclass(frozen=True)
class CellActivity:
    """One scheduled computation: cell ``j`` processing row ``i`` at ``cycle``."""

    cycle: int
    row: int
    cell: int


class WavefrontSchedule:
    """Schedule of the ``l+1``-cell linear array over ``l+2`` rows.

    Parameters
    ----------
    l:
        Modulus bit length.  The array has cells ``j = 0..l`` and processes
        rows ``i = 0..l+1`` (the ``l+2`` iterations of Algorithm 2).
    """

    def __init__(self, l: int) -> None:
        ensure_positive("l", l)
        if l < 2:
            raise ParameterError(f"array needs l >= 2 (got l={l})")
        self.l = l

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.l + 1

    @property
    def num_rows(self) -> int:
        return self.l + 2

    @property
    def last_compute_cycle(self) -> int:
        """Cycle of the final digit: cell ``l`` processing row ``l+1``."""
        return 2 * (self.num_rows - 1) + self.l  # = 3l + 2

    @property
    def datapath_cycles(self) -> int:
        """Cycles the array must be clocked for one multiplication (3l+3)."""
        return self.last_compute_cycle + 1

    def compute_cycle(self, row: int, cell: int) -> int:
        """Clock cycle at which ``cell`` computes ``t_{row, cell}``."""
        self._check(row, cell)
        return 2 * row + cell

    def active_row(self, cycle: int, cell: int) -> Optional[int]:
        """Row processed by ``cell`` at ``cycle`` (None when idle/garbage).

        A cell is productively active only on cycles matching its parity
        and within its window ``[j, 2(l+1)+j]``.
        """
        if cell < 0 or cell > self.l:
            raise ParameterError(f"cell {cell} outside [0, {self.l}]")
        if (cycle - cell) % 2:
            return None
        row = (cycle - cell) // 2
        return row if 0 <= row < self.num_rows else None

    def active_cells(self, cycle: int) -> List[CellActivity]:
        """All productive cell activities at ``cycle``."""
        acts = []
        for j in range(self.num_cells):
            row = self.active_row(cycle, j)
            if row is not None:
                acts.append(CellActivity(cycle=cycle, row=row, cell=j))
        return acts

    def occupancy(self, cycle: int) -> float:
        """Fraction of cells doing productive work at ``cycle``.

        Peaks near 1/2 mid-multiplication — the structural cost of the
        two-cycle issue interval, and the opening Blum–Paar's u-bit cells
        attack differently.
        """
        return len(self.active_cells(cycle)) / self.num_cells

    def __iter__(self) -> Iterator[CellActivity]:
        """All activities in (cycle, cell) order."""
        for cycle in range(self.datapath_cycles):
            yield from self.active_cells(cycle)

    # ------------------------------------------------------------------
    def x_consumption_schedule(self) -> List[Tuple[int, int]]:
        """(cycle, i) pairs at which ``x_i`` is first consumed (by cell 0)."""
        return [(2 * i, i) for i in range(self.num_rows)]

    def result_bit_ready(self, bit: int) -> int:
        """Cycle after which result bit ``bit`` is final in register T(bit+1).

        The result is ``T_{l+1} = S_{l+1}/2``: its bit ``b`` is digit
        ``t_{l+1, b+1}``, computed by cell ``b+1`` at ``2(l+1) + b + 1``.
        """
        if not 0 <= bit <= self.l:
            raise ParameterError(f"result bit {bit} outside [0, {self.l}]")
        return 2 * (self.num_rows - 1) + bit + 1

    def _check(self, row: int, cell: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ParameterError(f"row {row} outside [0, {self.num_rows})")
        if not 0 <= cell <= self.l:
            raise ParameterError(f"cell {cell} outside [0, {self.l}]")
