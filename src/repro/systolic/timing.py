"""The paper's closed-form cycle-count formulas (Sections 4.4–4.5).

Every number the evaluation tables report decomposes into one of these
formulas multiplied by the measured clock period, so they live in one
module that both the simulators (which must *measure* the same counts) and
the table-regeneration benchmarks import.

Formulas, for modulus bit length ``l``:

* one Montgomery multiplication:      ``T_MMM    = 3l + 4``          (§4.4)
* exponentiation pre-computation:     ``T_pre    = 2(2(l+2)+1) + l = 5l + 10``
* exponentiation post-processing:     ``T_post   = l + 2``
* full exponentiation bounds (Eq. 10):
  ``3l² + 10l + 12  ≤  T_mod-exp  ≤  6l² + 14l + 12``
* average (balanced-Hamming-weight exponent): the midpoint
  ``4.5l² + 12l + 12``, which reproduces Table 1's milliseconds when
  multiplied by Table 1's Tp.

The paper's pre/post counts assume a pipelined issue the multiplier's
controller can overlap (a new row every other cycle, issue interval
``2(l+2)+1``); our non-overlapped RTL exponentiator measures
``3l+4`` per operation instead.  Both accountings are exposed so
EXPERIMENTS.md can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.utils.bits import hamming_weight
from repro.utils.validation import ensure_positive

__all__ = [
    "mmm_cycles",
    "mmm_cycles_corrected",
    "precomputation_cycles",
    "postprocessing_cycles",
    "exponentiation_cycle_bounds",
    "average_exponentiation_cycles",
    "exponentiation_cycles_paper",
    "exponentiation_cycles_measured_model",
    "ExponentiationCycleBreakdown",
]


def mmm_cycles(l: int) -> int:
    """Clock cycles for one Montgomery modular multiplication: ``3l + 4``.

    Derivation (§4.4): digit ``t_{i,j}`` is computed at cycle ``2i + j``
    (1-based rows), so the last digit ``t_{l+2,l}`` lands at
    ``2(l+2) + l = 3l + 4``.
    """
    ensure_positive("l", l)
    return 3 * l + 4


def mmm_cycles_corrected(l: int) -> int:
    """Latency of the *corrected* array (extra top cell): ``3l + 5``.

    One cycle more than the paper's ``3l+4`` — the price of the extra cell
    position that makes the multiplier exact on the full ``[0, 2N)``
    operand window (see the array-mode discussion in
    :mod:`repro.systolic.array`).
    """
    ensure_positive("l", l)
    return 3 * l + 5


def precomputation_cycles(l: int) -> int:
    """Paper's pre-computation count: ``2(2(l+2)+1) + l = 5l + 10``."""
    ensure_positive("l", l)
    return 2 * (2 * (l + 2) + 1) + l


def postprocessing_cycles(l: int) -> int:
    """Paper's post-processing count (final Mont(A, 1)): ``l + 2``."""
    ensure_positive("l", l)
    return l + 2


def exponentiation_cycle_bounds(l: int) -> Tuple[int, int]:
    """Eq. (10): inclusive (best, worst) cycle bounds for one exponentiation.

    Best case: exponent with a single 1-bit → ``l`` squarings only:
    ``l(3l+4) + (5l+10) + (l+2) = 3l² + 10l + 12``.
    Worst case: all-ones exponent → ``2l`` operations:
    ``2l(3l+4) + (5l+10) + (l+2) = 6l² + 14l + 12``.
    """
    ensure_positive("l", l)
    return (3 * l * l + 10 * l + 12, 6 * l * l + 14 * l + 12)


def average_exponentiation_cycles(l: int) -> float:
    """Average cycles for a balanced-Hamming-weight ``l``-bit exponent.

    The midpoint of Eq. (10): ``4.5l² + 12l + 12``.  Multiplying by the
    Tp column reproduces Table 1's ``T_mod-exp`` within its rounding.
    """
    lo, hi = exponentiation_cycle_bounds(l)
    return (lo + hi) / 2


@dataclass(frozen=True)
class ExponentiationCycleBreakdown:
    """Cycle decomposition of one concrete exponentiation."""

    pre: int
    squares: int
    multiplies: int
    square_cycles: int
    multiply_cycles: int
    post: int

    @property
    def total(self) -> int:
        return self.pre + self.square_cycles + self.multiply_cycles + self.post


def exponentiation_cycles_paper(l: int, exponent: int) -> ExponentiationCycleBreakdown:
    """Cycle count for a concrete exponent with the paper's accounting.

    ``bitlen(E) - 1`` squarings and ``weight(E) - 1`` multiplications at
    ``3l+4`` cycles each, plus the paper's pre (``5l+10``) and post
    (``l+2``) counts.
    """
    ensure_positive("exponent", exponent)
    mmm = mmm_cycles(l)
    squares = exponent.bit_length() - 1
    multiplies = hamming_weight(exponent) - 1
    return ExponentiationCycleBreakdown(
        pre=precomputation_cycles(l),
        squares=squares,
        multiplies=multiplies,
        square_cycles=squares * mmm,
        multiply_cycles=multiplies * mmm,
        post=postprocessing_cycles(l),
    )


def exponentiation_cycles_measured_model(
    l: int, exponent: int, *, mode: str = "corrected"
) -> ExponentiationCycleBreakdown:
    """Cycle count with our non-overlapped RTL accounting.

    Every operation — including the pre-multiplication by ``R² mod N`` and
    the post-multiplication by 1 — is a full MMMC run (``3l+5`` cycles in
    the default corrected mode, ``3l+4`` in paper mode).  The RTL
    exponentiator's measured totals match this exactly (enforced by tests).
    """
    ensure_positive("exponent", exponent)
    mmm = mmm_cycles_corrected(l) if mode == "corrected" else mmm_cycles(l)
    squares = exponent.bit_length() - 1
    multiplies = hamming_weight(exponent) - 1
    return ExponentiationCycleBreakdown(
        pre=mmm,
        squares=squares,
        multiplies=multiplies,
        square_cycles=squares * mmm,
        multiply_cycles=multiplies * mmm,
        post=mmm,
    )
