"""The algorithmic state machine of Fig. 4.

:class:`MMMController` is the explicit four-state controller
(IDLE → MUL1 ⇄ MUL2 → OUT → IDLE) driving the multiplier datapath.  Per
clock cycle it emits a :class:`ControlSignals` bundle — load/shift/count
strobes — which the behavioral MMMC obeys and the gate-level MMMC netlist
mirrors structurally.

Deviation from the paper, documented in DESIGN.md: Fig. 4 increments the
counter only in MUL2 and the text places ``count-end`` at counter value
``2(l+1)`` (which cannot fit the ``log2(l+2)``-bit counter of Fig. 3);
these statements are mutually inconsistent, so we implement the variant
that realizes the stated total of ``3l+4`` cycles — a counter that
increments every MUL cycle with the comparator set at ``3l+2``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.observability import OBS
from repro.utils.validation import ensure_positive

__all__ = ["State", "ControlSignals", "MMMController"]


class State(enum.Enum):
    """The four ASM states of Fig. 4."""

    IDLE = "IDLE"
    MUL1 = "MUL1"
    MUL2 = "MUL2"
    OUT = "OUT"


@dataclass(frozen=True)
class ControlSignals:
    """One cycle's control strobes (Fig. 3's controller outputs).

    Attributes mirror the labelled arrows of Fig. 3: register load, X
    right-shift, counter reset/increment, plus the DONE flag and the two
    pipeline-latch phases of the array model.
    """

    state: State
    load_registers: bool
    clock_array: bool
    shift_x: bool
    latch_m_pipe: bool
    reset_counter: bool
    increment_counter: bool
    done: bool


class MMMController:
    """Cycle-stepped model of the Fig. 4 ASM.

    Use: call :meth:`start` while IDLE, then :meth:`tick` once per clock;
    each tick returns the signals for that cycle and advances the state.
    """

    def __init__(self, l: int, datapath_cycles: Optional[int] = None) -> None:
        ensure_positive("l", l)
        self.l = l
        # Comparator constant: index of the last datapath cycle.  Defaults
        # to the paper's 3l+3-cycle datapath; the corrected array passes
        # its own (3l+4).
        cycles = datapath_cycles if datapath_cycles is not None else 3 * l + 3
        self.count_end_value = cycles - 1
        self.state = State.IDLE
        self.counter = 0
        self._start_pending = False
        self.state_log: List[State] = []

    def start(self) -> None:
        """Assert the START input (valid only while IDLE)."""
        if self.state is not State.IDLE:
            raise ProtocolError(f"START while in {self.state.name}")
        self._start_pending = True

    @property
    def count_end(self) -> bool:
        """The comparator output of Fig. 3."""
        return self.counter == self.count_end_value

    def tick(self) -> ControlSignals:
        """Emit this cycle's control signals, then take the ASM transition."""
        st = self.state
        self.state_log.append(st)
        if OBS.enabled:
            OBS.count("controller.state_cycles", state=st.name)
        if st is State.IDLE:
            sig = ControlSignals(
                state=st,
                load_registers=self._start_pending,
                clock_array=False,
                shift_x=False,
                latch_m_pipe=False,
                reset_counter=self._start_pending,
                increment_counter=False,
                done=False,
            )
            if self._start_pending:
                self.counter = 0
                self._start_pending = False
                self.state = State.MUL1
            return sig
        if st is State.MUL1:
            sig = ControlSignals(
                state=st,
                load_registers=False,
                clock_array=True,
                shift_x=False,
                latch_m_pipe=True,
                reset_counter=False,
                increment_counter=True,
                done=False,
            )
            at_end = self.count_end
            self.counter += 1
            self.state = State.OUT if at_end else State.MUL2
            return sig
        if st is State.MUL2:
            sig = ControlSignals(
                state=st,
                load_registers=False,
                clock_array=True,
                shift_x=True,
                latch_m_pipe=False,
                reset_counter=False,
                increment_counter=True,
                done=False,
            )
            at_end = self.count_end
            self.counter += 1
            self.state = State.OUT if at_end else State.MUL1
            return sig
        # OUT: present the result, raise DONE, return to IDLE.
        sig = ControlSignals(
            state=st,
            load_registers=False,
            clock_array=False,
            shift_x=False,
            latch_m_pipe=False,
            reset_counter=False,
            increment_counter=False,
            done=True,
        )
        self.state = State.IDLE
        return sig
