"""Computing the Montgomery constant R² mod N with the multiplier alone.

Every Montgomery pipeline needs ``R² mod N`` to enter the domain.  The
paper treats it as given; a real device must produce it after each key
load, ideally *without* a general divider.  The standard bootstrap:

1. ``R mod N`` costs only shifts and conditional subtractions
   (:func:`r_mod_n_by_shifts` — the one place a subtractor is ever
   needed, and it runs once per key, off the critical path);
2. each Montgomery squaring **doubles the exponent of 2**:
   ``Mont(2^k mod N, 2^k mod N) = 2^(2k - r) mod N`` — so starting from
   ``c = R mod N = 2^r mod N``, squaring ``ceil(log2 r)``-ish times with
   occasional doublings reaches ``2^(2r) mod N = R² mod N``.

:func:`compute_r2` implements the exponent-tracking version: it maintains
``c = 2^k mod N`` and repeatedly squares (k ← 2k−r) or doubles
(k ← k+1, one modular add) until ``k = 2r``.  Cost:
``O(log r)`` multiplier passes plus at most ``log2 r`` modular doublings.
The multiplications can run through any engine (including the
cycle-accurate hardware models).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ParameterError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext

__all__ = ["r_mod_n_by_shifts", "compute_r2", "bootstrap_plan"]


def r_mod_n_by_shifts(modulus: int, r_exponent: int) -> int:
    """``2^r mod N`` by r shift-and-conditionally-subtract steps.

    Exactly what a tiny sequential circuit (one shifter + one subtractor)
    computes; no multiplication or division involved.
    """
    if modulus <= 0 or modulus % 2 == 0:
        raise ParameterError("modulus must be odd and positive")
    if r_exponent < 0:
        raise ParameterError("r_exponent must be >= 0")
    acc = 1 % modulus
    for _ in range(r_exponent):
        acc <<= 1
        if acc >= modulus:
            acc -= modulus
    return acc


def bootstrap_plan(r_exponent: int) -> List[str]:
    """The square/double schedule reaching exponent ``2r`` from ``r``.

    Work backwards from ``2r``: halve when even (undoing a squaring needs
    target+r even ... forward: from k, square gives 2k−r, double gives
    k+1).  We plan forward greedily on the exponent *offset* d = k − r
    (square doubles d; double increments d), reaching d = r from d = 0:
    that is simply binary expansion of r — ``O(log r)`` steps.
    """
    if r_exponent <= 0:
        raise ParameterError("r_exponent must be positive")
    # Build d from its binary digits, MSB first: d = 0 -> ... -> r.
    plan: List[str] = []
    for bit in bin(r_exponent)[2:]:
        plan.append("square")  # d <- 2d
        if bit == "1":
            plan.append("double")  # d <- d + 1
    # The first 'square' acts on d=0 (no-op arithmetic-wise) but keeps the
    # schedule uniform; callers may skip leading no-ops.
    return plan


def compute_r2(
    ctx: MontgomeryContext,
    mont: Optional[Callable[[MontgomeryContext, int, int], int]] = None,
) -> Tuple[int, int]:
    """Compute ``R² mod N`` with multiplier passes only.

    Returns ``(R² mod N, multiplier_passes)``.  Cross-checked against the
    directly computed constant by the tests; usable with the hardware
    models via the ``mont`` hook (values stay inside the ``[0, 2N)``
    window throughout).
    """
    mul = mont or montgomery_no_subtraction
    n = ctx.modulus
    r = ctx.r_exponent
    c = r_mod_n_by_shifts(n, r)  # 2^r mod N
    d = 0  # c == 2^(r + d) mod N (up to the 2N window)
    passes = 0
    for step in bootstrap_plan(r):
        if step == "square":
            if d == 0:
                continue  # squaring 2^r yields 2^r: skip the no-op
            c = mul(ctx, c, c)
            passes += 1
            d *= 2
        else:
            c = c * 2
            if c >= 2 * n:
                c -= 2 * n
            d += 1
    assert d == r
    result = c % n
    # Final sanity: c represents 2^(2r) mod N.
    if result != ctx.r2_mod_n:
        # One congruence-preserving reduction is legitimate (window 2N).
        raise ParameterError(
            "bootstrap did not reach R^2 mod N — engine inconsistency"
        )
    return result, passes
