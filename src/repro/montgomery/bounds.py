"""Walter-bound analysis (paper Section 3, Eq. (2)).

The paper's key enabling result (due to Walter [34, 37], refined in
Batina–Muurling [1]) is:

    write R >= k·N.  With inputs X, Y < 2N the Montgomery output satisfies

        T = (X·Y + m·N) / R < (4/k)·N + N ,

    so T < 2N as soon as k >= 4 — i.e. **R >= 4N suffices** to feed
    multiplication outputs straight back as inputs, with no subtraction.

This module provides that bound symbolically (:func:`output_bound`), the
minimal-R search (:func:`minimal_r_exponent`), and empirical verifiers used
by the property tests and the bound-ablation benchmark: they confirm both
that R = 2^(l+2) never overflows the 2N window and that the *smaller*
R = 2^l (Blum–Paar territory without their extra step) genuinely does.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Tuple

from repro.errors import ParameterError
from repro.utils.validation import ensure_odd, ensure_positive

__all__ = [
    "output_bound",
    "minimal_r_exponent",
    "iteration_counts",
    "BoundProbe",
    "probe_window_stability",
    "worst_case_operands",
]


def output_bound(modulus: int, r: int) -> Fraction:
    """Upper bound on the Montgomery output for inputs below ``2N``.

    Implements Eq. (2): ``T < (4N²)/R + N`` exactly, as a fraction, so the
    k >= 4 threshold can be tested without floating-point slop.
    """
    ensure_odd("modulus", modulus)
    ensure_positive("r", r)
    return Fraction(4 * modulus * modulus, r) + modulus


def minimal_r_exponent(modulus: int) -> int:
    """Smallest ``r`` such that ``R = 2^r`` keeps Algorithm 2 closed on [0, 2N).

    By Eq. (2) the closure condition is ``R >= 4N``; the smallest power of
    two satisfying it is ``2^(bitlen(N) + 2)`` unless N is itself just below
    a power of two.  Returned from first principles (search), not from the
    formula, so tests can compare the two.
    """
    ensure_odd("modulus", modulus)
    r = 1
    exp = 0
    while r < 4 * modulus:
        r <<= 1
        exp += 1
    return exp


def iteration_counts(l: int) -> Tuple[int, int]:
    """Radix-2 iteration counts: (this paper, Blum–Paar [3]).

    The paper runs ``l + 2`` iterations (R = 2^(l+2)); Blum–Paar use
    R = 2^(l+3) and therefore ``l + 3`` — the per-multiplication saving the
    paper claims.  Returned as a pair for the ablation benchmark.
    """
    ensure_positive("l", l)
    return l + 2, l + 3


@dataclass(frozen=True)
class BoundProbe:
    """Result of an empirical window-stability probe.

    Attributes
    ----------
    r_exponent: the probed ``r`` (``R = 2^r``).
    closed: whether every probed product stayed inside ``[0, 2N)``.
    max_output: largest output observed.
    violations: operand pairs whose output escaped the window.
    """

    r_exponent: int
    closed: bool
    max_output: int
    violations: Tuple[Tuple[int, int], ...]


def _mont_once(n: int, r_exp: int, x: int, y: int) -> int:
    """One radix-2 Montgomery pass with R = 2^r_exp (no window checks)."""
    t = 0
    y0 = y & 1
    for i in range(r_exp):
        x_i = (x >> i) & 1
        m_i = (t ^ (x_i & y0)) & 1
        t = (t + x_i * y + m_i * n) >> 1
    return t


def probe_window_stability(
    modulus: int, r_exponent: int, operands: Iterable[Tuple[int, int]]
) -> BoundProbe:
    """Empirically test whether ``[0, 2N)`` is closed under Mont with ``2^r``.

    Runs the raw radix-2 recurrence (no safety checks) for every operand
    pair and records any output that escapes the window.  Used by the
    bound-ablation benchmark to show R = 2^(l+2) is safe while smaller R
    is not.
    """
    ensure_odd("modulus", modulus)
    violations: List[Tuple[int, int]] = []
    max_out = 0
    bound = 2 * modulus
    for x, y in operands:
        t = _mont_once(modulus, r_exponent, x, y)
        max_out = max(max_out, t)
        if t >= bound:
            violations.append((x, y))
    return BoundProbe(
        r_exponent=r_exponent,
        closed=not violations,
        max_output=max_out,
        violations=tuple(violations),
    )


def worst_case_operands(modulus: int) -> Tuple[int, int]:
    """Operands maximizing the Montgomery output: ``x = y = 2N - 1``.

    The bound Eq. (2) is monotone in X·Y, so the corner of the window is
    the stress case the probes and property tests should always include.
    """
    ensure_odd("modulus", modulus)
    return 2 * modulus - 1, 2 * modulus - 1
