"""Montgomery multiplication in GF(2^m) — the dual-field extension.

The paper cites Savaş–Tenca–Koç [24]: the same Montgomery datapath can
serve both GF(p) (RSA, prime-field ECC) and GF(2^m) (binary-field ECC) —
"obvious benefits for many applications of public key cryptography".
This module supplies the GF(2^m) side:

* polynomials over GF(2) as Python ints (bit ``i`` = coefficient of
  ``x^i``): carry-less multiplication, remainder, extended Euclid;
* Rabin irreducibility testing;
* :class:`GF2MontgomeryContext` with the bit-serial Montgomery product
  ``A·B·x^{-m} mod f`` — structurally the *same loop* as Algorithm 2 with
  XOR replacing addition.  Because GF(2) addition is carry-free, there is
  no magnitude, hence **no window problem, no final subtraction, and no
  equivalent of the leftmost-cell overflow**: the result always has
  degree < m.  The dual-field cell is the paper's regular cell with the
  carry chain removed (2 AND + 2 XOR), quantified by
  :func:`dual_field_cell_costs`.

Everything is validated against an independent schoolbook
multiply-then-reduce path and classic test vectors (the AES field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ParameterError
from repro.utils.validation import ensure_positive

__all__ = [
    "clmul",
    "poly_mod",
    "poly_divmod",
    "poly_gcd",
    "poly_inverse",
    "is_irreducible",
    "GF2MontgomeryContext",
    "gf2_modexp",
    "dual_field_cell_costs",
    "AES_POLY",
    "NIST_B163_POLY",
]

#: x^8 + x^4 + x^3 + x + 1 — the AES field polynomial.
AES_POLY = 0x11B
#: x^163 + x^7 + x^6 + x^3 + 1 — the NIST B-163/K-163 field polynomial.
NIST_B163_POLY = (1 << 163) | (1 << 7) | (1 << 6) | (1 << 3) | 1


def clmul(a: int, b: int) -> int:
    """Carry-less (GF(2)[x]) product of two polynomials."""
    if a < 0 or b < 0:
        raise ParameterError("polynomials are non-negative ints")
    acc = 0
    while b:
        low = b & -b
        acc ^= a * low  # multiplying by a power of two is a shift
        b ^= low
    return acc


def poly_divmod(a: int, b: int) -> Tuple[int, int]:
    """Polynomial division: returns (quotient, remainder) with deg r < deg b."""
    if b == 0:
        raise ParameterError("division by the zero polynomial")
    q = 0
    db = b.bit_length()
    while a.bit_length() >= db:
        shift = a.bit_length() - db
        q ^= 1 << shift
        a ^= b << shift
    return q, a


def poly_mod(a: int, b: int) -> int:
    """Polynomial remainder ``a mod b``."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_inverse(a: int, modulus: int) -> int:
    """Inverse of ``a`` modulo ``modulus`` via extended Euclid.

    Raises if ``gcd(a, modulus) != 1``.
    """
    if poly_mod(a, modulus) == 0:
        raise ParameterError("zero is not invertible")
    r0, r1 = modulus, poly_mod(a, modulus)
    s0, s1 = 0, 1
    while r1:
        q, r = poly_divmod(r0, r1)
        r0, r1 = r1, r
        s0, s1 = s1, s0 ^ clmul(q, s1)
    if r0 != 1:
        raise ParameterError(f"polynomial {a:#x} not invertible mod {modulus:#x}")
    return poly_mod(s0, modulus)


def is_irreducible(f: int) -> bool:
    """Rabin's irreducibility test for ``f`` over GF(2).

    ``f`` of degree m is irreducible iff ``x^(2^m) ≡ x (mod f)`` and for
    every prime divisor q of m, ``gcd(x^(2^(m/q)) - x, f) = 1``.
    """
    m = f.bit_length() - 1
    if m < 1:
        return False
    if m == 1:
        return f in (0b10, 0b11)
    if f & 1 == 0:  # divisible by x
        return False

    def x_pow_2k(k: int) -> int:
        """x^(2^k) mod f by repeated squaring."""
        r = 0b10  # the polynomial x
        for _ in range(k):
            r = poly_mod(clmul(r, r), f)
        return r

    # prime divisors of m
    divisors = set()
    mm = m
    d = 2
    while d * d <= mm:
        while mm % d == 0:
            divisors.add(d)
            mm //= d
        d += 1
    if mm > 1:
        divisors.add(mm)
    for q in divisors:
        h = x_pow_2k(m // q) ^ 0b10
        if poly_gcd(h, f) != 1:
            return False
    return x_pow_2k(m) == 0b10


class GF2MontgomeryContext:
    """Montgomery arithmetic in GF(2^m) = GF(2)[x] / f(x).

    Parameters
    ----------
    modulus:
        The field polynomial ``f`` (degree m, irreducible unless
        ``trusted=False`` is overridden).

    The Montgomery factor is ``r = x^m``; :meth:`multiply` computes
    ``A·B·x^{-m} mod f`` with the bit-serial loop mirroring Algorithm 2.
    """

    def __init__(self, modulus: int, *, trusted: bool = False) -> None:
        ensure_positive("modulus", modulus)
        self.m = modulus.bit_length() - 1
        if self.m < 1:
            raise ParameterError("field polynomial must have degree >= 1")
        if modulus & 1 == 0:
            raise ParameterError("field polynomial needs a nonzero constant term")
        if not trusted and not is_irreducible(modulus):
            raise ParameterError(f"{modulus:#x} is reducible")
        self.modulus = modulus
        self.r = 1 << self.m  # x^m
        self.r_mod_f = poly_mod(self.r, modulus)
        self.r2_mod_f = poly_mod(clmul(self.r_mod_f, self.r_mod_f), modulus)
        self.r_inverse = poly_inverse(self.r_mod_f, modulus)

    # ------------------------------------------------------------------
    def check_element(self, name: str, a: int) -> int:
        if not isinstance(a, int) or isinstance(a, bool) or a < 0:
            raise ParameterError(f"{name} must be a non-negative int")
        if a.bit_length() > self.m:
            raise ParameterError(
                f"{name} has degree {a.bit_length() - 1} >= m = {self.m}"
            )
        return a

    def multiply(self, a: int, b: int) -> int:
        """Bit-serial Montgomery product ``A·B·x^{-m} mod f``.

        The loop is Algorithm 2 with XOR for addition: per iteration,
        ``m_i = t_0 ⊕ a_i·b_0`` then ``T = (T ⊕ a_i·B ⊕ m_i·f) / x``.
        No carries → the result's degree stays < m; no window, no
        subtraction, no top-cell overflow.
        """
        self.check_element("a", a)
        self.check_element("b", b)
        t = 0
        b0 = b & 1
        for i in range(self.m):
            a_i = (a >> i) & 1
            m_i = (t ^ (a_i & b0)) & 1
            t = (t ^ (a_i * b) ^ (m_i * self.modulus)) >> 1
        return t

    def to_montgomery(self, a: int) -> int:
        """Enter the domain: ``a·x^m mod f`` via Mont(a, x^{2m} mod f)."""
        self.check_element("a", a)
        return self.multiply(a, self.r2_mod_f)

    def from_montgomery(self, a_bar: int) -> int:
        """Leave the domain: Mont(ā, 1)."""
        return self.multiply(a_bar, 1)

    def field_multiply(self, a: int, b: int) -> int:
        """Plain field product ``a·b mod f`` (through the domain)."""
        return self.from_montgomery(
            self.multiply(self.to_montgomery(a), self.to_montgomery(b))
        )

    def field_inverse(self, a: int) -> int:
        """Field inverse via extended Euclid (independent of the domain)."""
        return poly_inverse(a, self.modulus)


def gf2_modexp(ctx: GF2MontgomeryContext, base: int, exponent: int) -> int:
    """``base^exponent`` in GF(2^m) by Montgomery square-and-multiply."""
    ctx.check_element("base", base)
    if exponent < 0:
        raise ParameterError("exponent must be >= 0")
    if exponent == 0:
        return 1
    a = b_bar = ctx.to_montgomery(base)
    for i in reversed(range(exponent.bit_length() - 1)):
        a = ctx.multiply(a, a)
        if (exponent >> i) & 1:
            a = ctx.multiply(a, b_bar)
    return ctx.from_montgomery(a)


@dataclass(frozen=True)
class DualFieldCellCost:
    """Gate cost of one systolic cell in each field mode."""

    mode: str
    and_gates: int
    xor_gates: int
    or_gates: int
    flip_flops_per_cell: float

    @property
    def total_gates(self) -> int:
        return self.and_gates + self.xor_gates + self.or_gates


def dual_field_cell_costs() -> Dict[str, DualFieldCellCost]:
    """Per-cell cost of GF(p) vs GF(2^m) vs a dual-field (shared) cell.

    GF(p): the paper's regular cell (2 FA + 1 HA + 2 AND = 5 XOR +
    7 AND + 2 OR) plus ~4 FFs of pipeline state per cell column.
    GF(2^m): the same cell with the carry plane deleted — the row update
    is ``t = t_in ⊕ a_i·b_j ⊕ m_i·f_j`` (2 AND + 2 XOR, no carries, 1 FF).
    Dual-field: the GF(p) cell plus one carry-suppression AND driven by a
    field-select line, as in [24] — the binary field rides along almost
    free, which is the cited unit's selling point.
    """
    gfp = DualFieldCellCost("GF(p)", and_gates=7, xor_gates=5, or_gates=2,
                            flip_flops_per_cell=4.0)
    gf2 = DualFieldCellCost("GF(2^m)", and_gates=2, xor_gates=2, or_gates=0,
                            flip_flops_per_cell=1.0)
    dual = DualFieldCellCost("dual-field", and_gates=8, xor_gates=5, or_gates=2,
                             flip_flops_per_cell=4.0)
    return {c.mode: c for c in (gfp, gf2, dual)}
