"""Algorithms 1 and 2 of the paper: Montgomery multiplication.

Two variants are implemented exactly as printed:

* :func:`montgomery_with_subtraction` — Algorithm 1, the classical form with
  a data-dependent final subtraction (operands in ``[0, N)``, output in
  ``[0, N)``).  Works for any word base ``2^α``.
* :func:`montgomery_no_subtraction` — Algorithm 2, the paper's radix-2 form
  with ``R = 2^(l+2)`` and **no** final subtraction (operands in ``[0, 2N)``,
  output in ``[0, 2N)``).  This is what the systolic array computes.

Both return ``x·y·R^{-1}`` modulo N (Algorithm 2 modulo 2N, congruent
mod N), and both can produce a full per-iteration trace — the sequence of
quotient digits ``m_i`` and partial results ``T_i`` — which the hardware
tests replay against the RTL and gate-level simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ParameterError, SimulationError
from repro.montgomery.params import MontgomeryContext

__all__ = [
    "MontgomeryStep",
    "montgomery_with_subtraction",
    "montgomery_no_subtraction",
    "montgomery_trace",
    "montgomery_reduce",
]


@dataclass(frozen=True)
class MontgomeryStep:
    """One iteration of the Montgomery loop.

    Attributes
    ----------
    index:
        Iteration counter ``i``.
    x_digit:
        The multiplier digit ``x_i`` consumed this iteration.
    m_digit:
        The quotient digit ``m_i`` that makes ``T + x_i·y + m_i·N``
        divisible by the word base.
    t_after:
        The partial result ``T_i`` *after* the division by the word base.
    """

    index: int
    x_digit: int
    m_digit: int
    t_after: int


def _digits(value: int, count: int, alpha: int) -> List[int]:
    """Little-endian base-2^α digits of ``value``, padded to ``count``."""
    mask = (1 << alpha) - 1
    return [(value >> (alpha * i)) & mask for i in range(count)]


def montgomery_with_subtraction(
    ctx: MontgomeryContext, x: int, y: int
) -> int:
    """Algorithm 1: Montgomery multiplication *with* the final subtraction.

    Requires ``x, y ∈ [0, N)``; returns ``x·y·R1^{-1} mod N`` where
    ``R1 = (2^α)^l`` is the classical Montgomery parameter (just above N,
    not the enlarged ``2^(l+2)`` of Algorithm 2).

    The subtraction in steps 6–8 executes only when the accumulated T
    reaches N — the data-dependent behaviour the paper eliminates.
    """
    n = ctx.modulus
    if not 0 <= x < n:
        raise ParameterError(f"Algorithm 1 requires x in [0, N); got x={x}")
    if not 0 <= y < n:
        raise ParameterError(f"Algorithm 1 requires y in [0, N); got y={y}")
    alpha = ctx.word_bits
    base = 1 << alpha
    # Classical parameter: l digits, R1 = base^l >= N.
    l_digits = -(-ctx.l // alpha)
    xs = _digits(x, l_digits, alpha)
    t = 0
    for i in range(l_digits):
        t0 = t & (base - 1)
        m_i = ((t0 + xs[i] * (y & (base - 1))) * ctx.n_prime) % base
        t = (t + xs[i] * y + m_i * n) >> alpha
    if t >= n:
        t -= n
    return t


def montgomery_no_subtraction(ctx: MontgomeryContext, x: int, y: int) -> int:
    """Algorithm 2: radix-2 Montgomery multiplication *without* subtraction.

    Requires ``x, y ∈ [0, 2N)`` and ``R = 2^(l+2) > 4N`` (guaranteed by
    :class:`MontgomeryContext`); returns ``T ≡ x·y·R^{-1} (mod N)`` with
    ``T < 2N``, so the result feeds the next multiplication directly.
    """
    result, _ = _run_no_subtraction(ctx, x, y, want_trace=False)
    return result


def montgomery_trace(
    ctx: MontgomeryContext, x: int, y: int
) -> Tuple[int, List[MontgomeryStep]]:
    """Algorithm 2 with a full per-iteration trace.

    Returns ``(T, steps)`` where ``steps[i]`` records ``x_i``, ``m_i`` and
    the partial result after iteration ``i``.  The hardware simulators are
    validated against this trace digit by digit.
    """
    result, steps = _run_no_subtraction(ctx, x, y, want_trace=True)
    assert steps is not None
    return result, steps


def _run_no_subtraction(
    ctx: MontgomeryContext, x: int, y: int, *, want_trace: bool
) -> Tuple[int, Optional[List[MontgomeryStep]]]:
    if ctx.word_bits != 1:
        raise ParameterError(
            "Algorithm 2 is the radix-2 algorithm; use repro.montgomery.radix "
            f"for word_bits={ctx.word_bits}"
        )
    ctx.check_operand("x", x)
    ctx.check_operand("y", y)
    n = ctx.modulus
    iterations = ctx.iterations  # l + 2
    y0 = y & 1
    steps: Optional[List[MontgomeryStep]] = [] if want_trace else None
    t = 0
    for i in range(iterations):
        x_i = (x >> i) & 1
        m_i = (t ^ (x_i & y0)) & 1  # (t0 + x_i*y0) mod 2, N' = 1
        t = (t + x_i * y + m_i * n) >> 1
        if steps is not None:
            steps.append(MontgomeryStep(index=i, x_digit=x_i, m_digit=m_i, t_after=t))
    if t >= 2 * n:
        # The Walter bound guarantees this never happens; hitting it means
        # the context was constructed inconsistently.
        raise SimulationError(
            f"Algorithm 2 output {t} >= 2N={2 * n}: Walter bound violated"
        )
    return t, steps


def montgomery_reduce(ctx: MontgomeryContext, value: int) -> int:
    """Montgomery reduction: ``Mont(value, 1) = value·R^{-1}``, bounded by N.

    This is the paper's post-processing step — one multiplication by 1
    converts out of the Montgomery domain.  The paper argues the result is
    ``<= N`` and equality cannot occur for nonzero residues; we return the
    value reduced into ``[0, N)`` and assert the paper's bound held.
    """
    t = montgomery_no_subtraction(ctx, value, 1)
    if t > ctx.modulus:
        raise SimulationError(
            f"Mont(T, 1) = {t} exceeded N = {ctx.modulus}; bound argument violated"
        )
    return t % ctx.modulus
