"""Montgomery-domain convenience wrapper.

:class:`MontgomeryDomain` packages a :class:`~repro.montgomery.params.MontgomeryContext`
with the conversion and arithmetic operations applications actually call
(RSA in :mod:`repro.rsa`, GF(p) in :mod:`repro.ecc.field`).  Values held by
the domain live in the ``[0, 2N)`` window of Algorithm 2; conversion out
goes through Mont(·, 1) exactly as the hardware's post-processing does.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ParameterError
from repro.montgomery.algorithms import (
    montgomery_no_subtraction,
    montgomery_reduce,
)
from repro.montgomery.params import MontgomeryContext

__all__ = ["MontgomeryDomain"]


class MontgomeryDomain:
    """Arithmetic in the Montgomery domain modulo an odd N.

    Parameters
    ----------
    modulus:
        The odd modulus, or a pre-built :class:`MontgomeryContext`.
    multiplier:
        Optional override for the core multiplication, with the signature
        ``(ctx, x, y) -> x·y·R^{-1}``.  This is the hook through which the
        cycle-accurate hardware simulators substitute themselves for the
        big-integer algorithm — applications are agnostic to which engine
        runs underneath.
    """

    def __init__(
        self,
        modulus,
        multiplier: Optional[Callable[[MontgomeryContext, int, int], int]] = None,
    ) -> None:
        if isinstance(modulus, MontgomeryContext):
            self.ctx = modulus
        else:
            self.ctx = MontgomeryContext(modulus)
        self._mont = multiplier or montgomery_no_subtraction
        # Count of core multiplications issued, for cost accounting.
        self.mult_count = 0

    # ------------------------------------------------------------------
    @property
    def modulus(self) -> int:
        return self.ctx.modulus

    def mont(self, x: int, y: int) -> int:
        """Raw Montgomery product ``x·y·R^{-1}`` (inputs/outputs in [0, 2N))."""
        self.mult_count += 1
        return self._mont(self.ctx, x, y)

    def enter(self, value: int) -> int:
        """Convert ``value ∈ [0, N)`` into the domain: ``value·R mod 2N``."""
        if not 0 <= value < self.modulus:
            raise ParameterError(
                f"value {value} outside [0, N) for N={self.modulus}"
            )
        return self.mont(value, self.ctx.r2_mod_n)

    def leave(self, value: int) -> int:
        """Convert a domain value back to ``Z_N`` via Mont(value, 1)."""
        self.mult_count += 1
        return montgomery_reduce(self.ctx, value) if self._mont is montgomery_no_subtraction else self._mont(self.ctx, value, 1) % self.modulus

    def mul(self, a: int, b: int) -> int:
        """Domain multiplication: the Montgomery product of two domain values."""
        return self.mont(a, b)

    def square(self, a: int) -> int:
        """Domain squaring (one Montgomery multiplication)."""
        return self.mont(a, a)

    def add(self, a: int, b: int) -> int:
        """Domain addition (linear, so representation-compatible), mod 2N window.

        A single reduction by 2N keeps the value inside the window; note the
        real circuit would do the same with one conditional subtractor.
        """
        s = a + b
        bound = self.ctx.operand_bound
        return s - bound if s >= bound else s

    def sub(self, a: int, b: int) -> int:
        """Domain subtraction into the [0, 2N) window."""
        d = a - b
        return d + self.ctx.operand_bound if d < 0 else d

    def exp(self, base_domain: int, exponent: int) -> int:
        """Square-and-multiply on domain values (result stays in the domain)."""
        if exponent < 0:
            raise ParameterError(f"exponent must be >= 0, got {exponent}")
        if exponent == 0:
            # R mod N is the domain representation of 1.
            return self.ctx.r_mod_n
        a = base_domain
        for i in reversed(range(exponent.bit_length() - 1)):
            a = self.square(a)
            if (exponent >> i) & 1:
                a = self.mul(a, base_domain)
        return a

    def inverse(self, a_domain: int) -> int:
        """Domain multiplicative inverse via Fermat/Euler exponentiation.

        Uses ``a^{φ(N)-1}`` only when N is prime (``a^{N-2}``); general
        moduli should invert outside the domain.  Raises if the value is
        not invertible.
        """
        a_int = self.leave(a_domain)
        try:
            inv = pow(a_int, -1, self.modulus)
        except ValueError as exc:  # non-invertible
            raise ParameterError(f"{a_int} is not invertible mod {self.modulus}") from exc
        return self.enter(inv)

    def equals(self, a_domain: int, b_domain: int) -> bool:
        """Equality of the residues two domain values represent.

        Domain values are only canonical mod N (the window is 2N wide), so
        equality must compare mod N.
        """
        return (a_domain - b_domain) % self.modulus == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MontgomeryDomain(modulus={self.modulus}, mults={self.mult_count})"
