"""Montgomery parameter sets.

The paper fixes radix 2 (α = 1) and the Montgomery parameter
``R = 2^(l+2)`` where ``l`` is the bit length of the modulus ``N < 2^l``.
This choice satisfies Walter's bound ``R > 4N`` so Algorithm 2 needs no
final subtraction: with inputs ``x, y < 2N`` the output stays below ``2N``
and can be fed straight back into the next multiplication.

:class:`MontgomeryContext` captures one parameter set and the derived
constants every layer of the stack needs (``N' = -N^{-1} mod 2^α``,
``R mod N``, ``R² mod N``, the operand window ``[0, 2N)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import ParameterError
from repro.utils.validation import ensure_odd, ensure_positive

__all__ = [
    "MontgomeryContext",
    "precompute_montgomery_constants",
    "montgomery_cache_clear",
    "montgomery_cache_info",
]


@dataclass(frozen=True)
class MontgomeryContext:
    """Parameters for Montgomery arithmetic modulo an odd ``modulus``.

    Parameters
    ----------
    modulus:
        The odd modulus N.  For RSA this is p·q; for ECC an odd prime.
    l:
        Digit count of N in the chosen radix.  Defaults to ``N.bit_length()``
        (radix 2), matching the paper's ``N = (n_{l-1} ... n_0)_2`` with
        ``n_{l-1} = 1``.  May be larger to model a circuit wider than N.
    word_bits:
        Radix exponent α (``b = 2^α``).  The paper's hardware uses α = 1;
        the word-based software variants in :mod:`repro.montgomery.radix`
        use larger α.

    Derived attributes
    ------------------
    r_exponent:
        ``r`` with ``R = 2^r``.  For α = 1 this is ``l + 2`` (the paper's
        optimal bound); in general the smallest multiple of α such that
        ``2^r > 4N`` — i.e. the iteration count times α.
    iterations:
        Number of loop iterations of the multiplication algorithm
        (``l + 2`` for α = 1, ``ceil((l·α + 2)/α)`` digits in general).
    """

    modulus: int
    l: int = 0
    word_bits: int = 1
    # Derived, filled in by __post_init__ (kept as real fields so the
    # dataclass stays frozen and hashable).
    r_exponent: int = field(init=False)
    R: int = field(init=False)
    n_prime: int = field(init=False)
    r_mod_n: int = field(init=False)
    r2_mod_n: int = field(init=False)

    def __post_init__(self) -> None:
        ensure_odd("modulus", self.modulus)
        if self.modulus < 3:
            raise ParameterError(f"modulus must be >= 3, got {self.modulus}")
        ensure_positive("word_bits", self.word_bits)
        l = self.l if self.l else self.modulus.bit_length()
        if l < self.modulus.bit_length():
            raise ParameterError(
                f"l={l} too small for modulus of {self.modulus.bit_length()} bits"
            )
        object.__setattr__(self, "l", l)

        # R = 2^(l+2) for radix 2; for radix 2^α round l*1+2 bits up to a
        # whole number of α-bit digits so R is a power of the word base.
        bits_needed = l + 2
        alpha = self.word_bits
        iterations = -(-bits_needed // alpha)
        r_exp = iterations * alpha
        object.__setattr__(self, "r_exponent", r_exp)
        object.__setattr__(self, "R", 1 << r_exp)

        base = 1 << alpha
        # N' = -N^{-1} mod 2^α.  For α = 1 and odd N this is always 1,
        # which is why the rightmost systolic cell needs no multiplier.
        n_inv = pow(self.modulus, -1, base)
        object.__setattr__(self, "n_prime", (-n_inv) % base)
        object.__setattr__(self, "r_mod_n", self.R % self.modulus)
        object.__setattr__(self, "r2_mod_n", (self.R * self.R) % self.modulus)

    # ------------------------------------------------------------------
    # Convenience properties
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> int:
        """Loop iterations per multiplication (``l + 2`` when α = 1)."""
        return self.r_exponent // self.word_bits

    @property
    def operand_bound(self) -> int:
        """Exclusive upper bound ``2N`` of the Algorithm 2 operand window."""
        return 2 * self.modulus

    @property
    def r_inverse(self) -> int:
        """``R^{-1} mod N`` (used to state the Mont(x, y) postcondition)."""
        return pow(self.R, -1, self.modulus)

    def satisfies_walter_bound(self) -> bool:
        """True iff ``R > 4N`` — the condition making subtraction removable."""
        return self.R > 4 * self.modulus

    def check_operand(self, name: str, value: int) -> int:
        """Validate that ``value`` lies in the ``[0, 2N)`` operand window."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ParameterError(f"{name} must be an int")
        if not 0 <= value < self.operand_bound:
            raise ParameterError(
                f"{name}={value} outside Algorithm 2 window [0, {self.operand_bound})"
            )
        return value

    def to_montgomery(self, value: int) -> int:
        """Map ``value`` to its Montgomery representation ``value·R mod N``."""
        return (value * self.R) % self.modulus

    def from_montgomery(self, value: int) -> int:
        """Map a Montgomery representation back to ``Z_N``."""
        return (value * self.r_inverse) % self.modulus

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MontgomeryContext(modulus={self.modulus}, l={self.l}, "
            f"word_bits={self.word_bits}, R=2^{self.r_exponent})"
        )


# ----------------------------------------------------------------------
# Shared pre-computation cache
# ----------------------------------------------------------------------
@lru_cache(maxsize=1024)
def _build_context(modulus: int, l: int, word_bits: int) -> MontgomeryContext:
    return MontgomeryContext(modulus, l, word_bits)


def precompute_montgomery_constants(
    modulus: int, l: int = 0, word_bits: int = 1
) -> MontgomeryContext:
    """Return the cached :class:`MontgomeryContext` for ``(modulus, l)``.

    The derived constants (``R``, ``R² mod N``, ``N'``) involve a modular
    squaring and a modular inversion, so sharing them matters anywhere
    many operations hit the same modulus: the exponentiator, the RSA
    cipher, and especially the batch scheduler in :mod:`repro.serving`,
    which coalesces same-modulus requests exactly so this function runs
    once per batch instead of once per request.

    Cache misses (i.e. actual pre-computations) increment the
    ``montgomery.precompute`` counter when observation is enabled; hits
    increment ``montgomery.precompute_cache_hits``.
    """
    from repro.observability import OBS

    before = _build_context.cache_info().misses
    ctx = _build_context(modulus, l, word_bits)
    if OBS.enabled:
        if _build_context.cache_info().misses != before:
            OBS.count("montgomery.precompute")
        else:
            OBS.count("montgomery.precompute_cache_hits")
    return ctx


def montgomery_cache_clear() -> None:
    """Drop every cached parameter set (tests / benchmarks start fresh)."""
    _build_context.cache_clear()


def montgomery_cache_info():
    """``functools.lru_cache`` statistics for the shared constant cache."""
    return _build_context.cache_info()
