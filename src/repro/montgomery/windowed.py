"""Windowed exponentiation methods over the Montgomery multiplier.

The paper's exponentiator uses plain binary square-and-multiply
(Algorithm 3): ``t-1`` squarings plus ``weight(E)-1`` multiplications.
Standard recodings trade a table of precomputed powers for fewer
multiplications — directly fewer ``3l+4``-cycle passes of the array:

* :func:`mary_schedule` — fixed-window (2^w-ary) exponentiation;
* :func:`sliding_window_schedule` — sliding windows over odd digits
  (smaller table, same window width);

Both produce an explicit :class:`OperationSchedule` — the exact sequence
of square/multiply operations with operand table indices — which
:func:`execute_schedule` runs through any Montgomery multiplier, and
whose length prices the method in multiplier cycles.  The window ablation
benchmark sweeps ``w`` and reports the optimum per exponent size —
the design study a user of the paper's exponentiator would run next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ParameterError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.utils.validation import ensure_positive

__all__ = [
    "Op",
    "OperationSchedule",
    "binary_schedule",
    "mary_schedule",
    "sliding_window_schedule",
    "execute_schedule",
    "windowed_modexp",
    "optimal_window",
]


@dataclass(frozen=True)
class Op:
    """One multiplier pass.

    ``kind``: ``"square"`` (A <- A·A) or ``"mult"`` (A <- A·table[index]).
    """

    kind: str
    index: int = 0


@dataclass
class OperationSchedule:
    """A complete exponentiation plan.

    Attributes
    ----------
    window:
        Window width the plan was built with (1 = binary).
    table_odd_only:
        Whether ``table[i]`` holds ``g^(2i+1)`` (sliding window) or
        ``g^i`` (m-ary).
    precomputation_mults:
        Multiplier passes needed to build the table (beyond g itself).
    ops:
        The main-loop operations, in execution order.
    """

    window: int
    table_odd_only: bool
    precomputation_mults: int
    ops: List[Op]

    @property
    def squares(self) -> int:
        return sum(1 for o in self.ops if o.kind == "square")

    @property
    def mults(self) -> int:
        return sum(1 for o in self.ops if o.kind == "mult")

    @property
    def total_multiplications(self) -> int:
        """Every multiplier pass: table build + loop (squares are passes too)."""
        return self.precomputation_mults + len(self.ops)


def binary_schedule(exponent: int) -> OperationSchedule:
    """Left-to-right binary plan — Algorithm 3's operation sequence."""
    ensure_positive("exponent", exponent)
    ops: List[Op] = []
    for i in reversed(range(exponent.bit_length() - 1)):
        ops.append(Op("square"))
        if (exponent >> i) & 1:
            ops.append(Op("mult", 1))
    return OperationSchedule(
        window=1, table_odd_only=False, precomputation_mults=0, ops=ops
    )


def mary_schedule(exponent: int, window: int) -> OperationSchedule:
    """Fixed-window 2^w-ary plan.

    Table: ``g^0..g^(2^w - 1)`` (2^w − 2 multiplications to build beyond
    g^0, g^1).  Loop: per digit, ``w`` squarings + one multiplication for
    nonzero digits.
    """
    ensure_positive("exponent", exponent)
    ensure_positive("window", window)
    if window == 1:
        return binary_schedule(exponent)
    digits: List[int] = []
    e = exponent
    while e:
        digits.append(e & ((1 << window) - 1))
        e >>= window
    ops: List[Op] = []
    first = True
    for d in reversed(digits):
        if not first:
            ops.extend(Op("square") for _ in range(window))
        if d and not first:
            ops.append(Op("mult", d))
        first = False
    # Leading digit handled by initializing A = table[digits[-1]]; account
    # for it as one mult when it isn't 1.
    lead = digits[-1]
    if lead != 1:
        ops.insert(0, Op("mult", lead))
    return OperationSchedule(
        window=window,
        table_odd_only=False,
        precomputation_mults=(1 << window) - 2,
        ops=ops,
    )


def sliding_window_schedule(exponent: int, window: int) -> OperationSchedule:
    """Sliding-window plan over odd window values.

    Table: odd powers ``g, g^3, ..., g^(2^w - 1)`` — one squaring (g²)
    plus ``2^(w-1) − 1`` multiplications.  Windows always start and end on
    set bits, so zero runs cost only squarings.
    """
    ensure_positive("exponent", exponent)
    ensure_positive("window", window)
    if window == 1:
        return binary_schedule(exponent)
    bits = [(exponent >> i) & 1 for i in range(exponent.bit_length())]
    n = len(bits)
    # Parse windows from the most significant end.
    segments: List[Tuple[str, int]] = []  # ("zeros", count) | ("win", value)
    i = n - 1
    while i >= 0:
        if bits[i] == 0:
            j = i
            while j >= 0 and bits[j] == 0:
                j -= 1
            segments.append(("zeros", i - j))
            i = j
        else:
            j = max(i - window + 1, 0)
            while bits[j] == 0:  # shrink so the window ends on a 1
                j += 1
            value = 0
            for k in range(i, j - 1, -1):
                value = (value << 1) | bits[k]
            segments.append(("win", value))
            i = j - 1
    ops: List[Op] = []
    first = True
    lead_value = None
    for kind, v in segments:
        if kind == "zeros":
            ops.extend(Op("square") for _ in range(v))
            continue
        width = v.bit_length()
        if first:
            lead_value = v
            first = False
            continue
        ops.extend(Op("square") for _ in range(width))
        ops.append(Op("mult", v))
    if lead_value is None:  # pragma: no cover - exponent >= 1 always has a 1
        raise ParameterError("exponent must have a set bit")
    if lead_value != 1:
        ops.insert(0, Op("mult", lead_value))
    return OperationSchedule(
        window=window,
        table_odd_only=True,
        precomputation_mults=(1 << (window - 1)),  # g^2 plus the odd chain
        ops=ops,
    )


def execute_schedule(
    ctx: MontgomeryContext,
    schedule: OperationSchedule,
    message: int,
    mont: Optional[Callable[[MontgomeryContext, int, int], int]] = None,
) -> int:
    """Run a schedule through a Montgomery multiplier; returns ``[0, N)``.

    The table is built in the Montgomery domain exactly as the hardware
    would (entry via Mont(M, R²), every power via multiplier passes);
    ``mont`` defaults to the golden Algorithm 2 and accepts the hardware
    models' signatures.
    """
    if not 0 <= message < ctx.modulus:
        raise ParameterError("message must be in [0, N)")
    mul = mont or montgomery_no_subtraction
    g = mul(ctx, message, ctx.r2_mod_n)
    # Build the table the schedule indexes into.
    table = {1: g}
    if schedule.table_odd_only:
        g2 = mul(ctx, g, g)
        prev = g
        for odd in range(3, (1 << schedule.window), 2):
            prev = mul(ctx, prev, g2)
            table[odd] = prev
    else:
        prev = g
        for v in range(2, 1 << schedule.window):
            prev = mul(ctx, prev, g)
            table[v] = prev
    # Initialize the accumulator: a leading "mult" op encodes A = table[v]
    # (the most significant window); otherwise A starts at g.
    ops = list(schedule.ops)
    if ops and ops[0].kind == "mult":
        a = table[ops[0].index]
        ops = ops[1:]
    else:
        a = g
    for op in ops:
        if op.kind == "square":
            a = mul(ctx, a, a)
        else:
            a = mul(ctx, a, table[op.index])
    return mul(ctx, a, 1) % ctx.modulus


def windowed_modexp(
    modulus: int, message: int, exponent: int, window: int = 4, method: str = "sliding"
) -> int:
    """Convenience: windowed modular exponentiation, result in ``[0, N)``."""
    ctx = MontgomeryContext(modulus)
    if method == "sliding":
        sched = sliding_window_schedule(exponent, window)
    elif method == "mary":
        sched = mary_schedule(exponent, window)
    elif method == "binary":
        sched = binary_schedule(exponent)
    else:
        raise ParameterError(f"unknown method {method!r}")
    return execute_schedule(ctx, sched, message)


def optimal_window(exponent_bits: int, method: str = "sliding") -> int:
    """Window width minimizing total multiplier passes for a random
    ``exponent_bits``-bit exponent (expected-case model)."""
    ensure_positive("exponent_bits", exponent_bits)
    best_w, best_cost = 1, None
    for w in range(1, 11):
        if method == "sliding":
            pre = (1 << (w - 1)) if w > 1 else 0
            loop = exponent_bits + exponent_bits / (w + 1)
        else:
            pre = (1 << w) - 2 if w > 1 else 0
            loop = exponent_bits + (exponent_bits / w) * (1 - 2 ** (-w))
        cost = pre + loop
        if best_cost is None or cost < best_cost:
            best_w, best_cost = w, cost
    return best_w
