"""Algorithm-level Montgomery multiplication library (the golden models).

This package implements the arithmetic the paper's hardware realizes:

* :mod:`repro.montgomery.params` — the parameter set (N, l, R = 2^(l+2), N',
  R² mod N) with the Walter/Örs bound built in.
* :mod:`repro.montgomery.algorithms` — Algorithm 1 (with final subtraction)
  and Algorithm 2 (without), plus step-by-step iteration traces.
* :mod:`repro.montgomery.bounds` — the R ≥ 4N bound analysis of Section 3.
* :mod:`repro.montgomery.exponent` — Algorithm 3 modular exponentiation and
  the paper's cycle accounting.
* :mod:`repro.montgomery.domain` — a convenience Montgomery-domain wrapper.
* :mod:`repro.montgomery.radix` — word-based (radix-2^α) variants.
"""

from repro.montgomery.params import (
    MontgomeryContext,
    montgomery_cache_clear,
    montgomery_cache_info,
    precompute_montgomery_constants,
)
from repro.montgomery.algorithms import (
    montgomery_with_subtraction,
    montgomery_no_subtraction,
    montgomery_trace,
    MontgomeryStep,
)
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.exponent import (
    modexp_square_multiply,
    montgomery_modexp,
    montgomery_modexp_rtl,
    montgomery_powering_ladder,
    ExponentiationTrace,
)
from repro.montgomery.bootstrap import compute_r2
from repro.montgomery.windowed import windowed_modexp

__all__ = [
    "MontgomeryContext",
    "precompute_montgomery_constants",
    "montgomery_cache_clear",
    "montgomery_cache_info",
    "MontgomeryDomain",
    "montgomery_with_subtraction",
    "montgomery_no_subtraction",
    "montgomery_trace",
    "MontgomeryStep",
    "modexp_square_multiply",
    "montgomery_modexp",
    "montgomery_modexp_rtl",
    "montgomery_powering_ladder",
    "ExponentiationTrace",
    "compute_r2",
    "windowed_modexp",
]
