"""Word-based (radix-2^α) Montgomery multiplication variants.

The paper's hardware is radix 2, but Section 2 discusses the high-radix
generalisation: with word base ``2^α`` a multiplication needs
``ceil((n+2)/α)`` iterations (Batina–Muurling [1]).  This module provides
the standard software formulations used for that comparison:

* :func:`mont_mul_sos` — Separated Operand Scanning (multiply fully, then
  reduce word by word).
* :func:`mont_mul_cios` — Coarsely Integrated Operand Scanning, the most
  common software/hardware form (interleaves multiply and reduce).
* :func:`mont_mul_fios` — Finely Integrated Operand Scanning.

All operate on the classical window (inputs < N, output < N, with final
subtraction), parameterised by word size, and are cross-checked against
each other and the radix-2 golden model by the test suite.  The
``iterations_high_radix`` helper supplies the cycle-count side of the
radix ablation benchmark.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParameterError
from repro.utils.bits import bit_length_words
from repro.utils.validation import ensure_odd, ensure_positive

__all__ = [
    "WordMontgomeryParams",
    "mont_mul_sos",
    "mont_mul_cios",
    "mont_mul_fios",
    "iterations_high_radix",
]


class WordMontgomeryParams:
    """Parameters for word-based Montgomery arithmetic.

    Attributes
    ----------
    modulus: odd modulus N.
    word_bits: α, the word size in bits.
    num_words: s = ceil(bitlen(N)/α), the operand length in words.
    n_prime: ``-N^{-1} mod 2^α`` (the per-word quotient constant).
    R: ``2^(α·s)``, the classical word-aligned Montgomery parameter.
    """

    def __init__(self, modulus: int, word_bits: int) -> None:
        ensure_odd("modulus", modulus)
        ensure_positive("word_bits", word_bits)
        self.modulus = modulus
        self.word_bits = word_bits
        self.num_words = bit_length_words(modulus.bit_length(), word_bits)
        base = 1 << word_bits
        self.base = base
        self.mask = base - 1
        self.n_prime = (-pow(modulus, -1, base)) % base
        self.R = 1 << (word_bits * self.num_words)
        self.r_inverse = pow(self.R, -1, modulus)
        self.n_words = self._to_words(modulus)

    def _to_words(self, value: int) -> List[int]:
        return [
            (value >> (self.word_bits * i)) & self.mask
            for i in range(self.num_words)
        ]

    def check_input(self, name: str, value: int) -> int:
        if not 0 <= value < self.modulus:
            raise ParameterError(
                f"{name}={value} outside [0, N) for N={self.modulus}"
            )
        return value


def mont_mul_sos(params: WordMontgomeryParams, x: int, y: int) -> int:
    """Separated Operand Scanning: full product first, then word reduction.

    Returns ``x·y·R^{-1} mod N``.
    """
    params.check_input("x", x)
    params.check_input("y", y)
    n, s, alpha, mask = params.modulus, params.num_words, params.word_bits, params.mask
    t = x * y
    for _ in range(s):
        m = ((t & mask) * params.n_prime) & mask
        t = (t + m * n) >> alpha
    return t - n if t >= n else t


def mont_mul_cios(params: WordMontgomeryParams, x: int, y: int) -> int:
    """Coarsely Integrated Operand Scanning (the classic CIOS loop).

    Word-by-word: each outer iteration adds ``x_i · y`` and one reducing
    multiple of N, then shifts one word.  This is the structure scalable
    hardware like Tenca–Koç [26] pipelines.
    """
    params.check_input("x", x)
    params.check_input("y", y)
    n, s, alpha, mask = params.modulus, params.num_words, params.word_bits, params.mask
    xs = params._to_words(x)
    t = 0
    for i in range(s):
        t = t + xs[i] * y
        m = ((t & mask) * params.n_prime) & mask
        t = (t + m * n) >> alpha
    return t - n if t >= n else t


def mont_mul_fios(params: WordMontgomeryParams, x: int, y: int) -> int:
    """Finely Integrated Operand Scanning.

    Interleaves the two inner products (x_i·y_j and m_i·n_j) in one pass
    over j, carrying a word at a time — the closest software analogue of
    the paper's systolic dataflow, where both partial products enter the
    same adder row.  Word-level arithmetic is done explicitly (no big-int
    shortcuts inside the inner loop) so the carry structure is faithful.
    """
    params.check_input("x", x)
    params.check_input("y", y)
    s, alpha, mask = params.num_words, params.word_bits, params.mask
    nw = params.n_words
    xs = params._to_words(x)
    ys = params._to_words(y)
    t = [0] * (s + 2)  # t[s], t[s+1] hold the running top words
    for i in range(s):
        # First column: decide m_i from t[0] + x_i*y_0.
        c = t[0] + xs[i] * ys[0]
        m = ((c & mask) * params.n_prime) & mask
        c = c + m * nw[0]
        assert c & mask == 0
        carry = c >> alpha
        for j in range(1, s):
            c = t[j] + xs[i] * ys[j] + m * nw[j] + carry
            t[j - 1] = c & mask
            carry = c >> alpha
        c = t[s] + carry
        t[s - 1] = c & mask
        t[s] = (t[s + 1] + (c >> alpha)) & mask
        t[s + 1] = 0
    value = 0
    for j in reversed(range(s + 1)):
        value = (value << alpha) | t[j]
    n = params.modulus
    return value - n if value >= n else value


def iterations_high_radix(n_bits: int, alpha: int) -> int:
    """Iteration count ``ceil((n+2)/α)`` for the no-subtraction high-radix form.

    This is the formula the paper cites from [1] when arguing the radix-2
    count ``n+2`` generalises; the radix ablation benchmark sweeps α.
    """
    ensure_positive("n_bits", n_bits)
    ensure_positive("alpha", alpha)
    return bit_length_words(n_bits + 2, alpha)
