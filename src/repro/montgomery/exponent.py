"""Algorithm 3: modular exponentiation by square-and-multiply.

Implements the paper's left-to-right square-and-multiply exponentiation both
as a plain modular algorithm (:func:`modexp_square_multiply`) and in the
Montgomery domain exactly as the exponentiator circuit schedules it
(:func:`montgomery_modexp`):

1. pre-processing — Mont(M, R² mod N) maps the message into the domain;
2. the scan of the exponent from bit ``t-2`` downward, squaring every step
   and multiplying when the bit is 1;
3. post-processing — Mont(A, 1) strips the R factor.

:func:`montgomery_modexp` also returns an :class:`ExponentiationTrace`
recording every multiplication performed (kind, operands) plus the paper's
cycle accounting, so the RTL exponentiator and the Table 1 benchmark can be
validated against it operation by operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ParameterError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.utils.validation import ensure_positive

__all__ = [
    "modexp_square_multiply",
    "montgomery_modexp",
    "montgomery_modexp_rtl",
    "montgomery_powering_ladder",
    "ExponentiationTrace",
    "MultOp",
]


@dataclass(frozen=True)
class MultOp:
    """One Montgomery multiplication issued by the exponentiator.

    ``kind`` is one of ``"pre"``, ``"square"``, ``"multiply"``, ``"post"``.
    """

    kind: str
    x: int
    y: int
    result: int


@dataclass
class ExponentiationTrace:
    """Complete record of one modular exponentiation.

    Attributes
    ----------
    operations:
        Every Montgomery multiplication in issue order.
    squares / multiplies:
        Counts of the two loop operation kinds (pre/post excluded).
    """

    operations: List[MultOp] = field(default_factory=list)

    @property
    def squares(self) -> int:
        return sum(1 for op in self.operations if op.kind == "square")

    @property
    def multiplies(self) -> int:
        return sum(1 for op in self.operations if op.kind == "multiply")

    @property
    def total_multiplications(self) -> int:
        """All Montgomery multiplications including pre- and post-processing."""
        return len(self.operations)


def modexp_square_multiply(base: int, exponent: int, modulus: int) -> int:
    """Algorithm 3 verbatim: left-to-right binary square-and-multiply.

    Plain modular arithmetic (no Montgomery domain); serves as the reference
    the Montgomery pipeline is checked against, independent of ``pow``.
    """
    ensure_positive("modulus", modulus)
    if exponent < 0:
        raise ParameterError(f"exponent must be >= 0, got {exponent}")
    if exponent == 0:
        return 1 % modulus
    a = base % modulus
    for i in reversed(range(exponent.bit_length() - 1)):
        a = (a * a) % modulus
        if (exponent >> i) & 1:
            a = (a * base) % modulus
    return a


def montgomery_modexp(
    ctx: MontgomeryContext, message: int, exponent: int
) -> Tuple[int, ExponentiationTrace]:
    """Exponentiation through the Montgomery pipeline of Section 4.5.

    Returns ``(message^exponent mod N, trace)``.  The sequencing mirrors the
    circuit: one pre-multiplication by ``R² mod N``, the Algorithm 3 scan
    with every intermediate staying in the ``[0, 2N)`` window (no reductions
    anywhere), and one final multiplication by 1.
    """
    if not 0 <= message < ctx.modulus:
        raise ParameterError(
            f"message must be in [0, N); got {message} for N={ctx.modulus}"
        )
    if exponent <= 0:
        raise ParameterError(f"exponent must be >= 1, got {exponent}")
    trace = ExponentiationTrace()

    def mont(kind: str, x: int, y: int) -> int:
        r = montgomery_no_subtraction(ctx, x, y)
        trace.operations.append(MultOp(kind=kind, x=x, y=y, result=r))
        return r

    # Pre-processing: M -> M·R (mod N), up to the 2N window.
    m_bar = mont("pre", message, ctx.r2_mod_n)
    a = m_bar
    for i in reversed(range(exponent.bit_length() - 1)):
        a = mont("square", a, a)
        if (exponent >> i) & 1:
            a = mont("multiply", a, m_bar)
    result = mont("post", a, 1)
    return result % ctx.modulus, trace


def montgomery_modexp_rtl(
    ctx: MontgomeryContext, message: int, exponent: int
) -> Tuple[int, ExponentiationTrace]:
    """Right-to-left binary exponentiation through the Montgomery pipeline.

    Scans the exponent LSB-first with two accumulators: the running
    square chain ``S`` and the product accumulator ``A``.  Same operation
    count as left-to-right, but the square chain is *independent of the
    accumulator*: on hardware with two multipliers (or an overlapped
    issue pipeline, see :mod:`repro.systolic.pipeline`) the square and
    the conditional multiply of one step can proceed concurrently —
    the classic argument for R2L in hardware exponentiators.
    """
    if not 0 <= message < ctx.modulus:
        raise ParameterError(
            f"message must be in [0, N); got {message} for N={ctx.modulus}"
        )
    if exponent <= 0:
        raise ParameterError(f"exponent must be >= 1, got {exponent}")
    trace = ExponentiationTrace()

    def mont(kind: str, x: int, y: int) -> int:
        r = montgomery_no_subtraction(ctx, x, y)
        trace.operations.append(MultOp(kind=kind, x=x, y=y, result=r))
        return r

    s = mont("pre", message, ctx.r2_mod_n)
    a = ctx.r_mod_n  # domain 1
    e = exponent
    while e:
        if e & 1:
            a = mont("multiply", a, s)
        e >>= 1
        if e:
            s = mont("square", s, s)
    result = mont("post", a, 1)
    return result % ctx.modulus, trace


def montgomery_powering_ladder(
    ctx: MontgomeryContext, message: int, exponent: int
) -> Tuple[int, ExponentiationTrace]:
    """SPA-hardened exponentiation: the Montgomery powering ladder.

    Two multiplications per exponent bit, *always*, regardless of the
    bit's value — the operation **sequence** no longer leaks the exponent
    (plain square-and-multiply reveals every 1-bit to an SPA observer even
    when each multiplication is constant-time, because multiply-after-
    square events mark the 1s).  Costs ~33% more multiplications than
    Algorithm 3 on a balanced exponent; the side-channel benchmark
    quantifies the trade.

    Returns ``(message^exponent mod N, trace)`` exactly like
    :func:`montgomery_modexp`; the trace records the regular
    ladder-step / ladder-square rhythm.
    """
    if not 0 <= message < ctx.modulus:
        raise ParameterError(
            f"message must be in [0, N); got {message} for N={ctx.modulus}"
        )
    if exponent <= 0:
        raise ParameterError(f"exponent must be >= 1, got {exponent}")
    trace = ExponentiationTrace()

    def mont(kind: str, x: int, y: int) -> int:
        r = montgomery_no_subtraction(ctx, x, y)
        trace.operations.append(MultOp(kind=kind, x=x, y=y, result=r))
        return r

    m_bar = mont("pre", message, ctx.r2_mod_n)
    r0 = ctx.r_mod_n  # domain representation of 1
    r1 = m_bar
    for i in reversed(range(exponent.bit_length())):
        if (exponent >> i) & 1:
            r0 = mont("ladder-mul", r0, r1)
            r1 = mont("ladder-sq", r1, r1)
        else:
            r1 = mont("ladder-mul", r0, r1)
            r0 = mont("ladder-sq", r0, r0)
    result = mont("post", r0, 1)
    return result % ctx.modulus, trace
