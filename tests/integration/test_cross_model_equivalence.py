"""Cross-model equivalence: golden == RTL == gate level, systematically.

The reproduction's trust chain: the algorithm (proved against number
theory), the RTL machine (proved against the algorithm), the gate netlist
(proved against the RTL machine and the algorithm), the FPGA model (built
on the gate netlist).  This module walks the whole chain in one place.
"""

import random

import pytest

from repro.montgomery.algorithms import montgomery_no_subtraction, montgomery_trace
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.array_netlist import GateLevelArray
from repro.systolic.mmmc import MMMC
from repro.systolic.mmmc_netlist import GateLevelMMMC


CASES = []
_rng = random.Random(0xE0)
for _l in (2, 3, 4, 6, 8):
    for _ in range(3):
        _n = (_rng.getrandbits(_l - 1) | (1 << (_l - 1))) | 1
        CASES.append((_l, _n, _rng.randrange(2 * _n), _rng.randrange(2 * _n)))


@pytest.mark.parametrize("l,n,x,y", CASES)
def test_four_models_agree(l, n, x, y):
    ctx = MontgomeryContext(n)
    golden = montgomery_no_subtraction(ctx, x, y)
    rtl = SystolicArrayRTL(l).run_multiplication(x, y, n).value
    gate = GateLevelArray(l).run_multiplication(x, y, n).value
    mmmc = MMMC(l).multiply(x, y, n).result
    gate_mmmc = GateLevelMMMC(l).multiply(x, y, n).result
    assert golden == rtl == gate == mmmc == gate_mmmc


class TestTraceLevelAgreement:
    def test_rtl_m_sequence_matches_algorithm(self):
        """The m_i digits generated inside the rightmost cell equal the
        algorithm's quotient digits, in order."""
        l, n, x, y = 6, 53, 100, 71
        ctx = MontgomeryContext(n)
        _, steps = montgomery_trace(ctx, x, y)
        arr = SystolicArrayRTL(l)
        arr.load(x, y, n)
        m_seen = []
        for tau in range(arr.datapath_cycles):
            arr.step()
            # m_pipe[0] latches the freshly generated m_i at the end of
            # every even cycle 2i.
            if tau % 2 == 0 and tau // 2 < l + 2:
                m_seen.append(int(arr.m_pipe[0]))
        assert m_seen == [s.m_digit for s in steps]

    def test_rtl_partial_sums_match_trace(self):
        """Row i's digits, assembled from the wavefront, equal bit j of
        the algorithm's undivided sum S_i."""
        l, n, x, y = 5, 29, 41, 33
        ctx = MontgomeryContext(n)
        _, steps = montgomery_trace(ctx, x, y)
        # S_i = 2 * T_i (T_i = steps[i].t_after), bits 1..l+2 of S_i are
        # the t_{i,j} digits for j >= 1.
        arr = SystolicArrayRTL(l)
        arr.load(x, y, n)
        # digit (i, j) is captured into t_reg[j] at end of cycle 2i+j.
        captured = {}
        for tau in range(arr.datapath_cycles):
            arr.step()
            for j in range(1, arr.top_t + 1):
                if (tau - j) % 2 == 0:
                    i = (tau - j) // 2
                    if 0 <= i <= l + 1 and (j != arr.top_t or tau % 2 == arr.top_cell % 2):
                        captured[(i, j)] = int(arr.t_reg[j])
        for i, s in enumerate(steps):
            s_undivided = 2 * s.t_after
            for j in range(1, arr.top_t + 1):
                if (i, j) in captured:
                    assert captured[(i, j)] == (s_undivided >> j) & 1, (i, j)
