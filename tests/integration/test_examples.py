"""Smoke tests: the example scripts run end-to-end and say what they claim.

Heavyweight examples run with reduced parameters; the two slowest
(dualfield_demo, ecc_point_multiplication at full curve sizes) are
exercised by the benchmark suite instead.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
EXAMPLES = os.path.join(REPO_ROOT, "examples")
SRC = os.path.join(REPO_ROOT, "src")


def _env():
    """Subprocess environment with ``src`` on PYTHONPATH.

    The examples import ``repro`` without installing it; the test runner
    may itself be using an installed copy or a PYTHONPATH entry, so the
    child gets ``src`` prepended to whatever is already there.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    return env


def _run(script, *args, timeout=180):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=os.environ.get("TMPDIR", "/tmp"),
        env=_env(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py", "12")
        assert "golden Algorithm 2" in out
        assert "gate-level MMMC netlist" in out
        assert "✔" in out

    def test_fpga_report(self):
        out = _run("fpga_report.py")
        assert "Table 2" in out and "Table 1" in out
        assert "1024" in out

    def test_rsa_accelerator_small(self):
        out = _run("rsa_hardware_accelerator.py", "128")
        assert "decrypt (CRT)" in out
        assert "CRT speedup" in out

    def test_waveform_trace(self, tmp_path):
        vcd = str(tmp_path / "t.vcd")
        out = _run("waveform_trace.py", vcd)
        assert "quotient digits" in out
        assert os.path.exists(vcd)
        with open(vcd) as fh:
            assert "$enddefinitions" in fh.read()

    def test_spa_attack_demo(self):
        out = _run("spa_attack_demo.py")
        assert "exact match with d: True" in out

    def test_trace_exponentiation(self, tmp_path):
        import json

        trace = str(tmp_path / "trace.json")
        out = _run("trace_exponentiation.py", trace, "8")
        assert "span totals agree with measured cycles" in out
        assert "perfetto" in out.lower()
        with open(trace) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert any(e.get("name") == "exponentiate" for e in events)
        assert any(e.get("name", "").startswith("state:") for e in events)

    def test_export_verilog_small(self, tmp_path):
        target = str(tmp_path / "m.v")
        out = _run("export_verilog.py", "8", target)
        assert "all equal" in out
        assert os.path.exists(target)

    @pytest.mark.slow
    def test_ecc_point_multiplication(self):
        out = _run("ecc_point_multiplication.py", timeout=300)
        assert "shared secret x-coordinate agrees" in out

    def test_postmortem_bitflip(self, tmp_path):
        out = _run("postmortem_bitflip.py", str(tmp_path))
        assert "recovered exactly from the dump" in out
        assert "^ trigger" in out
        assert os.path.exists(os.path.join(str(tmp_path))) and os.listdir(
            str(tmp_path)
        )

    def test_slo_dashboard(self):
        out = _run("slo_dashboard.py", timeout=300)
        assert "Latency SLOs in simulated cycles" in out
        # The analytic budget holds for every backend...
        assert "0 violations — cycle-accurate backends satisfy" in out
        # ...and the tightened margin actually fires.
        assert "margin=0.6" in out and "0 violations — the budget" not in out
