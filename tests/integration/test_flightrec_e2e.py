"""End-to-end flight-recorder acceptance: chaos bit-flips leave replayable
post-mortem bundles.

The contract: a chaos-injected DFF bit-flip during a serving run must
produce a bundle whose VCD/window, parsed back, shows the flipped
register diverging from a **clean differential re-run** at exactly the
injected cycle — on both the interpreted and compiled netlist engines,
with the compiled engine's lane extraction following the faulting lane.
"""

from __future__ import annotations

from repro.analysis.fault import FaultSite
from repro.hdl.waveform import parse_vcd
from repro.observability.flightrec import (
    FlightRecorderHub,
    PostMortemBundle,
    armed,
    find_bundles,
)
from repro.robustness import ChaosConfig, RetryPolicy, VerifyPolicy
from repro.serving.backends import default_registry
from repro.serving.request import ModExpRequest
from repro.serving.service import ModExpService
from repro.serving.wire import result_to_dict
from repro.systolic.mmmc_netlist import GateLevelMMMC

N10 = 1021  # odd 10-bit modulus (the gate backend caps at 10 bits)


def _reqs(count, exponent=17):
    return [
        ModExpRequest(
            base=3 + i,
            exponent=exponent,
            modulus=N10,
            request_id=f"r{i}",
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Differential replay helpers
# ----------------------------------------------------------------------
def _flip_site(gate: GateLevelMMMC, cause: str):
    """Map a bundle's ``bit-flip on <wire>`` cause back to (class, bit)."""
    assert cause.startswith("bit-flip on "), cause
    name = cause[len("bit-flip on ") :].split(" lane ")[0].strip()
    wire_names = gate.ports.circuit.wire_names
    for cls, wires in gate.fault_sites().items():
        for idx, w in enumerate(wires):
            if wire_names[w.index] == name:
                return cls, idx
    raise AssertionError(f"cause wire {name!r} not in any register class")


def _clean_window(gate: GateLevelMMMC, x, y, n, trigger_cycle, post):
    """Re-run the faulted multiplication cleanly, windowed on the same cycle."""
    hub = FlightRecorderHub(
        dump_dir=None,
        pre=trigger_cycle + 1,
        post=post,
        triggers=[f"cycle=={trigger_cycle}"],
        fire_on_fault=False,
    )
    gate.sim.reset()  # drop residue from any earlier multiplication
    with armed(hub):
        gate.multiply(x, y, n)
    assert hub.last_bundle is not None, "clean replay never hit the trigger cycle"
    return hub.last_bundle.window


def _assert_diverges_at_trigger(bundle: PostMortemBundle, gate: GateLevelMMMC):
    """The flipped register must match the clean run before the trigger and
    differ by exactly the flipped bit at the trigger cycle."""
    meta, w = bundle.meta, bundle.window
    cls, idx = _flip_site(gate, meta["cause"])
    tc = w.trigger_cycle
    assert tc is not None and tc == meta["trigger_cycle"]
    if "x" in meta:
        x, y, n = (int(meta[k]) for k in ("x", "y", "n"))
    else:  # lane-batch capture: replay the faulting lane's operands
        lane = int(meta["lane"])
        x, y, n = (int(meta[k][lane]) for k in ("xs", "ys", "ns"))
    clean = _clean_window(gate, x, y, n, tc, post=len([c for c in w.cycles if c > tc]))
    # every captured signal agrees cycle-for-cycle before the strike...
    # (except RESULT, which holds the *previous* product until DONE — the
    # one register a from-reset replay legitimately cannot reproduce)
    for name in w.signals:
        if name == "result" and cls != "result":
            continue
        for c in w.cycles:
            if c < tc:
                assert clean.value_at(name, c) == w.value_at(name, c), (
                    f"{name} differs at pre-trigger cycle {c}"
                )
    # ...and the struck register diverges at exactly the injected cycle,
    # by exactly the injected bit.
    flipped_v, clean_v = w.value_at(cls, tc), clean.value_at(cls, tc)
    assert flipped_v is not None and clean_v is not None
    assert flipped_v ^ clean_v == 1 << idx, (
        f"{cls} at trigger cycle {tc}: faulted {flipped_v:#x} vs clean "
        f"{clean_v:#x}, expected XOR {1 << idx:#x}"
    )
    return cls, idx


def _bitflip_bundles(dump_dir):
    out = []
    for path in find_bundles(str(dump_dir)):
        b = PostMortemBundle.load(path)
        if str(b.meta.get("cause", "")).startswith("bit-flip on "):
            out.append(b)
    return out


# ----------------------------------------------------------------------
# The acceptance run: 50 requests, 5% register bit-flips, both engines
# ----------------------------------------------------------------------
class TestServingPostMortem:
    def _serve(self, backend, dump_dir, count=50):
        svc = ModExpService(
            backend=backend,
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(
                seed=0,  # flips r4, r13, r25; their retries draw clean
                bitflip_rate=0.05,
                register_faults=True,
                flightrec_dir=str(dump_dir),
            ),
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
        )
        try:
            return svc.process(_reqs(count))
        finally:
            svc.close()

    def test_compiled_engine_bundle_replays_divergence(self, tmp_path):
        results = self._serve("gate", tmp_path)
        # zero silent corruptions: every delivered value is correct
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [
            pow(3 + i, 17, N10) for i in range(50)
        ]
        bundles = _bitflip_bundles(tmp_path)
        assert bundles, "5% bit-flip chaos over 50 requests left no dumps"
        gate = GateLevelMMMC(10, simulator="compiled")
        for bundle in bundles:
            assert bundle.meta["engine"] == "compiled"
            assert bundle.meta["backend"] == "gate"
            assert str(bundle.meta["request_id"]) in {"r4", "r13", "r25"}
            _assert_diverges_at_trigger(bundle, gate)
            # the VCD view carries the same story as the JSON window
            parsed = parse_vcd(
                open(f"{bundle.path}/{PostMortemBundle.VCD_FILE}").read()
            )
            note = " ".join(parsed.comments)
            assert f"trigger_cycle={bundle.window.trigger_cycle}" in note

    def test_interpreted_engine_bundle_replays_divergence(self, tmp_path):
        backend = default_registry().get("gate")
        backend.simulator = "interpreted"  # per-instance engine override
        results = self._serve(backend, tmp_path, count=20)
        assert all(r.ok for r in results)
        bundles = _bitflip_bundles(tmp_path)
        assert bundles
        gate = GateLevelMMMC(10, simulator="interpreted")
        for bundle in bundles:
            assert bundle.meta["engine"] == "interpreted"
            _assert_diverges_at_trigger(bundle, gate)


# ----------------------------------------------------------------------
# Compiled lane extraction: the dump follows the faulting lane
# ----------------------------------------------------------------------
class TestCompiledLaneExtraction:
    def test_bundle_extracts_the_faulting_lane(self, tmp_path):
        l, n = 16, 0xBEEF
        xs = [0x1111, 0x2222, 0x3333, 0x4444]
        ys = [0x0123, 0x4567, 0x09AB, 0x0DEF]
        gate = GateLevelMMMC(l, simulator="compiled", lanes=4)
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=32, post=6)
        gate.schedule_fault(FaultSite(cycle=9, register="t", index=2), lane=2)
        with armed(hub):
            runs = gate.multiply_lanes(xs, ys, [n] * 4)
        # lanes 0/1/3 are untouched by a lane-2 strike
        scalar = GateLevelMMMC(l, simulator="compiled")
        for k in (0, 1, 3):
            assert runs[k].result == scalar.multiply(xs[k], ys[k], n).result
        bundle = hub.last_bundle
        assert bundle is not None
        assert bundle.meta["lane"] == 2
        assert bundle.meta["cause"].endswith("lane 2")
        assert bundle.meta["xs"][2] == xs[2]
        # clean replay of the faulting lane's own operands lines up
        # pre-trigger and diverges by t[2] at cycle 9
        cls, idx = _assert_diverges_at_trigger(bundle, scalar)
        assert (cls, idx) == ("t", 2)
        # extraction really followed lane 2: lane 0's clean trace does not
        # match the captured pre-trigger window
        w = bundle.window
        other = _clean_window(
            scalar, xs[0], ys[0], n, w.trigger_cycle, post=0
        )
        pre = [c for c in w.cycles if c < w.trigger_cycle]
        assert any(
            other.value_at(name, c) != w.value_at(name, c)
            for name in w.signals
            for c in pre
        )


# ----------------------------------------------------------------------
# FaultDetected carries the bundle path out through the wire format
# ----------------------------------------------------------------------
class TestBundleAttachment:
    def test_verify_failure_attaches_bundle_path(self, tmp_path):
        svc = ModExpService(
            backend="gate",
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(
                seed=3,
                bitflip_rate=1.0,
                register_faults=True,
                flightrec_dir=str(tmp_path),
            ),
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
        )
        try:
            results = svc.process(_reqs(6))
        finally:
            svc.close()
        failed = [r for r in results if not r.ok]
        assert failed, "every injected flip was masked (unexpected at 100%)"
        attached = [r for r in failed if r.bundle_path]
        assert attached, "no FaultDetected carried a bundle path"
        for r in attached:
            bundle = PostMortemBundle.load(r.bundle_path)
            assert str(bundle.meta["request_id"]) == r.request_id
            obj = result_to_dict(r)
            assert obj["bundle_path"] == r.bundle_path
