"""End-to-end integration: full application flows through the stack."""

import random

import pytest

from repro.ecc.curves import TOY_CURVE
from repro.ecc.scalarmul import ecdh_shared_secret
from repro.montgomery.params import MontgomeryContext
from repro.rsa.cipher import RSACipher
from repro.rsa.keygen import generate_keypair
from repro.systolic.exponentiator import ModularExponentiator
from repro.systolic.timing import mmm_cycles_corrected


class TestRSAOnHardwareModel:
    def test_full_rsa_flow_rtl_engine(self):
        """Keygen -> encrypt -> decrypt, every multiplication through the
        cycle-accurate circuit (small key so the RTL stays fast)."""
        key = generate_keypair(20, random.Random(77))
        cipher = RSACipher(key, engine="rtl")
        msg = 0x5A5A % key.modulus
        ct = cipher.encrypt(msg)
        pt = cipher.decrypt(ct.value)
        assert pt.value == msg
        # cycle accounting is exact: ops x (3l+5)
        per = mmm_cycles_corrected(key.bits)
        assert ct.cycles == ct.multiplications * per

    def test_rsa_1024_golden_engine(self):
        """Table-1-scale key: the engine swap keeps results identical and
        cycle counts exact at full RSA size."""
        key = generate_keypair(1024, random.Random(99))
        cipher = RSACipher(key, engine="golden")
        msg = random.Random(1).randrange(key.modulus)
        ct = cipher.encrypt(msg)
        assert cipher.decrypt_crt(ct.value).value == msg

    def test_signature_flow(self):
        key = generate_keypair(64, random.Random(3))
        cipher = RSACipher(key)
        sig = cipher.sign(12345 % key.modulus)
        assert cipher.verify(12345 % key.modulus, sig.value)


class TestECDHOnHardwareModel:
    def test_toy_ecdh(self):
        xa, xb, ok = ecdh_shared_secret(TOY_CURVE, 11, 23)
        assert ok and xa == xb

    def test_multiplier_usage_counted(self):
        before = TOY_CURVE.field.mult_count
        ecdh_shared_secret(TOY_CURVE, 7, 9)
        assert TOY_CURVE.field.mult_count > before


class TestEngineConsistency:
    @pytest.mark.parametrize("engine", ["rtl", "golden"])
    def test_exponentiator_engines_identical(self, engine):
        ctx = MontgomeryContext(251)
        exp = ModularExponentiator(ctx, engine=engine)
        run = exp.exponentiate(123, 0x1D)
        assert run.result == pow(123, 0x1D, 251)
        assert run.cycles == run.num_multiplications * mmm_cycles_corrected(ctx.l)

    def test_paper_vs_corrected_same_results(self):
        """The two architectures compute the same function where both are
        defined; only latency differs."""
        ctx = MontgomeryContext(139)  # safe for paper mode
        r_paper = ModularExponentiator(ctx, engine="rtl", mode="paper").exponentiate(
            77, 29
        )
        r_corr = ModularExponentiator(
            ctx, engine="rtl", mode="corrected"
        ).exponentiate(77, 29)
        assert r_paper.result == r_corr.result
        assert r_corr.cycles == r_paper.cycles + r_paper.num_multiplications
