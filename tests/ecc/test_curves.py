"""Tests for the curve parameter sets."""

import pytest

from repro.ecc.curves import NIST_P192, NIST_P256, TOY_CURVE, WeierstrassCurve
from repro.errors import ParameterError


class TestNamedCurves:
    @pytest.mark.parametrize("curve", [NIST_P192, NIST_P256, TOY_CURVE])
    def test_base_point_on_curve(self, curve):
        assert curve.contains(curve.gx, curve.gy)

    def test_p192_bits(self):
        assert NIST_P192.bits == 192

    def test_p256_bits(self):
        assert NIST_P256.bits == 256

    def test_orders_are_prime_for_nist(self):
        from repro.rsa.primes import is_probable_prime

        assert is_probable_prime(NIST_P192.order)
        assert is_probable_prime(NIST_P256.order)

    def test_toy_generator_order(self):
        """The toy generator has order 50 (verified by exhaustion here)."""
        from repro.ecc.point import AffinePoint

        g = AffinePoint.generator(TOY_CURVE).to_jacobian()
        acc = g
        order = 1
        while not acc.is_infinity:
            acc = acc.add(g)
            order += 1
            assert order <= 200
        assert order == TOY_CURVE.order == 50


class TestValidation:
    def test_singular_rejected(self):
        with pytest.raises(ParameterError, match="singular"):
            WeierstrassCurve(name="bad", p=97, a=0, b=0, gx=0, gy=0, order=1)

    def test_off_curve_base_point_rejected(self):
        with pytest.raises(ParameterError, match="not on the curve"):
            WeierstrassCurve(name="bad", p=97, a=2, b=3, gx=1, gy=1, order=1)

    def test_generator_accessor(self):
        assert TOY_CURVE.generator() == (TOY_CURVE.gx, TOY_CURVE.gy)
