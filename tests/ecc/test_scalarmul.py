"""Tests for the three scalar-multiplication ladders + ECDH."""

import pytest

from repro.ecc.curves import NIST_P192, TOY_CURVE
from repro.ecc.point import AffinePoint
from repro.ecc.scalarmul import (
    ecdh_shared_secret,
    montgomery_ladder,
    naf_scalar_multiply,
    non_adjacent_form,
    scalar_multiply,
)
from repro.errors import ParameterError


def _naive_multiple(curve, k):
    """Repeated affine addition oracle."""
    g = AffinePoint.generator(curve).to_jacobian()
    acc = g
    for _ in range(k - 1):
        acc = acc + g
    return acc.to_affine()


class TestLaddersAgree:
    def test_all_multiples_on_toy_curve(self):
        """Exhaustive over the generator's full order: all three ladders
        equal the repeated-addition oracle."""
        g = AffinePoint.generator(TOY_CURVE)
        for k in range(1, TOY_CURVE.order + 1):
            ref = _naive_multiple(TOY_CURVE, k)
            for ladder in (scalar_multiply, montgomery_ladder, naf_scalar_multiply):
                got = ladder(g, k).point
                if ref.is_infinity:
                    assert got.is_infinity, (ladder.__name__, k)
                else:
                    assert (got.x, got.y) == (ref.x, ref.y), (ladder.__name__, k)

    def test_zero_scalar(self):
        g = AffinePoint.generator(TOY_CURVE)
        for ladder in (scalar_multiply, montgomery_ladder, naf_scalar_multiply):
            assert ladder(g, 0).point.is_infinity

    def test_order_annihilates(self):
        g = AffinePoint.generator(TOY_CURVE)
        assert scalar_multiply(g, TOY_CURVE.order).point.is_infinity

    def test_p192_consistency(self):
        g = AffinePoint.generator(NIST_P192)
        k = 0xDEADBEEFCAFE
        a = scalar_multiply(g, k).point
        b = montgomery_ladder(g, k).point
        c = naf_scalar_multiply(g, k).point
        assert (a.x, a.y) == (b.x, b.y) == (c.x, c.y)


class TestNAF:
    def test_digits_reconstruct(self):
        for k in (0, 1, 7, 255, 0xDEADBEEF):
            for w in (2, 3, 4, 5):
                digits = non_adjacent_form(k, w)
                assert sum(d << i for i, d in enumerate(digits)) == k

    def test_digit_constraints(self):
        for k in (255, 0b1010110111, 123456789):
            for w in (2, 4):
                for d in non_adjacent_form(k, w):
                    assert d == 0 or (d % 2 == 1 and abs(d) < (1 << (w - 1)))

    def test_naf_reduces_additions(self):
        """Window-4 NAF must use fewer adds than plain double-and-add for
        a dense scalar."""
        g = AffinePoint.generator(NIST_P192)
        k = (1 << 64) - 1  # worst case for binary
        plain = scalar_multiply(g, k)
        naf = naf_scalar_multiply(g, k, width=4)
        assert naf.adds < plain.adds

    def test_bad_width(self):
        with pytest.raises(ParameterError):
            non_adjacent_form(5, 1)


class TestCostAccounting:
    def test_field_mult_count_positive_and_plausible(self):
        g = AffinePoint.generator(NIST_P192)
        rep = scalar_multiply(g, (1 << 32) - 1)
        # ~32 doubles (8 mult+add ops each) + ~31 adds (16 each) + inversion.
        assert 400 < rep.field_multiplications < 3000
        assert rep.doubles == 32
        assert rep.adds == 32  # every bit of the all-ones scalar is set

    def test_hardware_cycles(self):
        from repro.systolic.timing import mmm_cycles

        g = AffinePoint.generator(TOY_CURVE)
        rep = scalar_multiply(g, 5)
        assert rep.hardware_cycles() == rep.field_multiplications * mmm_cycles(7)

    def test_ladder_is_regular(self):
        """Montgomery ladder: doubles == adds == bitlen, independent of
        the key's Hamming weight — the SPA-resistance property."""
        g = AffinePoint.generator(TOY_CURVE)
        sparse = montgomery_ladder(g, 0b10000)
        dense = montgomery_ladder(g, 0b11111)
        assert sparse.doubles == dense.doubles == 5
        assert sparse.adds == dense.adds == 5


class TestECDH:
    def test_shared_secret_matches(self):
        xa, xb, ok = ecdh_shared_secret(TOY_CURVE, 7, 13)
        assert ok and xa == xb

    def test_p192_ecdh(self):
        xa, xb, ok = ecdh_shared_secret(NIST_P192, 0x123456789, 0x987654321)
        assert ok and xa == xb


class TestValidation:
    def test_negative_scalar(self):
        g = AffinePoint.generator(TOY_CURVE)
        with pytest.raises(ParameterError):
            scalar_multiply(g, -1)

    def test_non_int_scalar(self):
        g = AffinePoint.generator(TOY_CURVE)
        with pytest.raises(ParameterError):
            scalar_multiply(g, 1.5)
