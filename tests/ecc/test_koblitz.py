"""Tests for τ-adic NAF scalar multiplication on Koblitz curves."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.binary import NIST_K163, TOY_B16, BinaryPoint
from repro.ecc.binary_ld import ld_scalar_multiply
from repro.ecc.koblitz import (
    norm,
    partmod,
    tau_expand,
    tau_power,
    tnaf_scalar_multiply,
)
from repro.errors import ParameterError

MU = 1  # K-163 has a = 1


def _reconstruct(digits, mu=MU):
    a = b = 0
    for d in reversed(digits):
        a, b = -2 * b + d, a + mu * b
    return a, b


class TestTauArithmetic:
    def test_tau_satisfies_characteristic_equation(self):
        """τ² = μτ − 2."""
        assert tau_power(2, MU) == (-2, MU)

    def test_tau_powers_multiplicative(self):
        a3, b3 = tau_power(3, MU)
        # τ³ = τ·τ²  = τ(μτ − 2) = μτ² − 2τ = μ(μτ−2) − 2τ = (μ²−2)τ − 2μ
        assert (a3, b3) == (-2 * MU, MU * MU - 2)

    def test_norm_multiplicative_on_powers(self):
        """N(τ) = 2, so N(τ^i) = 2^i."""
        for i in range(12):
            a, b = tau_power(i, MU)
            assert norm(a, b, MU) == 2**i


class TestExpansion:
    @given(st.integers(-(1 << 80), 1 << 80), st.integers(-(1 << 80), 1 << 80))
    @settings(max_examples=200)
    def test_reconstruction(self, a, b):
        digits = tau_expand(a, b, MU)
        assert _reconstruct(digits) == (a, b)

    @given(st.integers(-(1 << 64), 1 << 64), st.integers(-(1 << 64), 1 << 64))
    @settings(max_examples=150)
    def test_naf_property(self, a, b):
        digits = tau_expand(a, b, MU)
        for x, y in zip(digits, digits[1:]):
            assert not (x != 0 and y != 0)
        for d in digits:
            assert d in (-1, 0, 1)

    @given(st.integers(-(1 << 64), 1 << 64), st.integers(-(1 << 64), 1 << 64))
    @settings(max_examples=100)
    def test_plain_expansion_also_reconstructs(self, a, b):
        digits = tau_expand(a, b, MU, naf=False)
        assert _reconstruct(digits) == (a, b)


class TestPartmod:
    @given(st.integers(1, 1 << 170))
    @settings(max_examples=100)
    def test_reduction_shrinks_norm(self, k):
        """The reduced element has norm ≲ N(δ) — expansion length ~m."""
        r0, r1 = partmod(k, NIST_K163)
        digits = tau_expand(r0, r1, MU)
        assert len(digits) <= NIST_K163.m + 6

    def test_non_koblitz_rejected(self):
        with pytest.raises(ParameterError):
            partmod(5, TOY_B16)  # b = 6: not a Koblitz curve


class TestScalarMultiplication:
    @pytest.fixture(scope="class")
    def generator(self):
        return BinaryPoint.generator(NIST_K163, NIST_K163.field())

    def test_matches_binary_ladder(self, generator):
        rng = random.Random(5)
        for _ in range(4):
            k = rng.getrandbits(160)
            a = tnaf_scalar_multiply(generator, k).point
            b, _ = ld_scalar_multiply(generator, k)
            assert a.to_affine_ints() == b.to_affine_ints()

    def test_unreduced_path(self, generator):
        k = 987654321
        a = tnaf_scalar_multiply(generator, k, reduce_first=False).point
        b, _ = ld_scalar_multiply(generator, k)
        assert a.to_affine_ints() == b.to_affine_ints()

    def test_zero_scalar(self, generator):
        assert tnaf_scalar_multiply(generator, 0).point.infinite

    def test_order_annihilates(self, generator):
        assert tnaf_scalar_multiply(generator, NIST_K163.order).point.infinite

    def test_speedup_over_binary(self, generator):
        """Frobenius-for-doubling: >2x fewer multiplier passes."""
        k = (1 << 160) - 1
        r = tnaf_scalar_multiply(generator, k)
        _, m_bin = ld_scalar_multiply(generator, k)
        assert m_bin > 2 * r.field_multiplications

    def test_digit_budget(self, generator):
        r = tnaf_scalar_multiply(generator, 0xDEADBEEF << 100)
        assert r.digits <= NIST_K163.m + 6
        assert r.additions <= r.digits // 2 + 2  # NAF density

    def test_negative_scalar_rejected(self, generator):
        with pytest.raises(ParameterError):
            tnaf_scalar_multiply(generator, -1)
