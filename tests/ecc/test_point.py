"""Group-law tests for the Jacobian point arithmetic (exhaustive on toy-97)."""

import pytest

from repro.ecc.curves import NIST_P192, TOY_CURVE
from repro.ecc.point import AffinePoint, JacobianPoint
from repro.errors import ParameterError


def _all_affine_points(curve):
    """Enumerate the whole group of the toy curve (order 100)."""
    pts = [AffinePoint.infinity(curve)]
    for x in range(curve.p):
        for y in range(curve.p):
            if curve.contains(x, y):
                pts.append(AffinePoint(curve, x, y))
    return pts


@pytest.fixture(scope="module")
def toy_points():
    return _all_affine_points(TOY_CURVE)


def _ref_add(curve, P, Q):
    """Textbook affine addition as the independent oracle."""
    p = curve.p
    if P.is_infinity:
        return Q
    if Q.is_infinity:
        return P
    if P.x == Q.x and (P.y + Q.y) % p == 0:
        return AffinePoint.infinity(curve)
    if P.x == Q.x:
        lam = (3 * P.x * P.x + curve.a) * pow(2 * P.y, -1, p) % p
    else:
        lam = (Q.y - P.y) * pow(Q.x - P.x, -1, p) % p
    x3 = (lam * lam - P.x - Q.x) % p
    y3 = (lam * (P.x - x3) - P.y) % p
    return AffinePoint(curve, x3, y3)


def _same(a: AffinePoint, b: AffinePoint) -> bool:
    if a.is_infinity or b.is_infinity:
        return a.is_infinity and b.is_infinity
    return (a.x, a.y) == (b.x, b.y)


class TestGroupLaws:
    def test_add_matches_textbook_oracle(self, toy_points):
        """Jacobian add == affine oracle over a full sample of pairs."""
        sample = toy_points[::7]
        for P in sample:
            for Q in sample:
                got = (P.to_jacobian() + Q.to_jacobian()).to_affine()
                assert _same(got, _ref_add(TOY_CURVE, P, Q))

    def test_double_matches_add_self(self, toy_points):
        for P in toy_points[::5]:
            d = P.to_jacobian().double().to_affine()
            s = (P.to_jacobian() + P.to_jacobian()).to_affine()
            assert _same(d, s)

    def test_identity(self, toy_points):
        inf = JacobianPoint.infinity(TOY_CURVE)
        for P in toy_points[::9]:
            assert _same((P.to_jacobian() + inf).to_affine(), P)
            assert _same((inf + P.to_jacobian()).to_affine(), P)

    def test_inverse(self, toy_points):
        for P in toy_points[::9]:
            got = (P.to_jacobian() + (-P).to_jacobian()).to_affine()
            assert got.is_infinity

    def test_commutativity(self, toy_points):
        sample = toy_points[::11]
        for P in sample:
            for Q in sample:
                pq = (P.to_jacobian() + Q.to_jacobian()).to_affine()
                qp = (Q.to_jacobian() + P.to_jacobian()).to_affine()
                assert _same(pq, qp)

    def test_associativity_sampled(self, toy_points):
        sample = toy_points[3::17]
        for P in sample:
            for Q in sample:
                for R in sample:
                    a = ((P.to_jacobian() + Q.to_jacobian()) + R.to_jacobian()).to_affine()
                    b = (P.to_jacobian() + (Q.to_jacobian() + R.to_jacobian())).to_affine()
                    assert _same(a, b)

    def test_closure_all_results_on_curve(self, toy_points):
        """to_affine re-validates the curve equation (AffinePoint checks)."""
        for P in toy_points[::4]:
            (P.to_jacobian().double()).to_affine()


class TestJacobianRepresentation:
    def test_projective_equality(self):
        g = AffinePoint.generator(TOY_CURVE).to_jacobian()
        doubled = g.double()
        also = g + g
        assert doubled.equals(also)
        assert not doubled.equals(g)

    def test_double_of_order2_point_is_infinity(self, toy_points):
        """Points with y = 0 have order 2."""
        for P in toy_points:
            if not P.is_infinity and P.y == 0:
                assert P.to_jacobian().double().is_infinity

    def test_infinity_roundtrip(self):
        inf = AffinePoint.infinity(TOY_CURVE)
        assert inf.to_jacobian().to_affine().is_infinity


class TestValidation:
    def test_off_curve_rejected(self):
        with pytest.raises(ParameterError):
            AffinePoint(TOY_CURVE, 1, 1)

    def test_half_infinity_rejected(self):
        with pytest.raises(ParameterError):
            AffinePoint(TOY_CURVE, None, 5)

    def test_cross_curve_add_rejected(self):
        a = AffinePoint.generator(TOY_CURVE).to_jacobian()
        b = AffinePoint.generator(NIST_P192).to_jacobian()
        with pytest.raises(ParameterError):
            a + b

    def test_negation_of_infinity(self):
        inf = AffinePoint.infinity(TOY_CURVE)
        assert (-inf).is_infinity
