"""Tests for GF(p) over the Montgomery domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.field import PrimeField
from repro.errors import ParameterError

P = 97


@pytest.fixture(scope="module")
def field():
    return PrimeField(P)


class TestConstruction:
    def test_rejects_even(self):
        with pytest.raises(ParameterError):
            PrimeField(8)

    def test_rejects_composite(self):
        with pytest.raises(ParameterError):
            PrimeField(91)

    def test_trusted_skips_primality(self):
        PrimeField(91, trusted=True)  # caller's responsibility

    def test_equality(self):
        assert PrimeField(97) == PrimeField(97)
        assert PrimeField(97) != PrimeField(101)


class TestArithmetic:
    @given(st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=80)
    def test_ring_ops_match_integers(self, a, b):
        f = PrimeField(P)
        fa, fb = f(a), f(b)
        assert (fa + fb).value == (a + b) % P
        assert (fa - fb).value == (a - b) % P
        assert (fa * fb).value == (a * b) % P

    def test_int_coercion(self, field):
        assert (field(5) + 10).value == 15
        assert (10 + field(5)).value == 15
        assert (10 - field(5)).value == 5
        assert (3 * field(5)).value == 15

    def test_negation(self, field):
        assert (-field(5)).value == P - 5
        assert (-field(0)).value == 0

    def test_division(self, field):
        a, b = field(30), field(7)
        assert ((a / b) * b) == a

    def test_division_by_zero(self, field):
        with pytest.raises(ParameterError):
            field(3) / field(0)

    def test_pow(self, field):
        assert (field(3) ** 10).value == pow(3, 10, P)
        assert (field(3) ** 0).value == 1
        assert (field(3) ** -1) == field(3).inverse()

    def test_every_nonzero_invertible(self, field):
        for v in range(1, P):
            assert (field(v) * field(v).inverse()).value == 1

    def test_equality_mod_p(self, field):
        assert field(5) == field(5)
        assert field(5) == 5
        assert field(5) != field(6)

    def test_cross_field_rejected(self):
        with pytest.raises(ParameterError):
            PrimeField(97)(1) + PrimeField(101)(1)

    def test_zero_one_constants(self, field):
        assert field.zero().is_zero()
        assert field.one().value == 1


class TestCostAccounting:
    def test_mult_count_increases(self):
        f = PrimeField(P)
        before = f.mult_count
        f(3) * f(4)
        assert f.mult_count > before

    def test_add_is_free(self):
        f = PrimeField(P)
        a, b = f(3), f(4)
        before = f.mult_count
        _ = a + b
        assert f.mult_count == before, "additions must not hit the multiplier"
