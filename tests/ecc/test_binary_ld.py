"""Tests for López–Dahab coordinates on binary curves."""

import random

import pytest

from repro.ecc.binary import NIST_K163, TOY_B16, BinaryPoint, binary_scalar_multiply
from repro.ecc.binary_ld import LDPoint, ld_scalar_multiply
from repro.errors import ParameterError


def _affine(p):
    return None if p.infinite else p.to_affine_ints()


class TestAgainstAffine:
    def test_exhaustive_toy(self):
        """Every multiple of the toy generator matches the affine path."""
        f = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, f)
        for k in range(2 * TOY_B16.order + 3):
            a, _ = binary_scalar_multiply(g, k)
            b, _ = ld_scalar_multiply(g, k)
            assert _affine(a) == _affine(b), k

    def test_all_points_double_correctly(self):
        """LD doubling vs affine doubling over the whole toy group."""
        from repro.montgomery.gf2 import clmul, poly_mod

        f_poly, a, b = TOY_B16.poly, TOY_B16.a, TOY_B16.b
        pts = [
            (x, y)
            for x in range(16)
            for y in range(16)
            if poly_mod(clmul(y, y), f_poly)
            ^ poly_mod(clmul(x, y), f_poly)
            == poly_mod(clmul(poly_mod(clmul(x, x), f_poly), x), f_poly)
            ^ poly_mod(clmul(a, poly_mod(clmul(x, x), f_poly)), f_poly)
            ^ b
        ]
        fld = TOY_B16.field()
        for x, y in pts:
            affine_pt = BinaryPoint(TOY_B16, fld, fld.enter(x), fld.enter(y))
            via_ld = LDPoint.from_affine(affine_pt).double().to_affine()
            via_affine = affine_pt.double()
            assert _affine(via_ld) == _affine(via_affine), (x, y)

    def test_k163_agreement(self):
        fld = NIST_K163.field()
        g = BinaryPoint.generator(NIST_K163, fld)
        k = 0xABCDEF0123456789
        p1, _ = ld_scalar_multiply(g, k)
        p2, _ = binary_scalar_multiply(g, k)
        assert _affine(p1) == _affine(p2)


class TestCost:
    def test_ld_dramatically_cheaper(self):
        """The point of projective coordinates: >10x fewer multiplier
        passes than per-operation Fermat inversions."""
        fld = NIST_K163.field()
        g = BinaryPoint.generator(NIST_K163, fld)
        k = (1 << 64) - 1
        _, m_ld = ld_scalar_multiply(g, k)
        _, m_aff = binary_scalar_multiply(g, k)
        assert m_aff > 10 * m_ld

    def test_single_inversion(self):
        """Exactly one Fermat chain per scalar multiplication: the mult
        count is ~(bits × ~14) + one ~2m chain."""
        fld = NIST_K163.field()
        g = BinaryPoint.generator(NIST_K163, fld)
        bits = 64
        _, m_ld = ld_scalar_multiply(g, (1 << bits) - 1)
        per_bit = 4 + 5 + 8 + 5 + 4  # double + mixed add + constants, coarse
        inversion = 2 * NIST_K163.m
        assert m_ld < bits * per_bit + inversion + 200


class TestEdgeCases:
    def test_zero_scalar(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        p, _ = ld_scalar_multiply(g, 0)
        assert p.infinite

    def test_order_annihilates(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        p, _ = ld_scalar_multiply(g, TOY_B16.order)
        assert p.infinite

    def test_infinity_roundtrip(self):
        fld = TOY_B16.field()
        inf = LDPoint.infinity(TOY_B16, fld)
        assert inf.double().is_infinity
        assert inf.to_affine().infinite

    def test_add_inverse_gives_infinity(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        ld = LDPoint.from_affine(g)
        assert ld.add_affine(-g).is_infinity

    def test_add_self_doubles(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        via_add = LDPoint.from_affine(g).add_affine(g).to_affine()
        via_double = g.double()
        assert _affine(via_add) == _affine(via_double)

    def test_negative_scalar_rejected(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        with pytest.raises(ParameterError):
            ld_scalar_multiply(g, -1)
