"""Tests for binary-field (GF(2^m)) elliptic curves."""

import random

import pytest

from repro.ecc.binary import (
    NIST_K163,
    TOY_B16,
    BinaryPoint,
    binary_scalar_multiply,
)
from repro.errors import ParameterError
from repro.montgomery.gf2 import clmul, poly_inverse, poly_mod


def _all_toy_points():
    """Exhaustive affine points of the toy curve, plain polynomial math."""
    f, a, b = TOY_B16.poly, TOY_B16.a, TOY_B16.b

    def fm(u, v):
        return poly_mod(clmul(u, v), f)

    return [
        (x, y)
        for x in range(16)
        for y in range(16)
        if fm(y, y) ^ fm(x, y) == fm(fm(x, x), x) ^ fm(a, fm(x, x)) ^ b
    ]


def _ref_add(P, Q):
    """Textbook affine addition over GF(2^4), independent implementation."""
    f, a = TOY_B16.poly, TOY_B16.a

    def fm(u, v):
        return poly_mod(clmul(u, v), f)

    if P is None:
        return Q
    if Q is None:
        return P
    x1, y1 = P
    x2, y2 = Q
    if x1 == x2:
        if y1 != y2 or x1 == 0:
            return None
        lam = x1 ^ fm(y1, poly_inverse(x1, f))
        x3 = fm(lam, lam) ^ lam ^ a
        return (x3, fm(x1, x1) ^ fm(lam ^ 1, x3))
    lam = fm(y1 ^ y2, poly_inverse(x1 ^ x2, f))
    x3 = fm(lam, lam) ^ lam ^ x1 ^ x2 ^ a
    return (x3, fm(lam, x1 ^ x3) ^ x3 ^ y1)


class TestCurveParameters:
    def test_k163_generator_on_curve(self):
        assert NIST_K163.contains(NIST_K163.gx, NIST_K163.gy)

    def test_toy_generator_on_curve_and_order(self):
        assert TOY_B16.contains(TOY_B16.gx, TOY_B16.gy)
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        acc, order = g, 1
        while not acc.infinite:
            acc = acc.add(g)
            order += 1
            assert order <= 100
        assert order == TOY_B16.order == 24


class TestGroupLaws:
    def test_add_matches_reference_exhaustive(self):
        pts = _all_toy_points()
        fld = TOY_B16.field()

        def lift(P):
            if P is None:
                return BinaryPoint.infinity(TOY_B16, fld)
            return BinaryPoint(TOY_B16, fld, fld.enter(P[0]), fld.enter(P[1]))

        for P in pts:
            for Q in pts:
                got = lift(P).add(lift(Q)).to_affine_ints()
                assert got == _ref_add(P, Q), (P, Q)

    def test_double_matches_reference(self):
        fld = TOY_B16.field()
        for P in _all_toy_points():
            pt = BinaryPoint(TOY_B16, fld, fld.enter(P[0]), fld.enter(P[1]))
            assert pt.double().to_affine_ints() == _ref_add(P, P)

    def test_negation(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        assert g.add(-g).infinite

    def test_identity(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        inf = BinaryPoint.infinity(TOY_B16, fld)
        assert g.add(inf).to_affine_ints() == g.to_affine_ints()
        assert inf.add(g).to_affine_ints() == g.to_affine_ints()


class TestScalarMultiplication:
    def test_exhaustive_against_repeated_addition(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        acc = BinaryPoint.infinity(TOY_B16, fld)
        for k in range(0, 30):
            got, _ = binary_scalar_multiply(g, k)
            if acc.infinite:
                assert got.infinite or k % TOY_B16.order != 0
            if got.infinite:
                assert k % TOY_B16.order == 0
            else:
                assert got.to_affine_ints() == acc.to_affine_ints()
            acc = acc.add(g)

    def test_k163_order_annihilates(self):
        fld = NIST_K163.field()
        g = BinaryPoint.generator(NIST_K163, fld)
        res, mults = binary_scalar_multiply(g, NIST_K163.order)
        assert res.infinite
        assert mults > 0

    def test_results_on_curve(self):
        fld = NIST_K163.field()
        g = BinaryPoint.generator(NIST_K163, fld)
        p, _ = binary_scalar_multiply(g, 0xDEADBEEFCAFE)
        x, y = p.to_affine_ints()
        assert NIST_K163.contains(x, y)

    def test_mult_count_reported(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        _, mults = binary_scalar_multiply(g, 13)
        assert mults > 0

    def test_validation(self):
        fld = TOY_B16.field()
        g = BinaryPoint.generator(TOY_B16, fld)
        with pytest.raises(ParameterError):
            binary_scalar_multiply(g, -1)
