"""Tests for the word-based (high-radix) Montgomery variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.radix import (
    WordMontgomeryParams,
    iterations_high_radix,
    mont_mul_cios,
    mont_mul_fios,
    mont_mul_sos,
)

from tests.conftest import odd_modulus


ALPHAS = (1, 2, 4, 8, 16, 32)


class TestParams:
    def test_rejects_even_modulus(self):
        with pytest.raises(ParameterError):
            WordMontgomeryParams(10, 8)

    def test_word_structure(self):
        p = WordMontgomeryParams(0xC5, 4)
        assert p.num_words == 2
        assert p.R == 1 << 8
        assert (0xC5 * p.n_prime) % 16 == 15

    def test_n_words_little_endian(self):
        p = WordMontgomeryParams(0x1A3, 4)
        assert p.n_words == [0x3, 0xA, 0x1]


class TestVariantsAgree:
    @given(odd_modulus(2, 80), st.integers(0, 1 << 96), st.integers(0, 1 << 96))
    @settings(max_examples=120)
    def test_sos_cios_fios_equal(self, n, xr, yr):
        x, y = xr % n, yr % n
        for alpha in (4, 8, 16):
            p = WordMontgomeryParams(n, alpha)
            ref = (x * y * p.r_inverse) % n
            assert mont_mul_sos(p, x, y) == ref
            assert mont_mul_cios(p, x, y) == ref
            assert mont_mul_fios(p, x, y) == ref

    def test_alpha_one_matches_radix2(self):
        from repro.montgomery.algorithms import montgomery_with_subtraction
        from repro.montgomery.params import MontgomeryContext

        n = 197
        p = WordMontgomeryParams(n, 1)
        ctx = MontgomeryContext(n)
        for x, y in [(0, 0), (1, 1), (100, 150), (196, 196)]:
            assert mont_mul_cios(p, x, y) == montgomery_with_subtraction(ctx, x, y)

    def test_input_validation(self):
        p = WordMontgomeryParams(197, 8)
        with pytest.raises(ParameterError):
            mont_mul_cios(p, 197, 1)
        with pytest.raises(ParameterError):
            mont_mul_sos(p, 1, -1)


class TestIterationCount:
    def test_paper_formula(self):
        """ceil((n+2)/alpha) — Section 2, citing Batina-Muurling."""
        assert iterations_high_radix(1024, 1) == 1026
        assert iterations_high_radix(1024, 4) == 257
        assert iterations_high_radix(1024, 16) == 65

    def test_monotone_in_alpha(self):
        prev = None
        for alpha in ALPHAS:
            it = iterations_high_radix(512, alpha)
            if prev is not None:
                assert it <= prev
            prev = it

    def test_bad_args(self):
        with pytest.raises(ParameterError):
            iterations_high_radix(0, 4)
        with pytest.raises(ParameterError):
            iterations_high_radix(64, 0)
