"""Tests for Algorithm 3 and the Montgomery exponentiation pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.exponent import (
    modexp_square_multiply,
    montgomery_modexp,
    montgomery_modexp_rtl,
)
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestSquareMultiply:
    @given(
        st.integers(0, 1 << 64),
        st.integers(0, 1 << 20),
        st.integers(2, 1 << 48),
    )
    @settings(max_examples=200)
    def test_matches_builtin_pow(self, base, exp, mod):
        assert modexp_square_multiply(base, exp, mod) == pow(base, exp, mod)

    def test_exponent_zero(self):
        assert modexp_square_multiply(5, 0, 7) == 1
        assert modexp_square_multiply(5, 0, 1) == 0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            modexp_square_multiply(5, -1, 7)


class TestMontgomeryModexp:
    @given(odd_modulus(2, 96), st.integers(0, 1 << 200), st.integers(1, 1 << 24))
    @settings(max_examples=200)
    def test_matches_pow(self, n, m_raw, e):
        ctx = MontgomeryContext(n)
        m = m_raw % n
        result, _ = montgomery_modexp(ctx, m, e)
        assert result == pow(m, e, n)

    def test_trace_operation_counts(self):
        """Squares = bitlen-1, multiplies = weight-1, plus pre and post."""
        ctx = MontgomeryContext(197)
        e = 0b1011001
        _, trace = montgomery_modexp(ctx, 5, e)
        assert trace.squares == e.bit_length() - 1
        assert trace.multiplies == bin(e).count("1") - 1
        kinds = [op.kind for op in trace.operations]
        assert kinds[0] == "pre" and kinds[-1] == "post"
        assert trace.total_multiplications == 2 + trace.squares + trace.multiplies

    def test_exponent_one(self):
        """E = 1: no loop iterations, just domain round-trip."""
        ctx = MontgomeryContext(197)
        result, trace = montgomery_modexp(ctx, 123, 1)
        assert result == 123
        assert trace.squares == 0 and trace.multiplies == 0

    def test_all_ones_exponent_is_worst_case(self):
        """An all-ones exponent maximizes operations (Eq. 10 upper bound)."""
        ctx = MontgomeryContext(197)
        t = e = 0b11111
        _, trace = montgomery_modexp(ctx, 5, e)
        assert trace.squares == 4 and trace.multiplies == 4

    def test_intermediates_stay_in_window(self):
        """No operation result ever needs reduction — the no-subtraction
        property across a whole exponentiation."""
        ctx = MontgomeryContext(251)
        _, trace = montgomery_modexp(ctx, 250, 0xBEEF)
        for op in trace.operations:
            assert 0 <= op.result < 2 * ctx.modulus

    def test_rejects_bad_inputs(self):
        ctx = MontgomeryContext(11)
        with pytest.raises(ParameterError):
            montgomery_modexp(ctx, 11, 3)
        with pytest.raises(ParameterError):
            montgomery_modexp(ctx, 3, 0)


class TestRightToLeft:
    @given(odd_modulus(2, 96), st.integers(0, 1 << 128), st.integers(1, 1 << 24))
    @settings(max_examples=150)
    def test_matches_pow(self, n, m_raw, e):
        ctx = MontgomeryContext(n)
        m = m_raw % n
        result, _ = montgomery_modexp_rtl(ctx, m, e)
        assert result == pow(m, e, n)

    def test_same_op_count_as_l2r(self):
        """R2L and L2R cost the same multiplications; the difference is
        the dependency structure (squares independent of the accumulator)."""
        ctx = MontgomeryContext(197)
        e = 0b1011001
        _, l2r = montgomery_modexp(ctx, 5, e)
        _, r2l = montgomery_modexp_rtl(ctx, 5, e)
        assert r2l.squares == l2r.squares
        assert r2l.multiplies == l2r.multiplies + 1  # the initial A·S for bit 0...
        # (R2L multiplies once per set bit including the lowest; L2R skips
        # the implicit leading bit instead — net difference of one op.)

    def test_square_chain_independent_of_bits(self):
        """The R2L square sequence is the same for any exponent of equal
        bit length — only the multiply positions differ."""
        ctx = MontgomeryContext(197)
        _, t1 = montgomery_modexp_rtl(ctx, 9, 0b10001)
        _, t2 = montgomery_modexp_rtl(ctx, 9, 0b11111)
        sq1 = [op.x for op in t1.operations if op.kind == "square"]
        sq2 = [op.x for op in t2.operations if op.kind == "square"]
        assert len(sq1) == len(sq2)
        assert sq1 == sq2  # identical square chain (depends on M only)

    def test_exponent_one(self):
        ctx = MontgomeryContext(197)
        result, tr = montgomery_modexp_rtl(ctx, 123, 1)
        assert result == 123
        assert tr.squares == 0
