"""Tests for the Walter bound machinery (paper Section 3, Eq. (2))."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.bounds import (
    iteration_counts,
    minimal_r_exponent,
    output_bound,
    probe_window_stability,
    worst_case_operands,
)

from tests.conftest import odd_modulus


class TestOutputBound:
    def test_eq2_exact(self):
        # T < 4N²/R + N, as an exact fraction.
        assert output_bound(11, 64) == Fraction(4 * 121, 64) + 11

    def test_k4_gives_2n(self):
        # R = 4N ⇒ bound = 2N exactly (the threshold case).
        n = 101
        assert output_bound(n, 4 * n) == 2 * n

    def test_rejects_even(self):
        with pytest.raises(ParameterError):
            output_bound(10, 64)


class TestMinimalR:
    @given(odd_modulus(2, 200))
    def test_search_matches_formula(self, n):
        """The searched minimal r equals the closed form: the smallest
        power of two above 4N."""
        r = minimal_r_exponent(n)
        assert (1 << r) >= 4 * n > (1 << (r - 1))

    @given(odd_modulus(2, 200))
    def test_paper_choice_is_safe_but_maybe_loose(self, n):
        """R = 2^(l+2) always satisfies the bound; it is minimal unless N
        is in the lower half of its bit range."""
        l = n.bit_length()
        assert l + 2 >= minimal_r_exponent(n)


class TestIterationCounts:
    def test_paper_vs_blum_paar(self):
        ours, theirs = iteration_counts(1024)
        assert ours == 1026
        assert theirs == 1027

    def test_positive_required(self):
        with pytest.raises(ParameterError):
            iteration_counts(0)


class TestWindowProbe:
    def test_paper_r_is_closed(self):
        n = 197
        ops = [(x, y) for x in range(0, 2 * n, 37) for y in range(0, 2 * n, 41)]
        ops.append(worst_case_operands(n))
        probe = probe_window_stability(n, n.bit_length() + 2, ops)
        assert probe.closed
        assert probe.max_output < 2 * n

    def test_too_small_r_overflows(self):
        """R = 2^l (k < 4) leaks out of the window for some operands —
        this is exactly why Algorithm 2 runs l+2 iterations, not l.
        Concrete violations found by exhaustive search over small moduli."""
        for n, x, y in [(3, 3, 5), (5, 7, 9), (7, 7, 13)]:
            probe = probe_window_stability(n, n.bit_length(), [(x, y)])
            assert not probe.closed
            assert probe.violations == ((x, y),)
            assert probe.max_output >= 2 * n

    @given(odd_modulus(3, 64), st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_probe_never_false_positive(self, n, sx, sy):
        """With the paper's R the probe can never report a violation."""
        x, y = sx % (2 * n), sy % (2 * n)
        probe = probe_window_stability(n, n.bit_length() + 2, [(x, y)])
        assert probe.closed


class TestWorstCase:
    def test_corner(self):
        assert worst_case_operands(11) == (21, 21)
