"""The shared Montgomery-constant cache (satellite of the serving PR)."""

from __future__ import annotations

from repro.montgomery.params import (
    MontgomeryContext,
    montgomery_cache_clear,
    montgomery_cache_info,
    precompute_montgomery_constants,
)
from repro.observability import MetricsRegistry, observe

N = (1 << 63) + 29  # odd 64-bit


class TestPrecomputeCache:
    def test_returns_equivalent_context(self):
        ctx = precompute_montgomery_constants(N)
        direct = MontgomeryContext(N)
        assert ctx.modulus == direct.modulus
        assert ctx.l == direct.l
        assert ctx.r_mod_n == direct.r_mod_n
        assert ctx.r2_mod_n == direct.r2_mod_n
        assert ctx.n_prime == direct.n_prime

    def test_repeat_calls_hit_the_cache(self):
        montgomery_cache_clear()
        first = precompute_montgomery_constants(N)
        before = montgomery_cache_info().misses
        second = precompute_montgomery_constants(N)
        assert second is first
        assert montgomery_cache_info().misses == before
        assert montgomery_cache_info().hits >= 1

    def test_distinct_width_is_a_distinct_entry(self):
        montgomery_cache_clear()
        narrow = precompute_montgomery_constants(251)
        wide = precompute_montgomery_constants(251, 16)
        assert narrow is not wide
        assert (narrow.l, wide.l) == (251 .bit_length(), 16)
        assert montgomery_cache_info().misses == 2

    def test_miss_and_hit_counters(self):
        montgomery_cache_clear()
        registry = MetricsRegistry()
        with observe(metrics=registry):
            precompute_montgomery_constants(N)
            precompute_montgomery_constants(N)
            precompute_montgomery_constants(N)
        assert registry.counter("montgomery.precompute").total() == 1
        assert registry.counter("montgomery.precompute_cache_hits").total() == 2

    def test_exponentiator_and_rsa_share_the_cache(self):
        import random

        from repro.rsa.cipher import RSACipher
        from repro.rsa.keygen import generate_keypair
        from repro.systolic.exponentiator import ModularExponentiator

        montgomery_cache_clear()
        exp = ModularExponentiator.for_modulus(N)
        assert exp.ctx is precompute_montgomery_constants(N)

        key = generate_keypair(64, random.Random(7))
        RSACipher(key)  # builds contexts for N, p and q
        # A later consumer of the same moduli pays nothing.
        before = montgomery_cache_info().misses
        for modulus in (key.modulus, key.p, key.q):
            precompute_montgomery_constants(modulus)
        assert montgomery_cache_info().misses == before
