"""Tests for GF(2^m) Montgomery arithmetic (the dual-field extension)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.gf2 import (
    AES_POLY,
    NIST_B163_POLY,
    GF2MontgomeryContext,
    clmul,
    dual_field_cell_costs,
    gf2_modexp,
    is_irreducible,
    poly_divmod,
    poly_gcd,
    poly_inverse,
    poly_mod,
)


class TestPolynomialArithmetic:
    def test_clmul_known(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2)
        assert clmul(0b11, 0b11) == 0b101
        assert clmul(0b10, 0b110) == 0b1100

    @given(st.integers(0, 1 << 64), st.integers(0, 1 << 64))
    @settings(max_examples=100)
    def test_clmul_commutative(self, a, b):
        assert clmul(a, b) == clmul(b, a)

    @given(st.integers(0, 1 << 48), st.integers(0, 1 << 48), st.integers(0, 1 << 48))
    @settings(max_examples=100)
    def test_clmul_distributive(self, a, b, c):
        assert clmul(a, b ^ c) == clmul(a, b) ^ clmul(a, c)

    @given(st.integers(0, 1 << 64), st.integers(1, 1 << 32))
    @settings(max_examples=150)
    def test_divmod_invariant(self, a, b):
        q, r = poly_divmod(a, b)
        assert clmul(q, b) ^ r == a
        assert r.bit_length() < b.bit_length()

    def test_div_by_zero(self):
        with pytest.raises(ParameterError):
            poly_divmod(5, 0)

    def test_gcd(self):
        # gcd((x+1)^2, (x+1)x) = x+1
        assert poly_gcd(0b101, clmul(0b11, 0b10)) == 0b11

    def test_inverse(self):
        f = AES_POLY
        for a in (1, 2, 0x53, 0xCA):
            inv = poly_inverse(a, f)
            assert poly_mod(clmul(a, inv), f) == 1

    def test_inverse_of_zero(self):
        with pytest.raises(ParameterError):
            poly_inverse(0, AES_POLY)


class TestIrreducibility:
    IRREDUCIBLE = [0b10, 0b11, 0b111, 0b1011, 0b10011, AES_POLY, NIST_B163_POLY]
    REDUCIBLE = [0b101, 0b110, 0b1001, 0b1111, 0x11C]

    @pytest.mark.parametrize("f", IRREDUCIBLE)
    def test_known_irreducible(self, f):
        assert is_irreducible(f)

    @pytest.mark.parametrize("f", REDUCIBLE)
    def test_known_reducible(self, f):
        assert not is_irreducible(f)

    def test_count_of_degree_4(self):
        """There are exactly 3 irreducible degree-4 polynomials over GF(2)."""
        count = sum(is_irreducible((1 << 4) | t) for t in range(16))
        assert count == 3


class TestGF2Montgomery:
    def test_aes_test_vectors(self):
        """FIPS-197: {57}·{83} = {c1}, {57}·{13} = {fe}."""
        ctx = GF2MontgomeryContext(AES_POLY)
        assert ctx.field_multiply(0x57, 0x83) == 0xC1
        assert ctx.field_multiply(0x57, 0x13) == 0xFE

    def test_montgomery_postcondition(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        rng = random.Random(5)
        for _ in range(50):
            a, b = rng.getrandbits(8), rng.getrandbits(8)
            t = ctx.multiply(a, b)
            assert t == poly_mod(clmul(clmul(a, b), ctx.r_inverse), AES_POLY)
            assert t.bit_length() <= ctx.m, "no window problem in GF(2^m)"

    def test_domain_roundtrip(self):
        ctx = GF2MontgomeryContext(NIST_B163_POLY)
        rng = random.Random(7)
        for _ in range(10):
            a = rng.getrandbits(163)
            assert ctx.from_montgomery(ctx.to_montgomery(a)) == a

    def test_field_inverse(self):
        ctx = GF2MontgomeryContext(NIST_B163_POLY)
        a = random.Random(9).getrandbits(163) | 1
        assert ctx.field_multiply(a, ctx.field_inverse(a)) == 1

    def test_fermat_exponentiation(self):
        """a^(2^m - 1) = 1 for nonzero a — the group order."""
        ctx = GF2MontgomeryContext(0b10011)  # GF(2^4)
        for a in range(1, 16):
            assert gf2_modexp(ctx, a, 15) == 1
        assert gf2_modexp(ctx, 5, 0) == 1

    def test_rejects_reducible(self):
        with pytest.raises(ParameterError):
            GF2MontgomeryContext(0b101)

    def test_trusted_skips_check(self):
        GF2MontgomeryContext(0b101, trusted=True)

    def test_element_degree_checked(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        with pytest.raises(ParameterError):
            ctx.multiply(0x100, 1)


class TestDualFieldCosts:
    def test_gf2_cell_is_much_smaller(self):
        costs = dual_field_cell_costs()
        assert costs["GF(2^m)"].total_gates < costs["GF(p)"].total_gates / 2

    def test_dual_field_overhead_is_one_gate(self):
        costs = dual_field_cell_costs()
        assert costs["dual-field"].total_gates == costs["GF(p)"].total_gates + 1
