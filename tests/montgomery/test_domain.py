"""Tests for the MontgomeryDomain wrapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.domain import MontgomeryDomain
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestConversions:
    @given(odd_modulus(2, 64), st.integers(0, 1 << 128))
    @settings(max_examples=150)
    def test_enter_leave_roundtrip(self, n, raw):
        dom = MontgomeryDomain(n)
        v = raw % n
        assert dom.leave(dom.enter(v)) == v

    def test_enter_rejects_unreduced(self):
        dom = MontgomeryDomain(11)
        with pytest.raises(ParameterError):
            dom.enter(11)

    def test_accepts_prebuilt_context(self):
        ctx = MontgomeryContext(197)
        dom = MontgomeryDomain(ctx)
        assert dom.ctx is ctx


class TestArithmetic:
    @given(odd_modulus(2, 64), st.integers(0, 1 << 64), st.integers(0, 1 << 64))
    @settings(max_examples=150)
    def test_mul_matches_integers(self, n, a_raw, b_raw):
        dom = MontgomeryDomain(n)
        a, b = a_raw % n, b_raw % n
        assert dom.leave(dom.mul(dom.enter(a), dom.enter(b))) == (a * b) % n

    @given(odd_modulus(2, 64), st.integers(0, 1 << 64), st.integers(0, 1 << 64))
    @settings(max_examples=100)
    def test_add_sub(self, n, a_raw, b_raw):
        dom = MontgomeryDomain(n)
        a, b = a_raw % n, b_raw % n
        da, db = dom.enter(a), dom.enter(b)
        assert dom.leave(dom.add(da, db)) == (a + b) % n
        assert dom.leave(dom.sub(da, db)) == (a - b) % n

    def test_square(self):
        dom = MontgomeryDomain(197)
        assert dom.leave(dom.square(dom.enter(14))) == (14 * 14) % 197

    @given(odd_modulus(2, 48), st.integers(0, 1 << 48), st.integers(0, 4096))
    @settings(max_examples=100)
    def test_exp(self, n, base_raw, e):
        dom = MontgomeryDomain(n)
        base = base_raw % n
        assert dom.leave(dom.exp(dom.enter(base), e)) == pow(base, e, n)

    def test_exp_zero_is_one(self):
        dom = MontgomeryDomain(197)
        assert dom.leave(dom.exp(dom.enter(5), 0)) == 1

    def test_inverse_prime_modulus(self):
        dom = MontgomeryDomain(197)
        for v in (1, 2, 99, 196):
            inv = dom.inverse(dom.enter(v))
            assert dom.leave(dom.mul(dom.enter(v), inv)) == 1

    def test_inverse_non_invertible(self):
        dom = MontgomeryDomain(15)
        with pytest.raises(ParameterError):
            dom.inverse(dom.enter(5))

    def test_equals_mod_n(self):
        """Domain values are canonical only mod N (window is 2N wide)."""
        dom = MontgomeryDomain(11)
        a = dom.enter(5)
        assert dom.equals(a, a + 11) or dom.equals(a, a)  # representative shift

    def test_mult_count_tracks(self):
        dom = MontgomeryDomain(197)
        before = dom.mult_count
        dom.mul(dom.enter(3), dom.enter(4))
        assert dom.mult_count >= before + 3  # two enters + one mul


class TestEngineSubstitution:
    def test_custom_multiplier_used(self):
        """The multiplier hook lets hardware models slot underneath."""
        calls = []

        def spy(ctx, x, y):
            calls.append((x, y))
            from repro.montgomery.algorithms import montgomery_no_subtraction

            return montgomery_no_subtraction(ctx, x, y)

        dom = MontgomeryDomain(197, multiplier=spy)
        dom.mul(dom.enter(3), dom.enter(4))
        assert calls
