"""Unit + property tests for Algorithms 1 and 2."""

import pytest
from hypothesis import given, settings

from repro.errors import ParameterError
from repro.montgomery.algorithms import (
    montgomery_no_subtraction,
    montgomery_reduce,
    montgomery_trace,
    montgomery_with_subtraction,
)
from repro.montgomery.params import MontgomeryContext

from tests.conftest import context_and_operands, odd_modulus


class TestAlgorithm2:
    """montgomery_no_subtraction — the paper's core algorithm."""

    def test_known_value(self):
        ctx = MontgomeryContext(11)  # l=4, R=2^6=64
        # Mont(3, 5) = 3*5*64^-1 mod 11; 64^-1 mod 11: 64 ≡ 9, 9*5=45≡1 → 5.
        assert montgomery_no_subtraction(ctx, 3, 5) % 11 == (3 * 5 * 5) % 11

    def test_zero_operand(self):
        ctx = MontgomeryContext(11)
        assert montgomery_no_subtraction(ctx, 0, 17) == 0
        assert montgomery_no_subtraction(ctx, 17, 0) == 0

    def test_rejects_out_of_window(self):
        ctx = MontgomeryContext(11)
        with pytest.raises(ParameterError):
            montgomery_no_subtraction(ctx, 22, 1)
        with pytest.raises(ParameterError):
            montgomery_no_subtraction(ctx, 1, -1)

    def test_rejects_word_base(self):
        ctx = MontgomeryContext(11, word_bits=4)
        with pytest.raises(ParameterError):
            montgomery_no_subtraction(ctx, 1, 1)

    @given(context_and_operands())
    @settings(max_examples=300)
    def test_congruence_and_window(self, cxy):
        """The two defining properties: T ≡ xyR^-1 (mod N) and T < 2N."""
        ctx, x, y = cxy
        t = montgomery_no_subtraction(ctx, x, y)
        n = ctx.modulus
        assert 0 <= t < 2 * n
        assert t % n == (x * y * ctx.r_inverse) % n

    @given(context_and_operands())
    @settings(max_examples=150)
    def test_closure_feeds_back(self, cxy):
        """Outputs are valid inputs: the whole point of the bound."""
        ctx, x, y = cxy
        t1 = montgomery_no_subtraction(ctx, x, y)
        t2 = montgomery_no_subtraction(ctx, t1, t1)  # no reduction between
        assert 0 <= t2 < 2 * ctx.modulus

    def test_worst_case_corner(self):
        """x = y = 2N-1, the corner of the operand window."""
        for n in (3, 11, 197, (1 << 31) - 1):
            ctx = MontgomeryContext(n)
            t = montgomery_no_subtraction(ctx, 2 * n - 1, 2 * n - 1)
            assert t < 2 * n


class TestAlgorithm1:
    """montgomery_with_subtraction — the classical form."""

    @given(context_and_operands())
    @settings(max_examples=200)
    def test_classical_postcondition(self, cxy):
        ctx, x, y = cxy
        n = ctx.modulus
        x, y = x % n, y % n
        t = montgomery_with_subtraction(ctx, x, y)
        l_digits = -(-ctx.l // ctx.word_bits)
        r1 = (1 << ctx.word_bits) ** l_digits
        assert 0 <= t < n
        assert t == (x * y * pow(r1, -1, n)) % n

    def test_word_base_variants_agree_mod_n(self):
        n = 0xF1FB  # odd
        x, y = 1234, 56789 % n
        for alpha in (1, 2, 4, 8):
            ctx = MontgomeryContext(n, word_bits=alpha)
            t = montgomery_with_subtraction(ctx, x, y)
            l_digits = -(-ctx.l // alpha)
            r1 = (1 << alpha) ** l_digits
            assert t == (x * y * pow(r1, -1, n)) % n

    def test_rejects_unreduced_input(self):
        ctx = MontgomeryContext(11)
        with pytest.raises(ParameterError):
            montgomery_with_subtraction(ctx, 11, 1)


class TestTrace:
    def test_trace_matches_result(self):
        ctx = MontgomeryContext(197)
        t, steps = montgomery_trace(ctx, 300, 150)
        assert t == montgomery_no_subtraction(ctx, 300, 150)
        assert len(steps) == ctx.iterations
        assert steps[-1].t_after == t

    def test_trace_x_digits(self):
        ctx = MontgomeryContext(197)
        x = 0b1011001
        _, steps = montgomery_trace(ctx, x, 5)
        assert [s.x_digit for s in steps] == [(x >> i) & 1 for i in range(ctx.iterations)]

    @given(context_and_operands(2, 48))
    @settings(max_examples=100)
    def test_step_recurrence(self, cxy):
        """Each step obeys T_i = (T_{i-1} + x_i y + m_i N) / 2 exactly."""
        ctx, x, y = cxy
        _, steps = montgomery_trace(ctx, x, y)
        prev = 0
        for s in steps:
            total = prev + s.x_digit * y + s.m_digit * ctx.modulus
            assert total % 2 == 0, "m_i must make the sum even"
            assert s.t_after == total // 2
            prev = s.t_after


class TestMontgomeryReduce:
    @given(context_and_operands())
    @settings(max_examples=150)
    def test_reduce_leaves_domain(self, cxy):
        """Mont(T, 1) lands in [0, N) and strips the R factor."""
        ctx, x, _ = cxy
        reduced = montgomery_reduce(ctx, x)
        assert 0 <= reduced < ctx.modulus
        assert reduced == (x * ctx.r_inverse) % ctx.modulus

    def test_paper_bound_mont_t_1_le_n(self):
        """Section 3: Mont(T, 1) <= N for T < 2N (never raises)."""
        for n in (3, 11, 197, 65535 + 2):
            ctx = MontgomeryContext(n)
            for t in (0, 1, n - 1, n, 2 * n - 1):
                montgomery_reduce(ctx, t)
