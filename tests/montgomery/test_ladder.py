"""Tests for the Montgomery powering ladder (SPA-hardened exponentiation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.exponent import montgomery_modexp, montgomery_powering_ladder
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestCorrectness:
    @given(odd_modulus(2, 96), st.integers(0, 1 << 128), st.integers(1, 1 << 20))
    @settings(max_examples=150)
    def test_matches_pow(self, n, m_raw, e):
        ctx = MontgomeryContext(n)
        m = m_raw % n
        result, _ = montgomery_powering_ladder(ctx, m, e)
        assert result == pow(m, e, n)

    def test_agrees_with_square_multiply(self):
        ctx = MontgomeryContext(197)
        for e in (1, 2, 7, 0xBEEF):
            r1, _ = montgomery_modexp(ctx, 55, e)
            r2, _ = montgomery_powering_ladder(ctx, 55, e)
            assert r1 == r2


class TestRegularity:
    def test_fixed_rhythm(self):
        """Exactly two ops per exponent bit, kinds independent of values."""
        ctx = MontgomeryContext(197)
        for e in (0b10000, 0b11111, 0b10101):
            _, tr = montgomery_powering_ladder(ctx, 5, e)
            kinds = [op.kind for op in tr.operations]
            assert kinds[0] == "pre" and kinds[-1] == "post"
            loop = kinds[1:-1]
            assert len(loop) == 2 * e.bit_length()
            assert loop[::2] == ["ladder-mul"] * e.bit_length()
            assert loop[1::2] == ["ladder-sq"] * e.bit_length()

    def test_op_count_leaks_only_bit_length(self):
        """Two exponents of equal bit length produce identical op-kind
        sequences (the SPA-hardening property); square-and-multiply does
        not."""
        ctx = MontgomeryContext(197)
        _, t1 = montgomery_powering_ladder(ctx, 5, 0b10001)
        _, t2 = montgomery_powering_ladder(ctx, 5, 0b11111)
        assert [o.kind for o in t1.operations] == [o.kind for o in t2.operations]
        _, s1 = montgomery_modexp(ctx, 5, 0b10001)
        _, s2 = montgomery_modexp(ctx, 5, 0b11111)
        assert [o.kind for o in s1.operations] != [o.kind for o in s2.operations]

    def test_cost_overhead(self):
        """~2 ops/bit vs ~1.5 for balanced square-and-multiply."""
        ctx = MontgomeryContext((1 << 63) | 13)
        e = 0x5555555555555555
        _, lad = montgomery_powering_ladder(ctx, 7, e)
        _, sqm = montgomery_modexp(ctx, 7, e)
        assert lad.total_multiplications > sqm.total_multiplications
        ratio = lad.total_multiplications / sqm.total_multiplications
        assert 1.2 <= ratio <= 1.45


class TestValidation:
    def test_bad_inputs(self):
        ctx = MontgomeryContext(11)
        with pytest.raises(ParameterError):
            montgomery_powering_ladder(ctx, 11, 3)
        with pytest.raises(ParameterError):
            montgomery_powering_ladder(ctx, 3, 0)
