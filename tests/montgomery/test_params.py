"""Unit tests for MontgomeryContext (paper parameter choices)."""

import pytest
from hypothesis import given

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestConstruction:
    def test_rejects_even(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(10)

    def test_rejects_one(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(1)

    def test_rejects_l_too_small(self):
        with pytest.raises(ParameterError):
            MontgomeryContext(0b10101, l=3)

    def test_default_l_is_bit_length(self):
        assert MontgomeryContext(0b1011).l == 4

    def test_wider_l_allowed(self):
        ctx = MontgomeryContext(0b1011, l=8)
        assert ctx.l == 8
        assert ctx.r_exponent == 10


class TestPaperParameters:
    """The paper's specific choices: R = 2^(l+2), N' = 1 for radix 2."""

    def test_r_exponent_is_l_plus_2(self):
        ctx = MontgomeryContext(0xC5)  # 197, l = 8
        assert ctx.r_exponent == 10
        assert ctx.R == 1 << 10

    def test_n_prime_is_one_for_radix2(self):
        # Section 3: n_0 = 1 for odd N implies N' = 1 — this is why the
        # rightmost cell needs no multiplier.
        for n in (3, 197, 65537 * 3):
            assert MontgomeryContext(n).n_prime == 1

    def test_iterations_l_plus_2(self):
        assert MontgomeryContext(0xC5).iterations == 10

    @given(odd_modulus(2, 128))
    def test_walter_bound_always_satisfied(self, n):
        ctx = MontgomeryContext(n)
        assert ctx.satisfies_walter_bound()
        assert ctx.R > 4 * n

    @given(odd_modulus(2, 128))
    def test_r_is_minimal_power_of_two_granularity(self, n):
        # R/2 = 2^(l+1) <= 4N (since N >= 2^(l-1)), so l+2 is the least
        # exponent giving R > 4N for every modulus of this bit length.
        ctx = MontgomeryContext(n)
        assert (ctx.R >> 1) <= 4 * n or n.bit_length() < ctx.l


class TestDerivedConstants:
    def test_r2_mod_n(self):
        ctx = MontgomeryContext(197)
        assert ctx.r2_mod_n == (ctx.R * ctx.R) % 197

    def test_r_inverse(self):
        ctx = MontgomeryContext(197)
        assert (ctx.R * ctx.r_inverse) % 197 == 1

    def test_montgomery_representation_roundtrip(self):
        ctx = MontgomeryContext(197)
        for v in range(0, 197, 13):
            assert ctx.from_montgomery(ctx.to_montgomery(v)) == v

    def test_operand_bound(self):
        assert MontgomeryContext(11).operand_bound == 22

    def test_check_operand(self):
        ctx = MontgomeryContext(11)
        ctx.check_operand("x", 21)
        with pytest.raises(ParameterError):
            ctx.check_operand("x", 22)
        with pytest.raises(ParameterError):
            ctx.check_operand("x", -1)


class TestWordBase:
    def test_radix_16_params(self):
        ctx = MontgomeryContext(197, word_bits=4)
        assert ctx.r_exponent % 4 == 0
        assert ctx.R > 4 * 197
        assert (ctx.modulus * -ctx.n_prime) % 16 == (-1) % 16 or ctx.n_prime == (
            -pow(197, -1, 16)
        ) % 16

    def test_n_prime_property(self):
        # N * N' = -1 mod 2^alpha.
        for alpha in (1, 2, 4, 8, 16):
            ctx = MontgomeryContext(197, word_bits=alpha)
            assert (197 * ctx.n_prime) % (1 << alpha) == ((1 << alpha) - 1) % (
                1 << alpha
            )
