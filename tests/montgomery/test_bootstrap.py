"""Tests for the R² mod N hardware bootstrap."""

import pytest
from hypothesis import given, settings

from repro.errors import ParameterError
from repro.montgomery.bootstrap import bootstrap_plan, compute_r2, r_mod_n_by_shifts
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestShifts:
    @given(odd_modulus(2, 128))
    @settings(max_examples=100)
    def test_r_mod_n(self, n):
        ctx = MontgomeryContext(n)
        assert r_mod_n_by_shifts(n, ctx.r_exponent) == ctx.R % n

    def test_zero_exponent(self):
        assert r_mod_n_by_shifts(7, 0) == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            r_mod_n_by_shifts(8, 4)
        with pytest.raises(ParameterError):
            r_mod_n_by_shifts(7, -1)


class TestPlan:
    def test_plan_reaches_exponent(self):
        for r in (1, 2, 3, 10, 100, 1026):
            d = 0
            for step in bootstrap_plan(r):
                d = 2 * d if step == "square" else d + 1
            assert d == r

    def test_plan_is_logarithmic(self):
        assert len(bootstrap_plan(1026)) <= 2 * 1026 .bit_length()

    def test_validation(self):
        with pytest.raises(ParameterError):
            bootstrap_plan(0)


class TestComputeR2:
    @given(odd_modulus(2, 200))
    @settings(max_examples=120)
    def test_matches_direct_constant(self, n):
        ctx = MontgomeryContext(n)
        r2, passes = compute_r2(ctx)
        assert r2 == ctx.r2_mod_n
        assert passes <= 2 * ctx.r_exponent.bit_length()

    def test_through_hardware_model(self):
        """The bootstrap runs on the cycle-accurate MMMC unchanged."""
        from repro.systolic.mmmc import MMMC

        ctx = MontgomeryContext(197)
        mmmc = MMMC(ctx.l)

        def hw_mont(c, x, y):
            return mmmc.multiply(x, y, c.modulus).result

        r2, passes = compute_r2(ctx, mont=hw_mont)
        assert r2 == ctx.r2_mod_n
        assert mmmc.multiplications == passes

    def test_pass_count_rsa_size(self):
        """l = 1024: the whole bootstrap is ~10 multiplier passes."""
        ctx = MontgomeryContext((1 << 1023) | 5)
        _, passes = compute_r2(ctx)
        assert passes <= 12
