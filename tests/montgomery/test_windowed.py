"""Tests for windowed exponentiation schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext
from repro.montgomery.windowed import (
    binary_schedule,
    execute_schedule,
    mary_schedule,
    optimal_window,
    sliding_window_schedule,
    windowed_modexp,
)

from tests.conftest import odd_modulus


class TestSchedules:
    def test_binary_matches_algorithm3_counts(self):
        e = 0b1011001
        s = binary_schedule(e)
        assert s.squares == e.bit_length() - 1
        assert s.mults == bin(e).count("1") - 1
        assert s.precomputation_mults == 0

    def test_mary_window1_is_binary(self):
        e = 0xBEEF
        assert mary_schedule(e, 1).ops == binary_schedule(e).ops

    def test_sliding_reduces_mults(self):
        e = (1 << 128) - 1  # dense
        b = binary_schedule(e)
        s = sliding_window_schedule(e, 4)
        assert s.total_multiplications < b.total_multiplications

    def test_sliding_table_is_odd_only(self):
        s = sliding_window_schedule(0xABCDEF, 4)
        assert s.table_odd_only
        for op in s.ops:
            if op.kind == "mult":
                assert op.index % 2 == 1

    def test_mary_digit_indices_in_range(self):
        w = 3
        s = mary_schedule(0xDEAD, w)
        for op in s.ops:
            if op.kind == "mult":
                assert 1 <= op.index < (1 << w)

    def test_validation(self):
        with pytest.raises(ParameterError):
            binary_schedule(0)
        with pytest.raises(ParameterError):
            mary_schedule(5, 0)


class TestExecution:
    @given(
        odd_modulus(2, 64),
        st.integers(0, 1 << 64),
        st.integers(1, 1 << 32),
        st.integers(1, 5),
    )
    @settings(max_examples=120)
    def test_all_methods_match_pow(self, n, m_raw, e, w):
        ctx = MontgomeryContext(n)
        m = m_raw % n
        ref = pow(m, e, n)
        for maker in (mary_schedule, sliding_window_schedule):
            assert execute_schedule(ctx, maker(e, w), m) == ref

    def test_windowed_modexp_methods(self):
        for method in ("binary", "mary", "sliding"):
            assert windowed_modexp(197, 55, 123, window=3, method=method) == pow(
                55, 123, 197
            )

    def test_unknown_method(self):
        with pytest.raises(ParameterError):
            windowed_modexp(197, 5, 3, method="montgomery-ladder")

    def test_exponent_one(self):
        ctx = MontgomeryContext(197)
        assert execute_schedule(ctx, sliding_window_schedule(1, 4), 55) == 55

    def test_power_of_two_exponent(self):
        """All-zero tail: pure squarings after the leading window."""
        ctx = MontgomeryContext(197)
        e = 1 << 20
        s = sliding_window_schedule(e, 4)
        assert s.mults == 0
        assert execute_schedule(ctx, s, 7) == pow(7, e, 197)


class TestOptimalWindow:
    def test_grows_with_exponent_size(self):
        ws = [optimal_window(bits) for bits in (16, 64, 256, 1024, 4096)]
        assert ws == sorted(ws)
        assert ws[0] >= 1 and ws[-1] <= 10

    def test_cost_model_consistent_with_actual(self):
        """The predicted-optimal window is no worse than +5% of the best
        actual window for a random dense exponent."""
        import random

        e = random.Random(3).getrandbits(512) | (1 << 511) | 1
        costs = {
            w: sliding_window_schedule(e, w).total_multiplications
            for w in range(1, 8)
        }
        best = min(costs.values())
        predicted = costs[optimal_window(512)]
        assert predicted <= best * 1.05
