"""Property-based tests of the GF(2^m) field laws (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montgomery.gf2 import (
    AES_POLY,
    GF2MontgomeryContext,
    clmul,
    poly_mod,
)

CTX = GF2MontgomeryContext(AES_POLY)
elements = st.integers(0, (1 << CTX.m) - 1)


def fmul(a: int, b: int) -> int:
    return CTX.field_multiply(a, b)


class TestFieldAxioms:
    @given(elements, elements)
    @settings(max_examples=150)
    def test_commutativity(self, a, b):
        assert fmul(a, b) == fmul(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=100)
    def test_associativity(self, a, b, c):
        assert fmul(fmul(a, b), c) == fmul(a, fmul(b, c))

    @given(elements, elements, elements)
    @settings(max_examples=100)
    def test_distributivity_over_xor(self, a, b, c):
        assert fmul(a, b ^ c) == fmul(a, b) ^ fmul(a, c)

    @given(elements)
    @settings(max_examples=60)
    def test_multiplicative_identity(self, a):
        assert fmul(a, 1) == a

    @given(elements)
    @settings(max_examples=60)
    def test_zero_annihilates(self, a):
        assert fmul(a, 0) == 0

    @given(elements.filter(lambda a: a != 0))
    @settings(max_examples=80)
    def test_inverses(self, a):
        assert fmul(a, CTX.field_inverse(a)) == 1

    @given(elements)
    @settings(max_examples=80)
    def test_frobenius_is_additive(self, a):
        """x → x² is a field homomorphism in characteristic 2 — the fact
        τNAF scalar multiplication exploits."""
        b = 0x5B
        lhs = fmul(a ^ b, a ^ b)
        rhs = fmul(a, a) ^ fmul(b, b)
        assert lhs == rhs


class TestMontgomeryRepresentation:
    @given(elements, elements)
    @settings(max_examples=120)
    def test_domain_product_congruence(self, a, b):
        t = CTX.multiply(a, b)
        assert t == poly_mod(clmul(clmul(a, b), CTX.r_inverse), CTX.modulus)

    @given(elements)
    @settings(max_examples=80)
    def test_enter_leave_roundtrip(self, a):
        assert CTX.from_montgomery(CTX.to_montgomery(a)) == a

    @given(elements, elements)
    @settings(max_examples=80)
    def test_no_window_growth(self, a, b):
        """Unlike GF(p), outputs never exceed the field degree."""
        assert CTX.multiply(a, b).bit_length() <= CTX.m
