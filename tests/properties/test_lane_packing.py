"""Property tests of the bit-sliced lane packing (hypothesis).

``pack_lanes`` transposes K little-endian bus values into per-wire lane
words (lane k in bit position k); ``unpack_lanes`` is its inverse.  The
compiled engine's K-lane correctness reduces to this transpose being
exact, so it gets the exhaustive treatment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import SimulationError
from repro.hdl.compiled import pack_lanes, unpack_lanes


@st.composite
def lane_batches(draw):
    width = draw(st.integers(1, 96))
    lanes = draw(st.integers(1, 70))
    values = draw(
        st.lists(
            st.integers(0, (1 << width) - 1), min_size=lanes, max_size=lanes
        )
    )
    return width, values


class TestRoundTrip:
    @given(lane_batches())
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_is_identity(self, batch):
        width, values = batch
        words = pack_lanes(values, width)
        assert len(words) == width
        assert unpack_lanes(words, len(values)) == values

    @given(lane_batches())
    @settings(max_examples=50, deadline=None)
    def test_words_fit_the_lane_count(self, batch):
        width, values = batch
        for word in pack_lanes(values, width):
            assert 0 <= word < (1 << len(values))

    @given(lane_batches(), st.integers(0, 69), st.integers(0, 95))
    @settings(max_examples=100, deadline=None)
    def test_single_bit_addressing(self, batch, lane, bit):
        """Bit ``i`` of lane ``k``'s value lands in word i, position k."""
        width, values = batch
        lane %= len(values)
        bit %= width
        words = pack_lanes(values, width)
        assert (words[bit] >> lane) & 1 == (values[lane] >> bit) & 1


class TestBounds:
    def test_oversized_value_raises(self):
        with pytest.raises(SimulationError, match="does not fit"):
            pack_lanes([0b100], width=2)

    def test_negative_value_raises(self):
        with pytest.raises(SimulationError):
            pack_lanes([-1], width=4)

    def test_empty_batch(self):
        assert pack_lanes([], width=3) == [0, 0, 0]
        assert unpack_lanes([0, 0, 0], lanes=0) == []
