"""Property-based tests of the hardware models (hypothesis).

The central claim: three independently-written models of the multiplier —
big-integer Algorithm 2, the vectorized RTL machine, and the gate-level
netlist — are extensionally equal, and the corrected architecture is total
on the full operand window.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.array_netlist import GateLevelArray
from repro.systolic.mmmc import MMMC


def _triple(bits, body, fx, fy):
    top = 1 << (bits - 1)
    n = top | ((body % max(top >> 1, 1)) << 1) | 1
    return n, fx % (2 * n), fy % (2 * n)


triples = st.builds(
    _triple,
    bits=st.integers(2, 16),
    body=st.integers(min_value=0),
    fx=st.integers(min_value=0),
    fy=st.integers(min_value=0),
)


class TestRTLTotalCorrectness:
    @given(triples)
    @settings(max_examples=100, deadline=None)
    def test_rtl_equals_golden(self, nxy):
        n, x, y = nxy
        ctx = MontgomeryContext(n)
        rtl = SystolicArrayRTL(n.bit_length())
        assert rtl.run_multiplication(x, y, n).value == montgomery_no_subtraction(
            ctx, x, y
        )

    @given(triples)
    @settings(max_examples=60, deadline=None)
    def test_latency_never_depends_on_data(self, nxy):
        """Constant-time property: cycle count is a function of l only."""
        n, x, y = nxy
        l = n.bit_length()
        res = SystolicArrayRTL(l).run_multiplication(x, y, n)
        assert res.total_cycles == 3 * l + 5

    @given(triples)
    @settings(max_examples=40, deadline=None)
    def test_mmmc_equals_golden(self, nxy):
        n, x, y = nxy
        ctx = MontgomeryContext(n)
        run = MMMC(n.bit_length()).multiply(x, y, n)
        assert run.result == montgomery_no_subtraction(ctx, x, y)


class TestGateLevelEquality:
    @given(
        st.integers(2, 7),
        st.integers(min_value=0),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
    @settings(max_examples=40, deadline=None)
    def test_gate_equals_golden_corrected(self, bits, body, fx, fy):
        n, x, y = _triple(bits, body, fx, fy)
        ctx = MontgomeryContext(n)
        arr = GateLevelArray(n.bit_length(), "corrected")
        assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
            ctx, x, y
        )


class TestShadowLatticeIsolation:
    @given(triples, st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_extra_preroll_cycles_harmless(self, nxy, extra):
        """Clocking the array in a polluted state, then loading, must give
        the same answer: load fully isolates runs (the MMMC reuse case)."""
        n, x, y = nxy
        l = n.bit_length()
        ctx = MontgomeryContext(n)
        arr = SystolicArrayRTL(l)
        # Pollute with a first multiplication + extra clocks.
        arr.run_multiplication(y, x, n)
        for _ in range(extra):
            arr.step()
        assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
            ctx, x, y
        )
