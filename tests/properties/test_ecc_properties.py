"""Property-based tests of the ECC layer (hypothesis, toy curve)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.curves import TOY_CURVE
from repro.ecc.point import AffinePoint
from repro.ecc.scalarmul import (
    montgomery_ladder,
    naf_scalar_multiply,
    non_adjacent_form,
    scalar_multiply,
)

G = AffinePoint.generator(TOY_CURVE)
scalars = st.integers(0, 500)


def _xy(p: AffinePoint):
    return None if p.is_infinity else (p.x, p.y)


class TestScalarMultiplicationProperties:
    @given(scalars)
    @settings(max_examples=60, deadline=None)
    def test_ladders_agree(self, k):
        a = scalar_multiply(G, k).point
        b = montgomery_ladder(G, k).point
        c = naf_scalar_multiply(G, k).point
        assert _xy(a) == _xy(b) == _xy(c)

    @given(scalars)
    @settings(max_examples=60, deadline=None)
    def test_order_periodicity(self, k):
        """[k]G == [k mod ord(G)]G."""
        a = scalar_multiply(G, k).point
        b = scalar_multiply(G, k % TOY_CURVE.order).point
        assert _xy(a) == _xy(b)

    @given(scalars, scalars)
    @settings(max_examples=50, deadline=None)
    def test_distributivity(self, j, k):
        """[j+k]G == [j]G + [k]G."""
        lhs = scalar_multiply(G, j + k).point
        rhs = (
            scalar_multiply(G, j).point.to_jacobian()
            + scalar_multiply(G, k).point.to_jacobian()
        ).to_affine()
        assert _xy(lhs) == _xy(rhs)

    @given(scalars)
    @settings(max_examples=40, deadline=None)
    def test_results_on_curve(self, k):
        p = scalar_multiply(G, k).point
        if not p.is_infinity:
            assert TOY_CURVE.contains(p.x, p.y)


class TestNAFProperties:
    @given(st.integers(0, 1 << 64), st.integers(2, 6))
    @settings(max_examples=150)
    def test_reconstruction(self, k, w):
        digits = non_adjacent_form(k, w)
        assert sum(d << i for i, d in enumerate(digits)) == k

    @given(st.integers(0, 1 << 64), st.integers(2, 6))
    @settings(max_examples=150)
    def test_digit_bounds(self, k, w):
        for d in non_adjacent_form(k, w):
            assert d == 0 or (d % 2 == 1 and abs(d) < (1 << (w - 1)))

    @given(st.integers(0, 1 << 64))
    @settings(max_examples=100)
    def test_width2_no_adjacent_nonzeros(self, k):
        digits = non_adjacent_form(k, 2)
        for a, b in zip(digits, digits[1:]):
            assert not (a != 0 and b != 0)
