"""Property tests pinning the result verifier's false-negative rate to 0.

The verifier's comparison against the extended-modulus recompute is
exact, so *any* wrong value — bit flip, arithmetic slip, off-by-N — must
be rejected, for every request and every corruption.  Hypothesis states
that universally; a single silent acceptance of a wrong value fails the
suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.errors import FaultDetected
from repro.robustness.verify import ResultVerifier, VerifyPolicy
from tests.conftest import odd_modulus


class _Req:
    """Duck-typed stand-in for ModExpRequest (verify only reads these)."""

    def __init__(self, base, exponent, modulus, request_id):
        self.base = base
        self.exponent = exponent
        self.modulus = modulus
        self.request_id = request_id


def verifier(seed=0):
    return ResultVerifier(VerifyPolicy(mode="full", seed=seed))


@st.composite
def request_and_truth(draw):
    n = draw(odd_modulus(min_bits=4, max_bits=96))
    base = draw(st.integers(min_value=0, max_value=n - 1))
    exponent = draw(st.integers(min_value=1, max_value=1 << 20))
    rid = f"p{draw(st.integers(min_value=0, max_value=10_000))}"
    return _Req(base, exponent, n, rid), pow(base, exponent, n)


class TestZeroFalseNegatives:
    @given(request_and_truth(), st.integers(min_value=0, max_value=127))
    @settings(max_examples=300)
    def test_single_bit_flips_never_pass(self, rt, bit):
        """False-negative rate on single-bit corruptions is exactly 0."""
        req, truth = rt
        corrupted = truth ^ (1 << (bit % max(req.modulus.bit_length(), 1)))
        if corrupted == truth:
            return
        with pytest.raises(FaultDetected):
            verifier().check(req, corrupted)

    @given(request_and_truth(), st.integers())
    @settings(max_examples=300)
    def test_arbitrary_wrong_values_never_pass(self, rt, wrong):
        req, truth = rt
        if wrong == truth:
            return
        with pytest.raises(FaultDetected):
            verifier().check(req, wrong)

    @given(request_and_truth(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=200)
    def test_off_by_multiples_of_n_never_pass(self, rt, k):
        """The classic reduction bug: right residue class, wrong value."""
        req, truth = rt
        with pytest.raises(FaultDetected):
            verifier().check(req, truth + k * req.modulus)

    @given(request_and_truth(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=200)
    def test_true_values_always_pass(self, rt, seed):
        """No false positives either, for any witness-prime seed."""
        req, truth = rt
        verifier(seed=seed).check(req, truth)  # must not raise
