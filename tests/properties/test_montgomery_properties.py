"""Property-based tests of the core Montgomery invariants (hypothesis).

These are the load-bearing mathematical facts the whole system rests on;
each is stated as a universally-quantified property over random parameter
sets rather than examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montgomery.algorithms import (
    montgomery_no_subtraction,
    montgomery_reduce,
    montgomery_trace,
    montgomery_with_subtraction,
)
from repro.montgomery.params import MontgomeryContext

from tests.conftest import context_and_operands, odd_modulus


class TestDefiningProperties:
    @given(context_and_operands())
    @settings(max_examples=300)
    def test_output_is_xy_rinv_mod_n(self, cxy):
        ctx, x, y = cxy
        t = montgomery_no_subtraction(ctx, x, y)
        assert (t * ctx.R) % ctx.modulus == (x * y) % ctx.modulus

    @given(context_and_operands())
    @settings(max_examples=300)
    def test_window_invariant(self, cxy):
        """[0, 2N) is closed under Mont — Walter's theorem, instantiated."""
        ctx, x, y = cxy
        assert 0 <= montgomery_no_subtraction(ctx, x, y) < 2 * ctx.modulus

    @given(context_and_operands())
    @settings(max_examples=100)
    def test_commutativity(self, cxy):
        ctx, x, y = cxy
        assert montgomery_no_subtraction(ctx, x, y) == montgomery_no_subtraction(
            ctx, y, x
        )

    @given(context_and_operands())
    @settings(max_examples=100)
    def test_identity_element_is_r(self, cxy):
        """Mont(x, R mod N) ≡ x (mod N): R is the domain's 1."""
        ctx, x, _ = cxy
        t = montgomery_no_subtraction(ctx, x, ctx.r_mod_n % (2 * ctx.modulus))
        assert t % ctx.modulus == x % ctx.modulus

    @given(context_and_operands())
    @settings(max_examples=100)
    def test_zero_annihilates(self, cxy):
        ctx, x, _ = cxy
        assert montgomery_no_subtraction(ctx, x, 0) == 0


class TestChaining:
    @given(context_and_operands(), st.integers(1, 6))
    @settings(max_examples=80)
    def test_window_closed_under_iteration(self, cxy, depth):
        """Feeding outputs back as inputs `depth` times never escapes the
        window and tracks the expected congruence — the exponentiator's
        whole operating principle."""
        ctx, x, y = cxy
        n = ctx.modulus
        t = x
        expected = x % n
        r_inv = ctx.r_inverse
        for _ in range(depth):
            t = montgomery_no_subtraction(ctx, t, y)
            expected = (expected * y * r_inv) % n
            assert 0 <= t < 2 * n
        assert t % n == expected


class TestAlgorithmRelations:
    @given(context_and_operands())
    @settings(max_examples=150)
    def test_alg1_alg2_congruent(self, cxy):
        """Algorithm 1 (R1 = 2^l, reduced output) and Algorithm 2
        (R = 2^(l+2)) differ by exactly a factor 4 in the domain."""
        ctx, x, y = cxy
        n = ctx.modulus
        xr, yr = x % n, y % n
        a1 = montgomery_with_subtraction(ctx, xr, yr)
        a2 = montgomery_no_subtraction(ctx, xr, yr)
        # a1 = xy·2^-l, a2 = xy·2^-(l+2)  =>  a1 ≡ 4·a2 (mod N).
        assert a1 % n == (4 * a2) % n

    @given(context_and_operands())
    @settings(max_examples=100)
    def test_trace_consistent_with_result(self, cxy):
        ctx, x, y = cxy
        t, steps = montgomery_trace(ctx, x, y)
        assert steps[-1].t_after == t
        assert len(steps) == ctx.l + 2

    @given(context_and_operands())
    @settings(max_examples=100)
    def test_m_bits_force_even_sums(self, cxy):
        """m_i is precisely the parity fix: T + x_i·y + m_i·N is even."""
        ctx, x, y = cxy
        _, steps = montgomery_trace(ctx, x, y)
        t_prev = 0
        for s in steps:
            assert (t_prev + s.x_digit * y + s.m_digit * ctx.modulus) % 2 == 0
            t_prev = s.t_after


class TestReduction:
    @given(context_and_operands())
    @settings(max_examples=150)
    def test_reduce_idempotent_representation(self, cxy):
        """enter -> reduce round-trips every residue."""
        ctx, x, _ = cxy
        n = ctx.modulus
        v = x % n
        entered = montgomery_no_subtraction(ctx, v, ctx.r2_mod_n)
        assert montgomery_reduce(ctx, entered) == v
