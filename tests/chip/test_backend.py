"""ChipBackend: chain-interleaved modexp, cost model, service integration."""

from __future__ import annotations

import random

import pytest

from repro.chip.backend import ChipBackend
from repro.chip.schedule import completion_estimate_cycles
from repro.errors import ParameterError
from repro.montgomery.params import precompute_montgomery_constants
from repro.serving import ModExpRequest, ModExpService, SLOPolicy, default_registry
from repro.systolic.timing import mmm_cycles_corrected
from repro.utils.rng import random_odd_modulus


def _requests(l: int, count: int, seed: int = 0, mixed: bool = True):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    reqs = []
    for i in range(count):
        e = rng.randrange(3, 1 << 8) if mixed else 17
        reqs.append(
            ModExpRequest(rng.randrange(1, n), e, n, request_id=f"c{i}")
        )
    return reqs, n


class TestRegistration:
    def test_registered_with_chip_capabilities(self):
        caps = default_registry().get("chip").capabilities
        assert caps.simulator and caps.cycle_accurate and not caps.process_safe
        assert caps.lanes == 4  # 2 tiles x 2 waves
        assert caps.mixed_exponent_lanes
        assert "2-tile x 2-wave" in caps.description

    def test_engine_screen(self):
        with pytest.raises(ParameterError):
            ChipBackend(engine="compiled")


class TestExecution:
    def test_mixed_exponent_batch_pow_correct(self):
        reqs, n = _requests(16, 6, seed=1)
        ctx = precompute_montgomery_constants(n)
        results = ChipBackend().execute_many(ctx, reqs)
        assert len(results) == 6
        for req, res in zip(reqs, results):
            assert res.value == pow(req.base, req.exponent, n)

    def test_cycles_are_scalar_identical(self):
        # Per-request cycles = own MMM latencies summed, independent of
        # how many neighbours shared the chip: 2 + #squares + #multiplies
        # multiplications at 3l+5 each.
        reqs, n = _requests(16, 3, seed=2, mixed=False)  # e=17: 10001b
        ctx = precompute_montgomery_constants(n)
        results = ChipBackend().execute_many(ctx, reqs)
        mults = 2 + (17 .bit_length() - 1) + bin(17).count("1") - 1  # pre+post+sq+ml
        expected = mults * mmm_cycles_corrected(ctx.l)
        assert all(r.cycles == expected for r in results)

    def test_empty_batch(self):
        reqs, n = _requests(16, 1)
        ctx = precompute_montgomery_constants(n)
        assert ChipBackend().execute_many(ctx, []) == []


class TestCostModel:
    def test_group_estimate_beats_scalar_sum(self):
        reqs, n = _requests(16, 8, seed=3)
        backend = ChipBackend()
        group = backend.estimate_group_cycles(reqs)
        scalar = sum(
            2 * r.exponent.bit_length() * mmm_cycles_corrected(16) for r in reqs
        )
        assert 0 < group < scalar
        assert backend.estimate_group_cycles([]) == 0

    def test_estimate_cost_discounted_by_speedup(self):
        reqs, _ = _requests(32, 1, seed=4)
        chip = ChipBackend()
        rtl = default_registry().get("rtl")
        # Same cycle model, but the chip's wall estimate is amortized.
        assert chip.estimate_cost(reqs[0]) < rtl.estimate_cost(reqs[0]) * 4

    def test_completion_budget_uses_tiles_and_waves(self):
        reqs, _ = _requests(16, 8, seed=5)
        slo = SLOPolicy()
        flat = slo.completion_budget(reqs, tiles=1, waves=1)
        chip = slo.completion_budget(reqs, tiles=2, waves=2)
        assert 0 < chip < flat
        assert slo.completion_budget([]) == 0
        fixed = SLOPolicy(fixed_budget=999)
        assert fixed.completion_budget(reqs, tiles=2, waves=2) == 999

    def test_completion_budget_matches_schedule_estimate(self):
        reqs, _ = _requests(16, 4, seed=6)
        slo = SLOPolicy(margin=1.0)
        mults = [2 * r.exponent.bit_length() for r in reqs]
        l = max(r.width for r in reqs)
        assert slo.completion_budget(reqs, tiles=2, waves=2) == (
            completion_estimate_cycles(mults, l, tiles=2, waves=2)
        )


class TestServiceIntegration:
    def test_through_service_with_mixed_exponent_lanes(self):
        reqs, n = _requests(16, 7, seed=7)
        with ModExpService(
            backend="chip", workers=2, worker_kind="thread"
        ) as service:
            results = service.process(reqs)
        assert all(r.ok for r in results)
        for req, res in zip(reqs, results):
            assert res.value == pow(req.base, req.exponent, n)

    def test_slo_checks_pass_on_chip_results(self, ):
        from repro.observability import MetricsRegistry, observe

        reqs, _ = _requests(16, 4, seed=8)
        reg = MetricsRegistry()
        with observe(metrics=reg):
            with ModExpService(
                backend="chip", workers=1, worker_kind="thread"
            ) as service:
                results = service.process(reqs)
        assert all(r.ok for r in results)
        assert reg.counter("serving.slo_checks").total() == 4
        assert reg.counter("serving.slo_violations").total() == 0
