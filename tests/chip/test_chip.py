"""ChipModel: dispatch policies, backlog backpressure, chip observability."""

from __future__ import annotations

import random

import pytest

from repro.chip.chip import ChipModel
from repro.chip.dispatch import (
    LeastDepthDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)
from repro.chip.interleave import MMMOp
from repro.chip.schedule import datapath_cycles
from repro.errors import ParameterError
from repro.observability import MetricsRegistry, OccupancyRecorder, observe
from repro.systolic.array import SystolicArrayRTL
from repro.utils.rng import random_odd_modulus


def _ops(l: int, count: int, seed: int = 0):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i) for i in range(count)
    ]


class TestDispatchPolicies:
    def test_make_dispatcher_screen(self):
        assert make_dispatcher("round-robin").name == "round-robin"
        assert make_dispatcher("least-depth").name == "least-depth"
        with pytest.raises(ParameterError, match="least-depth"):
            make_dispatcher("random")

    def test_round_robin_rotates(self):
        chip = ChipModel(8, tiles=3, dispatcher=RoundRobinDispatcher())
        d = chip.dispatcher
        assert d.order(chip) == [0, 1, 2]
        assert d.order(chip) == [1, 2, 0]
        assert d.order(chip) == [2, 0, 1]
        assert d.order(chip) == [0, 1, 2]

    def test_least_depth_prefers_emptier_tile(self):
        chip = ChipModel(8, tiles=2, dispatcher=LeastDepthDispatcher())
        chip.tiles[0].try_enqueue(_ops(8, 1)[0])
        assert chip.dispatcher.order(chip) == [1, 0]

    def test_round_robin_spreads_ops_evenly(self):
        chip = ChipModel(8, tiles=2, dispatcher="round-robin", fifo_depth=8)
        for op in _ops(8, 6):
            chip.submit(op)
        assert len(chip.tiles[0].in_fifo) == 3
        assert len(chip.tiles[1].in_fifo) == 3


class TestDifferentialAndDrain:
    @pytest.mark.parametrize("policy", ["round-robin", "least-depth"])
    def test_chip_results_bit_identical_to_sequential(self, policy):
        l = 8
        ops = _ops(l, 10, seed=3)
        arr = SystolicArrayRTL(l, mode="corrected")
        expected = {
            op.tag: arr.run_multiplication(op.x, op.y, op.n).value for op in ops
        }
        chip = ChipModel(l, tiles=2, waves=2, dispatcher=policy)
        outcomes = chip.run(ops)
        assert sorted(o.op.tag for o in outcomes) == list(range(10))
        for o in outcomes:
            assert o.value == expected[o.op.tag]
        assert {o.tile for o in outcomes} == {0, 1}

    def test_backlog_absorbs_pressure_without_deadlock(self):
        # fifo_depth=1 with a burst of 12 ops: most land in the chip
        # backlog, all eventually retire.
        l = 8
        chip = ChipModel(l, tiles=2, waves=2, fifo_depth=1)
        ops = _ops(l, 12, seed=4)
        for op in ops:
            chip.submit(op)
        assert chip.backlog, "expected chip-level backlog at fifo_depth=1"
        outcomes = chip.run_until_drained()
        assert sorted(o.op.tag for o in outcomes) == list(range(12))
        assert not chip.backlog and chip.pending == 0

    def test_chip_beats_sequential_makespan(self):
        l, count = 8, 8
        ops = _ops(l, count, seed=5)
        chip = ChipModel(l, tiles=2, waves=2)
        chip.run(ops)
        sequential = count * (datapath_cycles(l) + 1)
        assert chip.cycle < sequential


class TestChipObservability:
    def test_tile_track_and_health_histograms(self):
        l = 8
        reg = MetricsRegistry()
        occ = OccupancyRecorder()
        chip = ChipModel(l, tiles=2, waves=2)
        with observe(metrics=reg, occupancy=occ):
            chip.run(_ops(l, 8, seed=6))
        # chip.tiles: one busy bit per tile per chip cycle.
        assert occ.cycles("chip.tiles") == chip.cycle
        fracs = occ.cell_busy_fractions("chip.tiles")
        assert len(fracs) == 2 and all(0 < f <= 1 for f in fracs)
        # Per-tile cell-level tracks exist alongside.
        assert occ.cycles("chip.tile0") > 0 and occ.cycles("chip.tile1") > 0
        # Health histograms and dispatch counters.
        waves = reg.histogram("chip.waves").aggregate()
        assert waves is not None and waves.max <= 4
        fifo = reg.histogram("chip.fifo_depth").aggregate(tile="0", dir="in")
        assert fifo is not None
        assert reg.counter("chip.dispatched").total() == 8
        assert reg.counter("chip.ops_retired").total() == 8

    def test_heatmap_renders_tile_rows(self):
        occ = OccupancyRecorder()
        chip = ChipModel(8, tiles=2, waves=2)
        with observe(occupancy=occ):
            chip.run(_ops(8, 4, seed=7))
        text = occ.heatmap("chip.tiles", unit="tile")
        assert "2 tiles" in text and "tile    0" in text and "tile    1" in text
