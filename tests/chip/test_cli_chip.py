"""CLI entry points: ``repro chip``, ``repro loadgen``, profile chip stage."""

from __future__ import annotations

import io
import json

from repro.cli import main


class TestChipCommand:
    def test_chip_run_verifies_and_reports(self):
        out = io.StringIO()
        assert main(["chip", "--l", "8", "--ops", "6"], out=out) == 0
        text = out.getvalue()
        assert "results verified" in text and "6/6" in text
        assert "speedup" in text
        assert "occupancy heatmap [chip.tiles]" in text

    def test_chip_least_depth_policy(self):
        out = io.StringIO()
        assert (
            main(
                ["chip", "--l", "8", "--ops", "4", "--dispatch", "least-depth"],
                out=out,
            )
            == 0
        )
        assert "least-depth" in out.getvalue()


class TestLoadgenCommand:
    def test_loadgen_emits_parseable_jsonl(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "wl.jsonl"
        assert (
            main(
                [
                    "loadgen",
                    "--requests",
                    "12",
                    "--keys",
                    "3",
                    "--bits",
                    "12",
                    "--summary",
                    "--out",
                    str(path),
                ],
                out=out,
            )
            == 0
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 12
        for line in lines:
            obj = json.loads(line)
            assert obj["modulus"] % 2 == 1 and "deadline" in obj
        info = out.getvalue()
        assert "Keyring popularity" in info and "12 requests" in info

    def test_loadgen_deterministic_per_seed(self, tmp_path):
        a, b = io.StringIO(), io.StringIO()
        argv = ["loadgen", "--requests", "5", "--seed", "x"]
        assert main(argv, out=a) == 0
        assert main(argv, out=b) == 0
        assert a.getvalue() == b.getvalue()


class TestProfileChipStage:
    def test_profile_gains_chip_health_section(self):
        out = io.StringIO()
        assert (
            main(
                [
                    "profile",
                    "--l",
                    "8",
                    "--requests",
                    "0",
                    "--chip-ops",
                    "4",
                    "--chip-l",
                    "8",
                ],
                out=out,
            )
            == 0
        )
        text = out.getvalue()
        assert "chip health:" in text
        assert "occupancy heatmap [chip.tiles]" in text
        # The array stage is untouched: its heatmap and model check remain.
        assert "occupancy heatmap [array]" in text

    def test_profile_without_chip_ops_has_no_chip_section(self):
        out = io.StringIO()
        assert main(["profile", "--l", "8", "--requests", "0"], out=out) == 0
        assert "chip health:" not in out.getvalue()
