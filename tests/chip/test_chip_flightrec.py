"""Per-tile flight recorders and chip-level trigger fan-in."""

from __future__ import annotations

import random

from repro.chip.chip import ChipModel
from repro.chip.interleave import MMMOp
from repro.observability.flightrec import FlightRecorderHub, PostMortemBundle, armed


def _ops(count, l=8, seed="chip-fr"):
    rng = random.Random(seed)
    n = (1 << (l - 1)) | rng.randrange(1 << (l - 1)) | 1
    return [MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i) for i in range(count)]


class TestChipFlightRecorder:
    def test_tile_fault_fans_into_chip_black_box(self, tmp_path):
        chip = ChipModel(8, tiles=2, waves=2)
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=16, post=4)
        with armed(hub):
            for op in _ops(6):
                chip.submit(op)
            for _ in range(12):
                chip.step()
            chip.notify_fault(1, "injected: wedged output FIFO")
            while chip.pending:
                chip.step()
                chip.collect()
            paths = chip.flightrec_flush()
        # the faulted tile's box AND the chip-level box both dump;
        # untriggered tile recorders (tile 0) are discarded
        assert len(paths) == 2
        scopes = {}
        for p in paths:
            b = PostMortemBundle.load(p)
            scopes[b.meta["scope"]] = b
        assert set(scopes) == {"tile1", "chip"}
        tile = scopes["tile1"]
        assert tile.meta["cause"] == "injected: wedged output FIFO"
        assert tile.meta["trigger_cycle"] == 12
        assert set(tile.window.signals) == {
            "in_fifo", "out_fifo", "stage", "inflight", "busy"
        }
        # fan-in: the chip box froze on the tile's trigger, same clock
        chipb = scopes["chip"]
        assert "tile1" in chipb.meta["cause"]
        assert chipb.meta["trigger_cycle"] == 12
        assert set(chipb.window.signals) == {"tiles", "waves", "backlog"}

    def test_no_trigger_means_no_dumps(self, tmp_path):
        chip = ChipModel(8, tiles=2, waves=2)
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=16, post=4)
        with armed(hub):
            outcomes = chip.run(_ops(4))
        assert len(outcomes) == 4
        assert chip.flightrec_flush() == []
        assert list(tmp_path.iterdir()) == []

    def test_disarmed_chip_records_nothing(self):
        chip = ChipModel(8, tiles=1)
        outcomes = chip.run(_ops(3))
        assert len(outcomes) == 3
        assert chip._flightrec is None

    def test_overflow_timeout_flushes_recorders(self, tmp_path):
        """The drain-timeout path emits whatever the boxes hold."""
        import pytest

        from repro.errors import SimulationError

        chip = ChipModel(8, tiles=1, waves=1, fifo_depth=2)
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=16, post=0)
        with armed(hub):
            for op in _ops(3):
                chip.submit(op)
            chip.step()
            chip.notify_fault(0, "pre-timeout fault")
            with pytest.raises(SimulationError):
                chip.run_until_drained(max_cycles=2)
        assert len(hub.dump_paths) >= 1
