"""Tile harness: FIFO backpressure, exactly-once drain, empty-step no-op."""

from __future__ import annotations

import random

from repro.chip.interleave import MMMOp
from repro.chip.tile import Tile
from repro.utils.rng import random_odd_modulus


def _ops(l: int, count: int, seed: int = 0):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i) for i in range(count)
    ]


class TestBackpressure:
    def test_full_input_fifo_blocks_dispatch_without_deadlock(self):
        # Capacity-1 input FIFO: enqueue is refused while the slot is
        # taken, yet the tile keeps draining and eventually accepts and
        # finishes every op — backpressure, never deadlock.
        l = 8
        tile = Tile(l, waves=2, fifo_depth=1)
        ops = _ops(l, 5)
        queue = list(ops)
        refusals = 0
        results = []
        for _ in range(6000):
            if queue:
                if tile.try_enqueue(queue[0]):
                    queue.pop(0)
                else:
                    refusals += 1
            tile.step()
            results.extend(tile.drain_results())
            if not queue and tile.idle:
                break
        assert not queue and tile.idle
        assert refusals > 0, "capacity-1 FIFO never exerted backpressure"
        assert sorted(o.op.tag for o in results) == [0, 1, 2, 3, 4]

    def test_output_backpressure_spills_to_stage_then_delivers(self):
        # Never draining mid-run: retired results overflow the capacity-1
        # output FIFO into the stage register; one final drain still
        # yields every result exactly once, in retirement order.
        l = 8
        tile = Tile(l, waves=2, fifo_depth=1)
        ops = _ops(l, 4, seed=2)
        queue = list(ops)
        for _ in range(6000):
            if queue and tile.try_enqueue(queue[0]):
                queue.pop(0)
            tile.step()
            if not queue and tile.array.in_flight == 0:
                break
        assert tile._stage, "expected stage-register spill under backpressure"
        results = tile.drain_results()
        assert [o.op.tag for o in results] == [0, 1, 2, 3]
        assert tile.drain_results() == []  # exactly once
        assert tile.idle


class TestExactlyOnce:
    def test_every_op_yields_one_result(self):
        l = 8
        tile = Tile(l, waves=2, fifo_depth=4)
        ops = _ops(l, 8, seed=5)
        queue = list(ops)
        seen = []
        for _ in range(8000):
            if queue and tile.try_enqueue(queue[0]):
                queue.pop(0)
            tile.step()
            seen.extend(tile.drain_results())
            if not queue and tile.idle:
                break
        tags = [o.op.tag for o in seen]
        assert sorted(tags) == list(range(8))
        assert len(tags) == len(set(tags)), "duplicate delivery"
        assert all(o.tile == 0 for o in seen)


class TestEmptyStep:
    def test_empty_tile_step_is_noop(self):
        tile = Tile(8, index=3, waves=2)
        before = tile.array.cycle
        for _ in range(10):
            tile.step()
        assert tile.array.cycle == before, "idle tile advanced its array clock"
        assert tile.idle and tile.queue_depth == 0 and not tile.busy

    def test_step_resumes_after_idle_gap(self):
        l = 8
        tile = Tile(l, waves=2)
        for _ in range(5):
            tile.step()  # no-ops
        op = _ops(l, 1, seed=9)[0]
        assert tile.try_enqueue(op)
        for _ in range(2000):
            tile.step()
            if tile.array.in_flight == 0 and not tile.in_fifo:
                break
        results = tile.drain_results()
        assert len(results) == 1 and results[0].op.tag == 0
