"""The wave-issue scheduling math: governor properties and closed forms."""

from __future__ import annotations

import pytest

from repro.chip.schedule import (
    chip_makespan_cycles,
    completion_estimate_cycles,
    datapath_cycles,
    interleaved_idle_model,
    issue_interval,
    issue_schedule,
    makespan_cycles,
    speedup_model,
    steady_state_idle_fraction,
    steady_state_issue_rate,
)
from repro.errors import ParameterError
from repro.observability.occupancy import analytic_idle_fraction
from repro.systolic.timing import mmm_cycles, mmm_cycles_corrected


class TestClosedForms:
    @pytest.mark.parametrize("l", [2, 8, 16, 64])
    def test_datapath_matches_timing_module(self, l):
        # T_MMM = datapath + 1 OUT cycle: 3l+5 corrected, 3l+4 paper.
        assert datapath_cycles(l, "corrected") + 1 == mmm_cycles_corrected(l)
        assert datapath_cycles(l, "paper") + 1 == mmm_cycles(l)

    def test_issue_interval_is_2l_plus_4(self):
        assert issue_interval(16) == 36
        assert issue_interval(64) == 132

    def test_parameter_screen(self):
        with pytest.raises(ParameterError):
            issue_schedule(3, 1)
        with pytest.raises(ParameterError):
            issue_schedule(3, 16, waves=0)
        with pytest.raises(ParameterError):
            issue_schedule(-1, 16)
        with pytest.raises(ParameterError):
            issue_schedule(3, 16, mode="bogus")
        with pytest.raises(ParameterError):
            chip_makespan_cycles(4, 16, tiles=0)


class TestIssueSchedule:
    def test_single_wave_is_sequential(self):
        d = datapath_cycles(16)
        assert issue_schedule(3, 16, waves=1) == [0, d, 2 * d]

    @pytest.mark.parametrize("waves", [2, 3, 4])
    @pytest.mark.parametrize("l", [8, 16, 64])
    def test_governor_invariants(self, l, waves):
        starts = issue_schedule(12, l, waves=waves)
        assert starts == sorted(starts)
        # Same-parity starts are spaced by at least the issue interval.
        for parity in (0, 1):
            on_p = [s for s in starts if s % 2 == parity]
            assert all(
                b - a >= issue_interval(l) for a, b in zip(on_p, on_p[1:])
            )
        # Never more than `waves` ops holding slots at once.
        d = datapath_cycles(l)
        for s in starts:
            overlapping = sum(1 for t in starts if t <= s < t + d)
            assert overlapping <= waves

    def test_two_waves_alternate_parity_at_start(self):
        starts = issue_schedule(2, 16, waves=2)
        assert starts[0] == 0 and starts[1] == 1

    def test_makespan_is_last_start_plus_datapath(self):
        starts = issue_schedule(5, 16, waves=2)
        assert makespan_cycles(5, 16, waves=2) == starts[-1] + datapath_cycles(16)
        assert makespan_cycles(0, 16) == 0


class TestIdleModels:
    def test_one_op_one_wave_matches_profiler_model(self):
        for l in (8, 16, 64):
            assert interleaved_idle_model(1, l, waves=1) == pytest.approx(
                analytic_idle_fraction(l, "corrected"), abs=1e-3
            )

    def test_interleaving_cuts_idle(self):
        lone = interleaved_idle_model(8, 64, waves=1)
        duo = interleaved_idle_model(8, 64, waves=2)
        quad = interleaved_idle_model(8, 64, waves=4)
        assert duo < lone and quad < duo

    def test_steady_state_w2_headline(self):
        # The PR's CI gate: W=2 at l=64 sustains idle well under 0.40.
        assert steady_state_idle_fraction(64, waves=2) <= 0.40
        # And W=1 is the profiler's ~66%.
        assert steady_state_idle_fraction(64, waves=1) == pytest.approx(
            analytic_idle_fraction(64, "corrected"), abs=1e-3
        )

    def test_steady_state_rate_monotone_in_waves(self):
        rates = [steady_state_issue_rate(64, waves=w) for w in (1, 2, 3, 4)]
        assert rates == sorted(rates)
        # The parity-spacing bound caps the rate at 2/interval.
        assert steady_state_issue_rate(64, waves=8) <= 2 / issue_interval(64)


class TestChipEstimates:
    def test_chip_makespan_splits_over_tiles(self):
        whole = chip_makespan_cycles(8, 16, tiles=1, waves=2)
        split = chip_makespan_cycles(8, 16, tiles=2, waves=2)
        assert split < whole
        assert chip_makespan_cycles(0, 16, tiles=2) == 0

    def test_completion_estimate_chain_bound(self):
        # One huge chain dominates: tiling cannot shrink a dependent chain.
        per_op = datapath_cycles(16) + 1
        est = completion_estimate_cycles([40, 1, 1], 16, tiles=4, waves=4)
        assert est == 40 * per_op

    def test_completion_estimate_pooled_bound(self):
        # Many equal chains: the pooled makespan dominates on one tile.
        est1 = completion_estimate_cycles([4] * 12, 16, tiles=1, waves=1)
        est2 = completion_estimate_cycles([4] * 12, 16, tiles=2, waves=2)
        assert est2 < est1
        assert completion_estimate_cycles([], 16) == 0
        assert completion_estimate_cycles([0, 0], 16) == 0

    def test_speedup_model_headline(self):
        # 2 tiles x 2 waves: >= 1.5x a single plain array (the CI floor);
        # the analytic value is 4.0 at l=64.
        gain = speedup_model(64, tiles=2, waves=2)
        assert gain >= 1.5
        assert gain == pytest.approx(4.0, abs=0.01)
        assert speedup_model(64, tiles=1, waves=1) == pytest.approx(1.0)
