"""Differential suite: W-way interleaved runs are bit-identical to
sequential single-array runs, cycle-for-cycle pinned to the issue model.
"""

from __future__ import annotations

import random

import pytest

from repro.chip.interleave import InterleavedArray, MMMOp, _Flight
from repro.chip.schedule import (
    datapath_cycles,
    interleaved_idle_model,
    issue_schedule,
)
from repro.errors import ParameterError, SimulationError
from repro.observability import OccupancyRecorder, observe
from repro.systolic.array import SystolicArrayRTL
from repro.utils.rng import random_odd_modulus


def _ops(l: int, count: int, seed: int = 0):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return [
        MMMOp(rng.randrange(n), rng.randrange(n), n, tag=i) for i in range(count)
    ], n


def _sequential_reference(ops, l):
    arr = SystolicArrayRTL(l, mode="corrected")
    return {
        op.tag: arr.run_multiplication(op.x, op.y, op.n).value for op in ops
    }


class TestParameterScreen:
    def test_bad_waves_and_engine(self):
        with pytest.raises(ParameterError):
            InterleavedArray(8, waves=0)
        with pytest.raises(ParameterError):
            InterleavedArray(8, engine="verilog")


class TestRTLDifferential:
    @pytest.mark.parametrize("waves", [1, 2, 4])
    def test_bit_identical_to_sequential(self, waves):
        l, count = 8, 6
        ops, _ = _ops(l, count, seed=waves)
        expected = _sequential_reference(ops, l)
        outcomes = InterleavedArray(l, waves=waves).run(ops)
        assert len(outcomes) == count
        for o in outcomes:
            assert o.value == expected[o.op.tag], (
                f"wave-interleaved result diverged at W={waves}, tag={o.op.tag}"
            )

    @pytest.mark.parametrize("waves", [1, 2, 4])
    def test_issue_stream_matches_greedy_schedule(self, waves):
        l, count = 8, 6
        ops, _ = _ops(l, count)
        outcomes = InterleavedArray(l, waves=waves).run(ops)
        simulated = sorted(o.issue_cycle for o in outcomes)
        assert simulated == issue_schedule(count, l, waves=waves)

    def test_per_op_latency_is_datapath_plus_out(self):
        l = 8
        ops, _ = _ops(l, 3)
        outcomes = InterleavedArray(l, waves=2).run(ops)
        assert all(o.cycles == datapath_cycles(l) + 1 for o in outcomes)

    @pytest.mark.parametrize("waves", [1, 2, 4])
    def test_measured_idle_matches_model(self, waves):
        l, count = 8, 6
        ops, _ = _ops(l, count)
        occ = OccupancyRecorder()
        arr = InterleavedArray(l, waves=waves)
        with observe(occupancy=occ):
            arr.run(ops)
        idle = occ.idle_fraction("interleaved")
        assert idle == pytest.approx(
            interleaved_idle_model(count, l, waves=waves), abs=1e-4
        )

    def test_hazard_check_runs_clean_at_max_pressure(self):
        # Saturating all four slots never trips the pairwise-disjointness
        # assertion: the structural proof that the W-wave array is
        # buildable on one shared cell lattice.
        l = 8
        ops, _ = _ops(l, 10, seed=3)
        outcomes = InterleavedArray(l, waves=4).run(ops)  # no SimulationError
        assert len(outcomes) == 10


class TestGateDifferential:
    def test_bit_identical_to_gate_netlist(self):
        from repro.systolic.mmmc_netlist import GateLevelMMMC

        l, count = 8, 4
        ops, n = _ops(l, count, seed=7)
        gate = GateLevelMMMC(l, mode="corrected")
        expected = {op.tag: gate.multiply(op.x, op.y, op.n).result for op in ops}
        outcomes = InterleavedArray(l, waves=2, engine="gate").run(ops)
        assert len(outcomes) == count
        for o in outcomes:
            assert o.value == expected[o.op.tag]

    def test_gate_and_rtl_engines_agree(self):
        l, count = 8, 4
        ops, _ = _ops(l, count, seed=11)
        rtl = {o.op.tag: o.value for o in InterleavedArray(l, waves=2).run(ops)}
        gat = {
            o.op.tag: o.value
            for o in InterleavedArray(l, waves=2, engine="gate").run(ops)
        }
        assert rtl == gat

    def test_scheduled_mask_overlap_raises(self):
        # White box: two flights forced onto the same start cycle must trip
        # the gate engine's scheduled-mask hazard check — the governor is
        # the only thing standing between the model and an unbuildable
        # machine, and the check proves it is load-bearing.
        arr = InterleavedArray(8, waves=2, engine="gate")
        ops, _ = _ops(8, 2)
        arr._gate_issue(_Flight(ops[0], 0, arr.datapath_cycles))
        with pytest.raises(SimulationError, match="wave hazard"):
            arr._gate_issue(_Flight(ops[1], 0, arr.datapath_cycles))


class TestRunDriver:
    def test_run_timeout_raises(self):
        ops, _ = _ops(8, 2)
        with pytest.raises(SimulationError, match="exceeded"):
            InterleavedArray(8, waves=2).run(ops, max_cycles=3)

    def test_take_completed_drains_once(self):
        ops, _ = _ops(8, 2)
        arr = InterleavedArray(8, waves=2)
        out = arr.run(ops)
        assert len(out) == 2
        assert arr.take_completed() == []
        assert arr.issued == arr.retired == 2
