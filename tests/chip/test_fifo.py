"""BoundedFIFO: hardware-queue semantics and pressure counters."""

from __future__ import annotations

import pytest

from repro.chip.fifo import BoundedFIFO
from repro.errors import ParameterError


class TestBoundedFIFO:
    def test_capacity_screen(self):
        with pytest.raises(ParameterError):
            BoundedFIFO(0)

    def test_fifo_order(self):
        q = BoundedFIFO(4)
        for i in range(4):
            assert q.push(i)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]
        assert q.pop() is None

    def test_full_refuses_without_side_effect(self):
        q = BoundedFIFO(2)
        assert q.push("a") and q.push("b")
        assert q.full
        assert not q.push("c")
        assert len(q) == 2 and q.peek() == "a"
        assert q.rejected == 1 and q.pushed == 2

    def test_peek_does_not_consume(self):
        q = BoundedFIFO(2)
        q.push(7)
        assert q.peek() == 7 and len(q) == 1
        assert q.pop() == 7 and q.peek() is None

    def test_drain_empties_oldest_first(self):
        q = BoundedFIFO(3)
        for i in range(3):
            q.push(i)
        assert q.drain() == [0, 1, 2]
        assert not q and q.popped == 3

    def test_high_water_tracks_peak(self):
        q = BoundedFIFO(8)
        for i in range(5):
            q.push(i)
        for _ in range(5):
            q.pop()
        q.push(9)
        assert q.high_water == 5
