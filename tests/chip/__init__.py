"""Tests for the multi-array chip subsystem (repro.chip)."""
