"""Unit tests for the snapshot-vs-baseline regression gate."""

import pytest

from repro.observability import MetricsRegistry
from repro.observability.baseline import (
    DEFAULT_IGNORE,
    diff_snapshots,
    load_snapshot,
)


def _snapshot(cycles=28, count=4, wall=100.0):
    reg = MetricsRegistry()
    reg.counter("serving.requests").inc(count, backend="integer")
    for _ in range(count):
        reg.histogram("serving.request_cycles").observe(cycles, backend="integer")
        reg.histogram("serving.request_wall_us").observe(wall, backend="integer")
    reg.gauge("array.cells").set(10)
    return reg.snapshot()


class TestDiffSnapshots:
    def test_identical_snapshots_pass_at_zero_tolerance(self):
        snap = _snapshot()
        compared, problems = diff_snapshots(snap, snap, tolerance=0.0)
        assert problems == []
        assert compared > 0

    def test_counter_drift_beyond_tolerance_fails(self):
        compared, problems = diff_snapshots(
            _snapshot(count=4), _snapshot(count=8), tolerance=0.5
        )
        assert any("serving.requests" in p and "drifted" in p for p in problems)

    def test_drift_within_tolerance_passes(self):
        _, problems = diff_snapshots(
            _snapshot(count=100), _snapshot(count=105), tolerance=0.1
        )
        assert problems == []

    def test_histogram_shape_drift_is_caught(self):
        # Same count, different cycle values: sum and percentiles move.
        _, problems = diff_snapshots(
            _snapshot(cycles=28), _snapshot(cycles=56), tolerance=0.1
        )
        assert any("serving.request_cycles" in p for p in problems)
        fields = {p.split(": ")[1].split(" ")[0] for p in problems}
        assert "sum" in fields and "p50" in fields

    def test_missing_baseline_series_fails(self):
        baseline = _snapshot()
        current = _snapshot()
        current["counters"] = []
        _, problems = diff_snapshots(baseline, current)
        assert any("missing in current" in p for p in problems)

    def test_extra_current_series_are_ignored(self):
        baseline = _snapshot()
        current = _snapshot()
        reg = MetricsRegistry()
        reg.counter("brand.new").inc(99)
        current["counters"].extend(reg.snapshot()["counters"])
        _, problems = diff_snapshots(baseline, current, tolerance=0.0)
        assert problems == []

    def test_wall_clock_series_ignored_by_default(self):
        _, problems = diff_snapshots(
            _snapshot(wall=100.0), _snapshot(wall=9999.0), tolerance=0.0
        )
        assert problems == []
        assert "*wall*" in DEFAULT_IGNORE

    def test_custom_ignore_globs(self):
        _, problems = diff_snapshots(
            _snapshot(count=1),
            _snapshot(count=50),
            tolerance=0.0,
            ignore=("serving.*", "*wall*"),
        )
        assert not any("serving" in p for p in problems)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_snapshots(_snapshot(), _snapshot(), tolerance=-0.1)


class TestLoadSnapshot:
    def test_roundtrip_through_disk(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "snap.json"
        reg.write_json(str(path))
        snap = load_snapshot(str(path))
        _, problems = diff_snapshots(snap, reg.snapshot(), tolerance=0.0)
        assert problems == []
