"""Unit tests for the flight recorder: triggers, ring windows, bundles."""

from __future__ import annotations

import os

import pytest

from repro.errors import ParameterError
from repro.observability import MetricsRegistry, observe
from repro.observability.flightrec import (
    CaptureWindow,
    FlightRecorder,
    FlightRecorderHub,
    PostMortemBundle,
    TriggerSpec,
    armed,
    find_bundles,
)
from repro.observability.observer import OBS


def _decoder(raw, lane):
    """Probe layout for tests: raw = (a, b) integers, lane ignored."""
    return {"a": raw[0], "b": raw[1]}


def _lane_decoder(raw, lane):
    """Lane-word layout: each probe word packs one bit per lane."""
    return {"a": (raw[0] >> lane) & 1, "b": (raw[1] >> lane) & 1}


def _recorder(**kw):
    kw.setdefault("pre", 8)
    kw.setdefault("post", 4)
    return FlightRecorder(("a", "b"), {"a": 8, "b": 8}, _decoder, **kw)


# ----------------------------------------------------------------------
# TriggerSpec
# ----------------------------------------------------------------------
class TestTriggerSpec:
    def test_fault(self):
        t = TriggerSpec.parse("fault")
        assert t.kind == "fault"
        # fault triggers never fire from check(); only notify_fault does
        assert t.check(5, {"a": 1}, None) is None

    def test_cycle_eq(self):
        t = TriggerSpec.parse("cycle == 41")
        assert t.kind == "cycle"
        assert t.check(40, None, None) is None
        assert "41" in t.check(41, None, None)

    def test_cycle_range(self):
        t = TriggerSpec.parse("cycle in 30:50")
        assert t.check(29, None, None) is None
        assert t.check(30, None, None) is not None
        assert t.check(50, None, None) is not None
        assert t.check(51, None, None) is None

    def test_signal_ops(self):
        t = TriggerSpec.parse("a == 0x1f")
        assert t.check(3, {"a": 30}, None) is None
        assert t.check(3, {"a": 31}, None) is not None
        ge = TriggerSpec.parse("b >= 10")
        assert ge.check(0, {"b": 9}, None) is None
        assert ge.check(0, {"b": 10}, None) is not None

    def test_signal_changed(self):
        t = TriggerSpec.parse("done changed")
        assert t.check(0, {"done": 0}, None) is None  # no previous sample
        assert t.check(1, {"done": 0}, {"done": 0}) is None
        assert t.check(2, {"done": 1}, {"done": 0}) is not None

    def test_unknown_signal_never_fires(self):
        t = TriggerSpec.parse("ghost == 1")
        assert t.check(0, {"a": 1}, None) is None

    @pytest.mark.parametrize(
        "bad", ["", "cycle", "cycle in 3", "== 4", "a ==", "cycle ~ 4"]
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParameterError):
            TriggerSpec.parse(bad)


# ----------------------------------------------------------------------
# FlightRecorder windows
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded_to_pre(self):
        rec = _recorder(pre=4, post=0, triggers=["cycle == 99"])
        for c in range(20):
            rec.sample(c, (c, 0))
        assert not rec.triggered
        # untriggered ring holds only the last `pre` cycles
        w = rec.window()
        assert w.cycles == [16, 17, 18, 19]

    def test_trigger_freezes_after_post(self):
        rec = _recorder(pre=4, post=3, triggers=["cycle == 10"])
        for c in range(20):
            if rec.wants_sample(c):
                rec.sample(c, (c, c * 2))
        assert rec.triggered and rec.frozen
        w = rec.window()
        # ring holds the trigger cycle + 3 before it, then 3 post samples
        assert w.cycles == [7, 8, 9, 10, 11, 12, 13]
        assert w.trigger_cycle == 10
        assert w.value_at("b", 12) == 24
        # frozen: further samples are refused
        rec.sample(14, (0, 0))
        assert rec.window().cycles[-1] == 13

    def test_signal_trigger_decodes_and_fires(self):
        rec = _recorder(triggers=["b == 6"])
        for c in range(10):
            rec.sample(c, (c, c * 2))
        assert rec.triggered and rec.trigger_cycle == 3
        assert "b" in rec.cause

    def test_notify_fault_fires_without_trigger_list(self):
        rec = _recorder(fire_on_fault=True)
        for c in range(6):
            rec.sample(c, (c, 0))
        rec.notify_fault(5, "SEU on t[3]", lane=2)
        assert rec.triggered and rec.cause == "SEU on t[3]"
        assert rec.lane == 2

    def test_notify_fault_respects_fire_on_fault_off(self):
        rec = _recorder(fire_on_fault=False)
        rec.sample(0, (0, 0))
        rec.notify_fault(0, "ignored")
        assert not rec.triggered

    def test_ring_stride_decimates_until_trigger(self):
        rec = _recorder(pre=4, post=2, ring_stride=4, fire_on_fault=True)
        for c in range(20):
            if rec.wants_sample(c):
                rec.sample(c, (c, 0))
            if c == 13:
                rec.notify_fault(13, "boom")
        w = rec.window()
        # pre ring at stride 4, then dense from the trigger on
        assert w.cycles == [0, 4, 8, 12, 14, 15]
        assert rec.frozen

    def test_signal_triggers_force_stride_one(self):
        rec = _recorder(triggers=["b == 3"], ring_stride=8)
        assert rec.ring_stride == 1
        assert all(rec.wants_sample(c) for c in range(10))

    def test_lane_extraction_at_window_time(self):
        rec = FlightRecorder(
            ("a", "b"), {"a": 1, "b": 1}, _lane_decoder, pre=4, post=0
        )
        # lane words: lane 0 always 0, lane 2 follows the cycle parity
        for c in range(4):
            rec.sample(c, ((c % 2) << 2, 0b100))
        rec.notify_fault(3, "flip", lane=2)
        assert rec.window().signals["a"] == [0, 1, 0, 1]
        assert rec.window().signals["b"] == [1, 1, 1, 1]
        assert rec.window(lane=0).signals["a"] == [0, 0, 0, 0]

    def test_bad_window_params(self):
        with pytest.raises(ParameterError):
            _recorder(pre=0)
        with pytest.raises(ParameterError):
            _recorder(ring_stride=0)


# ----------------------------------------------------------------------
# Hub: emit, bundles, dump caps, arming
# ----------------------------------------------------------------------
class TestHub:
    def _triggered_rec(self, hub, rid="r1"):
        hub.set_context(request_id=rid, backend="gate", seed=7)
        rec = hub.new_recorder(("a", "b"), {"a": 8, "b": 8}, _decoder)
        for c in range(6):
            rec.sample(c, (c, c))
        rec.notify_fault(5, "bit-flip on t[1]")
        for c in range(6, 6 + hub.post):
            rec.sample(c, (c, c))
        return rec

    def test_untriggered_recorder_is_discarded(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path))
        rec = hub.new_recorder(("a", "b"), {"a": 8, "b": 8}, _decoder)
        rec.sample(0, (1, 2))
        assert hub.emit(rec) is None
        assert hub.bundles == [] and list(tmp_path.iterdir()) == []

    def test_emit_writes_bundle_and_meta(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=8, post=2)
        path = hub.emit(self._triggered_rec(hub), cycles=29)
        assert path is not None and os.path.isdir(path)
        bundle = PostMortemBundle.load(path)
        assert bundle.meta["request_id"] == "r1"
        assert bundle.meta["cause"] == "bit-flip on t[1]"
        assert bundle.meta["trigger_cycle"] == 5
        assert bundle.meta["cycles"] == 29
        assert bundle.window.trigger_cycle == 5
        vcd = open(os.path.join(path, PostMortemBundle.VCD_FILE)).read()
        assert "flightrec window" in vcd

    def test_in_memory_bundles_without_dump_dir(self):
        hub = FlightRecorderHub(dump_dir=None, pre=8, post=2)
        assert hub.emit(self._triggered_rec(hub)) is None  # no path...
        assert hub.last_bundle is not None  # ...but kept in memory

    def test_max_dumps_drops_excess(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=8, post=2, max_dumps=2)
        for i in range(4):
            hub.emit(self._triggered_rec(hub, rid=f"r{i}"))
        assert len(hub.bundles) == 2 and hub.dropped == 2

    def test_find_bundles_filters_by_request(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=8, post=2)
        hub.emit(self._triggered_rec(hub, rid="alpha"))
        hub.set_context(request_id="beta")
        hub.emit(self._triggered_rec(hub, rid="beta"))
        assert len(find_bundles(str(tmp_path))) == 2
        only = find_bundles(str(tmp_path), "alpha")
        assert len(only) == 1 and "pm-reqalpha-" in only[0]
        assert hub.find_bundle("beta") is not None

    def test_disarmed_hub_hands_out_no_recorders(self):
        hub = FlightRecorderHub(armed=False)
        assert hub.new_recorder(("a",), {"a": 1}, _decoder) is None

    def test_emit_counts_dump_metric(self, tmp_path):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            hub = FlightRecorderHub(dump_dir=str(tmp_path), pre=8, post=2)
            hub.emit(self._triggered_rec(hub))
        snap = {r["name"]: r["value"] for r in registry.snapshot()["counters"]}
        assert snap.get("hdl.flightrec_dumps") == 1
        assert snap.get("hdl.flightrec_samples", 0) > 0

    def test_armed_context_swaps_only_flightrec_slot(self):
        hub = FlightRecorderHub()
        before = OBS.flightrec
        with armed(hub) as h:
            assert h is hub and OBS.flightrec is hub
        assert OBS.flightrec is before
        with armed(None) as h:  # disarmed path is a no-op
            assert h is None and OBS.flightrec is before


# ----------------------------------------------------------------------
# CaptureWindow rendering / VCD round trip
# ----------------------------------------------------------------------
class TestCaptureWindow:
    def _window(self):
        return CaptureWindow(
            cycles=[4, 5, 6, 7],
            signals={"a": [0, 1, 1, 0], "b": [3, 3, 9, 9]},
            widths={"a": 1, "b": 4},
            trigger_cycle=6,
            cause="b corrupted",
            lane=2,
        )

    def test_vcd_carries_window_metadata(self):
        from repro.hdl.waveform import parse_vcd

        parsed = parse_vcd(self._window().to_vcd())
        note = " ".join(parsed.comments)
        assert "start_cycle=4" in note and "trigger_cycle=6" in note
        assert "lane=2" in note
        assert parsed.history("b") == [3, 3, 9, 9]

    def test_ascii_marks_trigger_column(self):
        art = self._window().ascii_diagram()
        assert "^ trigger" in art

    def test_dict_round_trip(self):
        w = self._window()
        again = CaptureWindow.from_dict(w.to_dict())
        assert again.cycles == w.cycles
        assert again.signals == w.signals
        assert again.trigger_cycle == 6 and again.lane == 2
