"""Per-cell occupancy: the ``2i+j`` model vs what the simulators measure.

Two independent derivations of "is cell ``j`` busy at cycle ``tau``"
must agree: :func:`schedule_busy_mask` (closed-form arithmetic in
``occupancy.py``) and :meth:`SystolicArrayRTL.busy_mask` (each cell's
own productivity predicate, looped).  On top of that, the integrated
idle fraction over a full multiplication must land on the analytic
``1 - (l+2)/(3l+4)`` for the RTL array *and* for the gate-level
netlist's controller-derived MUL-cycle stream — and recording all of it
must not perturb the simulation results.
"""

import random

import pytest

from repro.observability import (
    OBS,
    MetricsRegistry,
    OccupancyRecorder,
    SpanTracer,
    analytic_idle_fraction,
    observe,
    schedule_busy_mask,
    validate_chrome_trace,
)
from repro.observability.occupancy import (
    analytic_busy_cycles_per_cell,
    analytic_cells,
    analytic_datapath_cycles,
)
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.mmmc_netlist import GateLevelMMMC
from repro.utils.rng import random_odd_modulus


def _operands(l, seed=0):
    rng = random.Random(seed)
    n = random_odd_modulus(l, rng)
    return n, rng.randrange(n), rng.randrange(n)


class TestScheduleBusyMask:
    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    @pytest.mark.parametrize("l", [2, 3, 8, 16])
    def test_closed_form_agrees_with_rtl_predicate(self, l, mode):
        array = SystolicArrayRTL(l, mode=mode)
        for cycle in range(analytic_datapath_cycles(l, mode) + 4):
            assert array.busy_mask(cycle) == schedule_busy_mask(
                cycle, l, array.top_cell
            ), (l, mode, cycle)

    def test_empty_before_start_and_after_drain(self):
        assert schedule_busy_mask(-1, 8) == 0
        drained = analytic_datapath_cycles(8, "corrected")
        assert schedule_busy_mask(drained + 10, 8) == 0

    def test_each_cell_busy_exactly_l_plus_2_cycles(self):
        l = 8
        per_cell = [0] * analytic_cells(l, "corrected")
        for cycle in range(analytic_datapath_cycles(l, "corrected")):
            mask = schedule_busy_mask(cycle, l)
            for j in range(len(per_cell)):
                per_cell[j] += (mask >> j) & 1
        assert per_cell == [analytic_busy_cycles_per_cell(l)] * len(per_cell)

    def test_wavefront_marches_one_cell_per_cycle(self):
        # Cell j's first busy cycle is exactly j: the 2i+j diagonal.
        for j in range(10):
            first = next(
                c for c in range(64) if (schedule_busy_mask(c, 8) >> j) & 1
            )
            assert first == j


class TestAnalyticModel:
    def test_idle_fraction_l64(self):
        # The headline number: the array idles ~2/3 of the time.
        assert analytic_idle_fraction(64, "corrected") == 1 - 66 / 196
        assert analytic_idle_fraction(64, "paper") == 1 - 66 / 195

    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    def test_datapath_cycles_match_mmm_formula(self, mode):
        # 2(l+1) + top_cell + 1 == 3l+4 (corrected) / 3l+3 (paper).
        for l in (4, 8, 64):
            expect = 3 * l + 4 if mode == "corrected" else 3 * l + 3
            assert analytic_datapath_cycles(l, mode) == expect


class TestOccupancyRecorder:
    def test_sample_accounts_mask_bits(self):
        occ = OccupancyRecorder()
        assert occ.sample("s", 0, 0b1011, 4) == 3
        assert occ.sample("s", 1, 0b0100, 4) == 1
        assert occ.busy_fraction("s") == 4 / 8
        assert occ.idle_fraction("s") == 1 - 4 / 8
        assert occ.cycles("s") == 2

    def test_matrix_rows_are_cells(self):
        occ = OccupancyRecorder()
        occ.sample("s", 0, 0b01, 2)
        occ.sample("s", 1, 0b10, 2)
        assert occ.matrix("s") == [[1, 0], [0, 1]]

    def test_activity_source(self):
        occ = OccupancyRecorder()
        occ.activity("lanes", 8, 64)
        occ.activity("lanes", 8, 64)
        assert occ.idle_fraction("lanes") == 1 - 16 / 128

    def test_mask_cap_drops_detail_not_totals(self):
        occ = OccupancyRecorder(max_mask_cycles=4)
        for cycle in range(10):
            occ.sample("s", cycle, 0b1, 1)
        assert occ.cycles("s") == 10
        assert occ.busy_fraction("s") == 1.0
        assert len(occ.matrix("s")[0]) == 4  # detail capped, totals exact

    def test_unknown_source_is_none(self):
        occ = OccupancyRecorder()
        assert occ.idle_fraction("nope") is None
        assert occ.cycles("nope") == 0

    def test_summary_is_json_shaped(self):
        import json

        occ = OccupancyRecorder()
        occ.sample("s", 0, 0b11, 2)
        occ.activity("lanes", 1, 4)
        json.dumps(occ.summary())


class TestMeasuredVsAnalytic:
    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    def test_rtl_array_idle_fraction_is_exact(self, mode):
        l = 16
        n, x, y = _operands(l)
        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            SystolicArrayRTL(l, mode=mode).run_multiplication(x, y, n)
        assert occ.idle_fraction("array") == pytest.approx(
            analytic_idle_fraction(l, mode), abs=1e-12
        )

    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    def test_gate_engine_idle_fraction_within_tolerance(self, mode):
        l = 8
        n, x, y = _operands(l)
        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            GateLevelMMMC(l, mode=mode).multiply(x, y, n)
        assert occ.idle_fraction("gate") == pytest.approx(
            analytic_idle_fraction(l, mode), abs=0.02
        )

    def test_matrix_rows_match_per_cell_model(self):
        l = 8
        n, x, y = _operands(l)
        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            SystolicArrayRTL(l).run_multiplication(x, y, n)
        matrix = occ.matrix("array")
        assert len(matrix) == analytic_cells(l, "corrected")
        for row in matrix:
            assert sum(row) == analytic_busy_cycles_per_cell(l)


class TestRenderings:
    def _recorded(self):
        l = 8
        n, x, y = _operands(l)
        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            SystolicArrayRTL(l).run_multiplication(x, y, n)
        return occ

    def test_heatmap_shape(self):
        occ = self._recorded()
        text = occ.heatmap("array")
        lines = text.splitlines()
        assert "occupancy heatmap [array]" in lines[0]
        cell_rows = [ln for ln in lines if ln.startswith("cell")]
        assert len(cell_rows) == 10  # top_cell+1 at l=8 corrected
        assert cell_rows[0].startswith("cell    9")  # top cell first
        assert "idle 64.3%" in lines[-1]

    def test_csv_matrix(self):
        occ = self._recorded()
        rows = occ.to_csv("array").strip().splitlines()
        # cycle-major: one row per sampled cycle, one column per cell
        assert rows[0] == "cycle," + ",".join(f"cell{j}" for j in range(10))
        assert len(rows) == 1 + occ.cycles("array")
        for row in rows[1:]:
            assert set(row.split(",")[1:]) <= {"0", "1"}


class TestInstrumentationContract:
    def test_disabled_run_identical_and_untouched(self):
        l = 8
        n, x, y = _operands(l)
        baseline = SystolicArrayRTL(l).run_multiplication(x, y, n)
        occ = OccupancyRecorder()
        with observe(metrics=MetricsRegistry(), occupancy=occ):
            observed = SystolicArrayRTL(l).run_multiplication(x, y, n)
        after = SystolicArrayRTL(l).run_multiplication(x, y, n)
        assert baseline == observed == after
        assert not OBS.enabled
        assert occ.cycles("array") > 0

    def test_metrics_only_session_records_no_occupancy(self):
        # occupancy hooks are additionally gated on OBS.occupancy.
        l = 8
        n, x, y = _operands(l)
        with observe(metrics=MetricsRegistry()):
            SystolicArrayRTL(l).run_multiplication(x, y, n)
            assert OBS.occupancy is None

    def test_occupancy_only_session_enables_observer(self):
        occ = OccupancyRecorder()
        with observe(occupancy=occ):
            assert OBS.enabled
            assert OBS.occupancy is occ
        assert not OBS.enabled

    def test_counter_tracks_are_valid_trace_events(self):
        l = 8
        n, x, y = _operands(l)
        occ = OccupancyRecorder()
        tracer = SpanTracer()
        with observe(metrics=MetricsRegistry(), tracer=tracer, occupancy=occ):
            GateLevelMMMC(l).multiply(x, y, n)
        doc = tracer.to_dict()
        assert validate_chrome_trace(doc) == []
        tracks = {
            e["name"] for e in doc["traceEvents"] if e.get("ph") == "C"
        }
        assert "occupancy.gate" in tracks
