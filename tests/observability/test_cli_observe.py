"""CLI observability flags, including the end-to-end acceptance check:

``python -m repro exponentiate … --trace out.json`` writes a valid
Chrome trace-event JSON whose span cycle totals agree with the
exponentiator's measured cycle counters.
"""

import io
import json
import os
import re
import subprocess
import sys

from repro.cli import main
from repro.observability import validate_chrome_trace

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")


def _cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestObserveCommand:
    def test_prints_snapshot_with_state_counters(self):
        code, out = _cli("observe", "--l", "8", "--seed", "1")
        assert code == 0
        assert "controller.state_cycles{state=MUL1}" in out
        assert "exponentiator.operations{kind=square}" in out

    def test_json_snapshot_and_metrics_out(self, tmp_path):
        path = str(tmp_path / "m.json")
        code, out = _cli("observe", "--l", "8", "--json", "--metrics-out", path)
        assert code == 0
        doc = json.loads(open(path).read())
        names = {row["name"] for row in doc["counters"]}
        assert "mmmc.multiplications" in names
        # stdout carries the same snapshot as JSON
        assert '"mmmc.multiplications"' in out

    def test_gate_flag_populates_hdl_metrics(self):
        code, out = _cli("observe", "--l", "6", "--gate")
        assert code == 0
        assert "hdl.gate_evals" in out

    def test_observe_can_trace(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli("observe", "--l", "8", "--trace", path)
        assert code == 0
        doc = json.loads(open(path).read())
        assert validate_chrome_trace(doc) == []


class TestMultiplyFlags:
    def test_multiply_trace_and_metrics(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli(
            "multiply", "300", "150", "197",
            "--model", "mmmc", "--arch", "paper",
            "--trace", path, "--metrics",
        )
        assert code == 0
        assert "controller.state_cycles" in out
        doc = json.loads(open(path).read())
        assert validate_chrome_trace(doc) == []
        (mmm,) = [e for e in doc["traceEvents"] if e.get("name") == "mmm"]
        assert mmm["dur"] == 3 * 8 + 4

    def test_golden_model_yields_empty_metrics(self):
        code, out = _cli(
            "multiply", "300", "150", "197", "--model", "golden", "--metrics"
        )
        assert code == 0
        assert "(no metrics recorded)" in out


class TestExponentiateTraceEndToEnd:
    def _check_trace_against_cycles(self, trace_doc, cycles):
        assert validate_chrome_trace(trace_doc) == []
        spans = [e for e in trace_doc["traceEvents"] if e["ph"] == "X"]
        exp_total = sum(e["dur"] for e in spans if e["name"] == "exponentiate")
        mmm_total = sum(e["dur"] for e in spans if e["name"] == "mmm")
        op_total = sum(
            e["dur"]
            for e in spans
            if e["name"] in ("pre", "square", "multiply", "post")
        )
        assert exp_total == cycles
        assert mmm_total == cycles
        assert op_total == cycles

    def test_in_process(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli(
            "exponentiate", "100", "11", "197",
            "--engine", "rtl", "--trace", path, "--metrics",
        )
        assert code == 0
        cycles = int(re.search(r"(\d+) cycles", out).group(1))
        self._check_trace_against_cycles(json.loads(open(path).read()), cycles)

    def test_subprocess_python_m_repro(self, tmp_path):
        """The acceptance criterion, verbatim: ``python -m repro …``."""
        path = str(tmp_path / "out.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "exponentiate",
                "100", "43", "197", "--engine", "rtl", "--trace", path,
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        cycles = int(re.search(r"(\d+) cycles", proc.stdout).group(1))
        # exponent 43 = 0b101011: 5 squares + 3 multiplies + pre + post
        # at 3l+5 = 29 cycles each (corrected array).
        assert cycles == 10 * 29
        self._check_trace_against_cycles(json.loads(open(path).read()), cycles)


class TestMetricsFormatFlag:
    def test_observe_prom_format_prints_exposition_text(self):
        code, out = _cli("observe", "--l", "8", "--format", "prom")
        assert code == 0
        assert "# TYPE controller_state_cycles_total counter" in out
        assert 'controller_state_cycles_total{state="MUL1"}' in out

    def test_observe_metrics_out_prom(self, tmp_path):
        path = str(tmp_path / "m.prom")
        code, out = _cli(
            "observe", "--l", "8", "--format", "prom", "--metrics-out", path
        )
        assert code == 0
        text = open(path).read()
        assert "exponentiator_operations_total" in text
        assert "(prom)" in out

    def test_exponentiate_metrics_out_respects_format(self, tmp_path):
        prom = str(tmp_path / "m.prom")
        code, _ = _cli(
            "exponentiate", "5", "11", "197",
            "--metrics-out", prom, "--format", "prom",
        )
        assert code == 0
        assert "# TYPE" in open(prom).read()
        jsn = str(tmp_path / "m.json")
        code, _ = _cli("exponentiate", "5", "11", "197", "--metrics-out", jsn)
        assert code == 0
        assert json.load(open(jsn))["counters"]


class TestObsDiffCommand:
    def _write_snapshot(self, tmp_path, name, count):
        from repro.observability import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("serving.requests").inc(count, backend="integer")
        path = str(tmp_path / name)
        reg.write_json(path)
        return path

    def test_identical_snapshots_exit_zero(self, tmp_path):
        base = self._write_snapshot(tmp_path, "base.json", 10)
        code, out = _cli("obs", "diff", base, "--baseline", base)
        assert code == 0
        assert "OK" in out

    def test_drift_beyond_tolerance_exits_nonzero(self, tmp_path):
        base = self._write_snapshot(tmp_path, "base.json", 10)
        cur = self._write_snapshot(tmp_path, "cur.json", 30)
        code, out = _cli(
            "obs", "diff", cur, "--baseline", base, "--tolerance", "0.15"
        )
        assert code == 1
        assert "DRIFT" in out and "FAIL" in out

    def test_ignore_glob_suppresses_drift(self, tmp_path):
        base = self._write_snapshot(tmp_path, "base.json", 10)
        cur = self._write_snapshot(tmp_path, "cur.json", 30)
        code, out = _cli(
            "obs", "diff", cur, "--baseline", base, "--ignore", "serving.*"
        )
        assert code == 0

    def test_missing_baseline_file_exits_two(self, tmp_path):
        cur = self._write_snapshot(tmp_path, "cur.json", 10)
        code, out = _cli(
            "obs", "diff", cur, "--baseline", str(tmp_path / "nope.json")
        )
        assert code == 2
        assert "cannot read baseline" in out

    def test_corrupt_baseline_is_one_line_no_traceback(self, tmp_path):
        cur = self._write_snapshot(tmp_path, "cur.json", 10)
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        code, out = _cli("obs", "diff", cur, "--baseline", str(bad))
        assert code == 2
        assert "cannot read baseline" in out
        assert "Traceback" not in out
        assert len(out.strip().splitlines()) == 1

    def test_corrupt_current_snapshot_exits_two(self, tmp_path):
        base = self._write_snapshot(tmp_path, "base.json", 10)
        bad = tmp_path / "corrupt.json"
        bad.write_text('["truncated"')
        code, out = _cli("obs", "diff", str(bad), "--baseline", base)
        assert code == 2
        assert "cannot read current snapshot" in out
        assert "Traceback" not in out

    def test_corrupt_baseline_in_subprocess_has_no_traceback(self, tmp_path):
        # End-to-end: the interpreter must exit 2 cleanly, not crash.
        cur = self._write_snapshot(tmp_path, "cur.json", 10)
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "obs", "diff", cur,
             "--baseline", str(bad)],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr + proc.stdout

    def test_committed_baseline_matches_itself(self):
        baseline = os.path.join(REPO_ROOT, "benchmarks", "baselines", "serving.json")
        code, out = _cli(
            "obs", "diff", baseline, "--baseline", baseline, "--tolerance", "0"
        )
        assert code == 0, out
