"""CLI observability flags, including the end-to-end acceptance check:

``python -m repro exponentiate … --trace out.json`` writes a valid
Chrome trace-event JSON whose span cycle totals agree with the
exponentiator's measured cycle counters.
"""

import io
import json
import os
import re
import subprocess
import sys

from repro.cli import main
from repro.observability import validate_chrome_trace

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(REPO_ROOT, "src")


def _cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestObserveCommand:
    def test_prints_snapshot_with_state_counters(self):
        code, out = _cli("observe", "--l", "8", "--seed", "1")
        assert code == 0
        assert "controller.state_cycles{state=MUL1}" in out
        assert "exponentiator.operations{kind=square}" in out

    def test_json_snapshot_and_metrics_out(self, tmp_path):
        path = str(tmp_path / "m.json")
        code, out = _cli("observe", "--l", "8", "--json", "--metrics-out", path)
        assert code == 0
        doc = json.loads(open(path).read())
        names = {row["name"] for row in doc["counters"]}
        assert "mmmc.multiplications" in names
        # stdout carries the same snapshot as JSON
        assert '"mmmc.multiplications"' in out

    def test_gate_flag_populates_hdl_metrics(self):
        code, out = _cli("observe", "--l", "6", "--gate")
        assert code == 0
        assert "hdl.gate_evals" in out

    def test_observe_can_trace(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli("observe", "--l", "8", "--trace", path)
        assert code == 0
        doc = json.loads(open(path).read())
        assert validate_chrome_trace(doc) == []


class TestMultiplyFlags:
    def test_multiply_trace_and_metrics(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli(
            "multiply", "300", "150", "197",
            "--model", "mmmc", "--arch", "paper",
            "--trace", path, "--metrics",
        )
        assert code == 0
        assert "controller.state_cycles" in out
        doc = json.loads(open(path).read())
        assert validate_chrome_trace(doc) == []
        (mmm,) = [e for e in doc["traceEvents"] if e.get("name") == "mmm"]
        assert mmm["dur"] == 3 * 8 + 4

    def test_golden_model_yields_empty_metrics(self):
        code, out = _cli(
            "multiply", "300", "150", "197", "--model", "golden", "--metrics"
        )
        assert code == 0
        assert "(no metrics recorded)" in out


class TestExponentiateTraceEndToEnd:
    def _check_trace_against_cycles(self, trace_doc, cycles):
        assert validate_chrome_trace(trace_doc) == []
        spans = [e for e in trace_doc["traceEvents"] if e["ph"] == "X"]
        exp_total = sum(e["dur"] for e in spans if e["name"] == "exponentiate")
        mmm_total = sum(e["dur"] for e in spans if e["name"] == "mmm")
        op_total = sum(
            e["dur"]
            for e in spans
            if e["name"] in ("pre", "square", "multiply", "post")
        )
        assert exp_total == cycles
        assert mmm_total == cycles
        assert op_total == cycles

    def test_in_process(self, tmp_path):
        path = str(tmp_path / "t.json")
        code, out = _cli(
            "exponentiate", "100", "11", "197",
            "--engine", "rtl", "--trace", path, "--metrics",
        )
        assert code == 0
        cycles = int(re.search(r"(\d+) cycles", out).group(1))
        self._check_trace_against_cycles(json.loads(open(path).read()), cycles)

    def test_subprocess_python_m_repro(self, tmp_path):
        """The acceptance criterion, verbatim: ``python -m repro …``."""
        path = str(tmp_path / "out.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "exponentiate",
                "100", "43", "197", "--engine", "rtl", "--trace", path,
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=str(tmp_path),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        cycles = int(re.search(r"(\d+) cycles", proc.stdout).group(1))
        # exponent 43 = 0b101011: 5 squares + 3 multiplies + pre + post
        # at 3l+5 = 29 cycles each (corrected array).
        assert cycles == 10 * 29
        self._check_trace_against_cycles(json.loads(open(path).read()), cycles)
