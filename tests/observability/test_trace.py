"""Unit tests for the span tracer and Chrome trace-event export."""

import json

import pytest

from repro.observability.trace import (
    CycleClock,
    REQUEST_SPAN,
    SpanTracer,
    validate_chrome_trace,
)


class TestCycleClock:
    def test_advance_and_reset(self):
        clk = CycleClock()
        clk.advance()
        clk.advance(5)
        assert clk.now == 6
        clk.reset()
        assert clk.now == 0


class TestSpanTracer:
    def test_invalid_detail_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(detail="everything")

    def test_nested_spans_become_complete_events(self):
        tr = SpanTracer()
        tr.begin("outer", "cat")
        tr.clock.advance(3)
        tr.begin("inner", "cat")
        tr.clock.advance(2)
        tr.end()
        tr.clock.advance(1)
        tr.end(extra="yes")
        inner, outer = tr.events
        assert (inner["name"], inner["ts"], inner["dur"]) == ("inner", 3, 2)
        assert (outer["name"], outer["ts"], outer["dur"]) == ("outer", 0, 6)
        assert outer["args"]["extra"] == "yes"
        assert all(e["ph"] == "X" for e in tr.events)

    def test_end_with_empty_stack_is_tolerated(self):
        tr = SpanTracer()
        assert tr.end() is None
        assert tr.events == []

    def test_complete_instant_counter_events(self):
        tr = SpanTracer()
        tr.complete("seg", ts=4, dur=1, cat="controller")
        tr.instant("marker", cycle=7)
        tr.counter("gates", 120)
        phases = [e["ph"] for e in tr.events]
        assert phases == ["X", "i", "C"]
        assert tr.events[2]["args"] == {"value": 120}

    def test_span_cycles_sums_by_name(self):
        tr = SpanTracer()
        tr.complete("mmm", ts=0, dur=28)
        tr.complete("mmm", ts=28, dur=28)
        tr.complete("other", ts=0, dur=5)
        assert tr.span_cycles("mmm") == 56
        assert len(tr.spans()) == 3
        assert len(tr.spans("other")) == 1

    def test_export_closes_open_spans_without_mutating(self):
        tr = SpanTracer()
        tr.begin("open", "cat")
        tr.clock.advance(9)
        doc = tr.to_dict()
        closed = [e for e in doc["traceEvents"] if e.get("name") == "open"]
        assert closed[0]["dur"] == 9
        assert closed[0]["args"]["unclosed"] is True
        assert tr.open_spans == 1  # the live stack is untouched
        assert tr.events == []

    def test_export_has_metadata_and_validates(self):
        tr = SpanTracer(detail="state")
        with_clock = tr.clock
        tr.begin("exponentiate", "exponentiator")
        with_clock.advance(28)
        tr.end()
        doc = tr.to_dict()
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert "process_name" in names and "thread_name" in names
        assert doc["otherData"]["detail"] == "state"
        assert validate_chrome_trace(doc) == []

    def test_json_roundtrip(self, tmp_path):
        tr = SpanTracer()
        tr.complete("s", ts=0, dur=1)
        path = tmp_path / "t.json"
        tr.write(str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_bad_phase_and_missing_fields(self):
        bad = {
            "traceEvents": [
                {"ph": "?", "name": "x", "pid": 1},
                {"ph": "X", "name": "x", "pid": 1, "ts": 0},  # no dur
                {"ph": "X", "pid": 1, "ts": 0, "dur": 1},  # no name
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 3

    def test_rejects_unbalanced_begin_end(self):
        doc = {"traceEvents": [{"ph": "B", "name": "a", "pid": 1, "ts": 0}]}
        assert any("never closed" in p for p in validate_chrome_trace(doc))
        doc = {"traceEvents": [{"ph": "E", "name": "a", "pid": 1, "ts": 0}]}
        assert any("without matching" in p for p in validate_chrome_trace(doc))

    def test_accepts_minimal_valid_trace(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 2},
                {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 1, "s": "t"},
            ]
        }
        assert validate_chrome_trace(doc) == []


def _worker_session(cycles=100, name="exponentiate"):
    """A finished worker-local tracer session to adopt."""
    w = SpanTracer(detail="op")
    w.begin(name, cat="exponentiator")
    w.clock.advance(cycles)
    w.end(cycles=cycles)
    return w


class TestAdoptSpan:
    def test_adopted_session_nests_under_request_span(self):
        parent = SpanTracer()
        w = _worker_session(120)
        parent.adopt_span(
            REQUEST_SPAN, w.events, w.clock.now, worker="pid9", request_id="r1"
        )
        doc = parent.to_dict()
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        request = next(e for e in spans if e["name"] == REQUEST_SPAN)
        inner = next(e for e in spans if e["name"] == "exponentiate")
        # Same worker track, time containment, correlation labels on both.
        assert request["tid"] == inner["tid"] != parent.TID
        assert request["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= request["ts"] + request["dur"]
        for event in (request, inner):
            assert event["args"]["worker"] == "pid9"
            assert event["args"]["request_id"] == "r1"

    def test_sessions_on_one_worker_track_lay_end_to_end(self):
        parent = SpanTracer()
        for rid, cycles in (("r1", 100), ("r2", 80)):
            w = _worker_session(cycles)
            parent.adopt_span(
                REQUEST_SPAN, w.events, w.clock.now, worker="pid9", request_id=rid
            )
        spans = [
            e
            for e in parent.to_dict()["traceEvents"]
            if e.get("ph") == "X" and e["name"] == REQUEST_SPAN
        ]
        first, second = sorted(spans, key=lambda e: e["ts"])
        assert first["ts"] + first["dur"] <= second["ts"]

    def test_each_worker_gets_its_own_named_track(self):
        parent = SpanTracer()
        for worker in ("pid1", "pid2"):
            w = _worker_session(10)
            parent.adopt_span(
                REQUEST_SPAN, w.events, w.clock.now, worker=worker, request_id="r"
            )
        doc = parent.to_dict()
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert {"worker:pid1", "worker:pid2"} <= names
        tids = {
            e["tid"]
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == REQUEST_SPAN
        }
        assert len(tids) == 2


class TestWorkerSpanNestingValidation:
    def test_worker_span_escaping_its_request_window_is_flagged(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X", "name": REQUEST_SPAN, "pid": 1, "tid": 2,
                    "ts": 0, "dur": 10,
                    "args": {"request_id": "r1", "worker": "w"},
                },
                {
                    "ph": "X", "name": "exponentiate", "pid": 1, "tid": 2,
                    "ts": 5, "dur": 20,
                    "args": {"request_id": "r1", "worker": "w"},
                },
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("not nested inside its request span" in p for p in problems)

    def test_worker_span_with_no_request_span_is_flagged(self):
        doc = {
            "traceEvents": [
                {
                    "ph": "X", "name": "exponentiate", "pid": 1, "tid": 2,
                    "ts": 0, "dur": 5,
                    "args": {"request_id": "orphan", "worker": "w"},
                },
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("has no" in p and REQUEST_SPAN in p for p in problems)

    def test_properly_nested_worker_spans_pass(self):
        parent = SpanTracer()
        w = _worker_session(50)
        parent.adopt_span(
            REQUEST_SPAN, w.events, w.clock.now, worker="pid3", request_id="ok"
        )
        assert validate_chrome_trace(parent.to_dict()) == []
