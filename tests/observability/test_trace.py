"""Unit tests for the span tracer and Chrome trace-event export."""

import json

import pytest

from repro.observability.trace import (
    CycleClock,
    SpanTracer,
    validate_chrome_trace,
)


class TestCycleClock:
    def test_advance_and_reset(self):
        clk = CycleClock()
        clk.advance()
        clk.advance(5)
        assert clk.now == 6
        clk.reset()
        assert clk.now == 0


class TestSpanTracer:
    def test_invalid_detail_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(detail="everything")

    def test_nested_spans_become_complete_events(self):
        tr = SpanTracer()
        tr.begin("outer", "cat")
        tr.clock.advance(3)
        tr.begin("inner", "cat")
        tr.clock.advance(2)
        tr.end()
        tr.clock.advance(1)
        tr.end(extra="yes")
        inner, outer = tr.events
        assert (inner["name"], inner["ts"], inner["dur"]) == ("inner", 3, 2)
        assert (outer["name"], outer["ts"], outer["dur"]) == ("outer", 0, 6)
        assert outer["args"]["extra"] == "yes"
        assert all(e["ph"] == "X" for e in tr.events)

    def test_end_with_empty_stack_is_tolerated(self):
        tr = SpanTracer()
        assert tr.end() is None
        assert tr.events == []

    def test_complete_instant_counter_events(self):
        tr = SpanTracer()
        tr.complete("seg", ts=4, dur=1, cat="controller")
        tr.instant("marker", cycle=7)
        tr.counter("gates", 120)
        phases = [e["ph"] for e in tr.events]
        assert phases == ["X", "i", "C"]
        assert tr.events[2]["args"] == {"value": 120}

    def test_span_cycles_sums_by_name(self):
        tr = SpanTracer()
        tr.complete("mmm", ts=0, dur=28)
        tr.complete("mmm", ts=28, dur=28)
        tr.complete("other", ts=0, dur=5)
        assert tr.span_cycles("mmm") == 56
        assert len(tr.spans()) == 3
        assert len(tr.spans("other")) == 1

    def test_export_closes_open_spans_without_mutating(self):
        tr = SpanTracer()
        tr.begin("open", "cat")
        tr.clock.advance(9)
        doc = tr.to_dict()
        closed = [e for e in doc["traceEvents"] if e.get("name") == "open"]
        assert closed[0]["dur"] == 9
        assert closed[0]["args"]["unclosed"] is True
        assert tr.open_spans == 1  # the live stack is untouched
        assert tr.events == []

    def test_export_has_metadata_and_validates(self):
        tr = SpanTracer(detail="state")
        with_clock = tr.clock
        tr.begin("exponentiate", "exponentiator")
        with_clock.advance(28)
        tr.end()
        doc = tr.to_dict()
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert "process_name" in names and "thread_name" in names
        assert doc["otherData"]["detail"] == "state"
        assert validate_chrome_trace(doc) == []

    def test_json_roundtrip(self, tmp_path):
        tr = SpanTracer()
        tr.complete("s", ts=0, dur=1)
        path = tmp_path / "t.json"
        tr.write(str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_bad_phase_and_missing_fields(self):
        bad = {
            "traceEvents": [
                {"ph": "?", "name": "x", "pid": 1},
                {"ph": "X", "name": "x", "pid": 1, "ts": 0},  # no dur
                {"ph": "X", "pid": 1, "ts": 0, "dur": 1},  # no name
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 3

    def test_rejects_unbalanced_begin_end(self):
        doc = {"traceEvents": [{"ph": "B", "name": "a", "pid": 1, "ts": 0}]}
        assert any("never closed" in p for p in validate_chrome_trace(doc))
        doc = {"traceEvents": [{"ph": "E", "name": "a", "pid": 1, "ts": 0}]}
        assert any("without matching" in p for p in validate_chrome_trace(doc))

    def test_accepts_minimal_valid_trace(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 2},
                {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 1, "s": "t"},
            ]
        }
        assert validate_chrome_trace(doc) == []
