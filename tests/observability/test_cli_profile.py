"""``repro profile`` and ``repro top``: the CLI face of the profiler.

``profile`` runs a real (small) workload, so these tests keep ``--l``
low and the serving stage short; ``top`` is tested frame-by-frame
against a live :class:`TelemetryServer` and via its pure
``_render_top_frame`` renderer.
"""

import io
import json

from repro.cli import _render_top_frame, main
from repro.observability import load_snapshot, check_requirements, validate_chrome_trace


def _cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestProfileCommand:
    def test_occupancy_stage_only(self):
        code, out = _cli("profile", "--l", "8", "--requests", "0")
        assert code == 0
        assert "=== utilization profile ===" in out
        assert "cycles by phase:" in out
        assert "2i+j model" in out
        assert "occupancy heatmap [array]" in out
        # no serving stage -> no serving section
        assert "serving wall time:" not in out

    def test_analytic_delta_is_zero_for_rtl_array(self):
        code, out = _cli("profile", "--l", "8", "--requests", "0")
        assert code == 0
        array_line = next(
            ln for ln in out.splitlines() if ln.strip().startswith("array")
        )
        assert "delta +0.00%" in array_line

    def test_serving_stage_fills_lane_and_queue_sections(self):
        code, out = _cli("profile", "--l", "8", "--requests", "12")
        assert code == 0
        assert "lane fill" in out
        assert "serving wall time:" in out
        assert "busy by worker:" in out
        # 12 requests over 6 distinct (modulus, exponent) pairs -> fill 2
        assert "p50=2" in out

    def test_artifacts_and_floor_gating(self, tmp_path):
        metrics = str(tmp_path / "m.json")
        trace = str(tmp_path / "t.json")
        report = str(tmp_path / "report.txt")
        csv = str(tmp_path / "cells.csv")
        code, out = _cli(
            "profile", "--l", "8", "--requests", "0",
            "--metrics-out", metrics, "--trace", trace,
            "--out", report, "--csv", csv,
        )
        assert code == 0
        assert open(report).read().startswith("=== utilization profile ===")
        assert open(csv).read().startswith("cycle,")
        assert validate_chrome_trace(json.load(open(trace))) == []
        snap = load_snapshot(metrics)
        # the gauges the CI floors gate, present and single-valued
        assert check_requirements(
            snap, ["hdl.idle_fraction>=0.6", "hdl.idle_fraction<=0.7"]
        ) == []

    def test_deterministic_under_fixed_seed(self):
        _, a = _cli("profile", "--l", "8", "--requests", "0", "--seed", "5")
        _, b = _cli("profile", "--l", "8", "--requests", "0", "--seed", "5")
        assert a == b


class TestTopFrame:
    EXPO = "\n".join(
        [
            "# TYPE serving_requests_total counter",
            'serving_requests_total{status="completed"} 40',
            'serving_requests_total{status="rejected"} 2',
            "# TYPE serving_scheduler_depth gauge",
            "serving_scheduler_depth 3",
            "# TYPE hdl_lane_fill histogram",
            'hdl_lane_fill_bucket{lanes="64",le="8"} 4',
            'hdl_lane_fill_bucket{lanes="64",le="+Inf"} 4',
            'hdl_lane_fill_sum{lanes="64"} 32',
            'hdl_lane_fill_count{lanes="64"} 4',
            "# TYPE hdl_idle_fraction gauge",
            "hdl_idle_fraction 0.663",
            "# TYPE serving_worker_busy_us_total counter",
            'serving_worker_busy_us_total{worker="w0"} 5000',
            "",
        ]
    )

    def test_renders_sections_from_exposition(self):
        frame = _render_top_frame("http://x/metrics", self.EXPO)
        assert "completed=40" in frame
        assert "rejected=2" in frame
        assert "scheduler=3" in frame
        assert "mean=8.0" in frame
        assert "66.3%" in frame
        assert "w0=5ms" in frame

    def test_empty_exposition_renders_dashes(self):
        frame = _render_top_frame("http://x/metrics", "")
        assert "completed=0" in frame
        assert "mean=-" in frame


class TestTopCommand:
    def _server(self):
        from repro.observability import MetricsRegistry
        from repro.serving import TelemetryServer

        reg = MetricsRegistry()
        reg.counter("serving.requests").inc(7, status="completed", backend="gate")
        reg.gauge("hdl.idle_fraction").set(0.5)
        return TelemetryServer(reg, port=0)

    def test_once_against_live_endpoint(self):
        with self._server() as srv:
            code, out = _cli("top", f"http://127.0.0.1:{srv.port}", "--once")
        assert code == 0
        assert "repro top" in out
        assert "completed=7" in out

    def test_url_may_point_at_metrics_directly(self):
        with self._server() as srv:
            code, out = _cli(
                "top", f"http://127.0.0.1:{srv.port}/metrics", "--once"
            )
        assert code == 0
        assert "completed=7" in out

    def test_unreachable_endpoint_is_one_line_error(self):
        code, out = _cli("top", "http://127.0.0.1:1/metrics", "--once")
        assert code == 1
        assert "Traceback" not in out
        assert "repro top:" in out
