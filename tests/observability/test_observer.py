"""Integration tests: the instrumented simulators report correct numbers.

These pin the observability layer against the paper's timing facts: one
``l=8`` paper-mode multiplication charges exactly ``3l+4`` cycles to the
MUL+OUT states, span totals equal the measured cycle counters, and a
disabled observer leaves the simulation results bit-identical.
"""

import pytest

from repro.montgomery.params import MontgomeryContext
from repro.observability import (
    OBS,
    MetricsRegistry,
    SpanTracer,
    observe,
    validate_chrome_trace,
)
from repro.systolic.exponentiator import ModularExponentiator
from repro.systolic.mmmc import MMMC

N8 = 197  # l = 8
X, Y = 300, 150


class TestObserverLifecycle:
    def test_disabled_by_default(self):
        assert OBS.enabled is False
        assert OBS.metrics is None and OBS.tracer is None

    def test_methods_are_noops_when_disabled(self):
        OBS.count("x")
        OBS.gauge("x", 1)
        OBS.record("x", 1)
        OBS.begin("x")
        OBS.end()
        OBS.instant("x")
        OBS.counter_event("x", 1)
        assert OBS.enabled is False

    def test_observe_installs_and_restores(self):
        reg = MetricsRegistry()
        with observe(metrics=reg):
            assert OBS.enabled and OBS.metrics is reg
        assert not OBS.enabled and OBS.metrics is None

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe(metrics=MetricsRegistry()):
                raise RuntimeError("boom")
        assert not OBS.enabled

    def test_sessions_nest(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with observe(metrics=outer):
            with observe(metrics=inner):
                OBS.count("c")
            OBS.count("c")
        assert inner.counter("c").value() == 1
        assert outer.counter("c").value() == 1

    def test_tracer_clock_becomes_session_clock(self):
        tr = SpanTracer()
        with observe(tracer=tr):
            OBS.tick(5)
        assert tr.clock.now == 5


class TestStateHistogram:
    def test_paper_mode_l8_multiplication_is_exactly_3l_plus_4(self):
        reg = MetricsRegistry()
        with observe(metrics=reg):
            MMMC(8, mode="paper").multiply(X, Y, N8)
        states = reg.counter("controller.state_cycles")
        mul_out = (
            states.value(state="MUL1")
            + states.value(state="MUL2")
            + states.value(state="OUT")
        )
        assert mul_out == 3 * 8 + 4
        # The single IDLE tick is the load cycle overlapping START.
        assert states.value(state="IDLE") == 1

    def test_corrected_mode_adds_one_cycle(self):
        reg = MetricsRegistry()
        with observe(metrics=reg):
            run = MMMC(8, mode="corrected").multiply(X, Y, N8)
        states = reg.counter("controller.state_cycles")
        mul_out = (
            states.value(state="MUL1")
            + states.value(state="MUL2")
            + states.value(state="OUT")
        )
        assert mul_out == 3 * 8 + 5 == run.cycles

    def test_mmmc_counters_and_histogram(self):
        reg = MetricsRegistry()
        with observe(metrics=reg):
            mmmc = MMMC(8, mode="paper")
            mmmc.multiply(X, Y, N8)
            mmmc.multiply(Y, X, N8)
        assert reg.counter("mmmc.multiplications").value() == 2
        assert reg.counter("array.loads").value() == 2
        assert reg.counter("array.cycles").value() == 2 * (3 * 8 + 3)
        series = reg.histogram("mmmc.multiplication_cycles").series()
        assert series.count == 2 and series.min == series.max == 3 * 8 + 4


class TestSpans:
    def test_mmm_span_duration_equals_measured_cycles(self):
        tr = SpanTracer()
        with observe(tracer=tr):
            run = MMMC(8, mode="paper").multiply(X, Y, N8)
        (span,) = tr.spans("mmm")
        assert span["dur"] == run.cycles == 3 * 8 + 4
        assert span["args"]["l"] == 8 and span["args"]["mode"] == "paper"

    def test_state_detail_emits_one_segment_per_charged_cycle(self):
        tr = SpanTracer(detail="state")
        with observe(tracer=tr):
            run = MMMC(8, mode="paper").multiply(X, Y, N8)
        segments = [e for e in tr.events if e["name"].startswith("state:")]
        assert len(segments) == run.cycles
        assert all(e["dur"] == 1 for e in segments)
        # Segments tile the span with no gaps.
        assert [e["ts"] for e in segments] == list(range(run.cycles))
        assert segments[-1]["name"] == "state:OUT"

    def test_op_detail_omits_segments(self):
        tr = SpanTracer(detail="op")
        with observe(tracer=tr):
            MMMC(8, mode="paper").multiply(X, Y, N8)
        assert not [e for e in tr.events if e["name"].startswith("state:")]

    @pytest.mark.parametrize("engine", ["rtl", "golden"])
    def test_exponentiation_span_totals_agree_with_counters(self, engine):
        ctx = MontgomeryContext(N8)
        tr = SpanTracer()
        reg = MetricsRegistry()
        with observe(metrics=reg, tracer=tr):
            run = ModularExponentiator(ctx, engine=engine).exponentiate(100, 0b110101)
        assert tr.span_cycles("exponentiate") == run.cycles
        per_op = sum(
            tr.span_cycles(kind) for kind in ("pre", "square", "multiply", "post")
        )
        assert per_op == run.cycles
        ops = reg.counter("exponentiator.operations")
        assert ops.value(kind="square") == 0b110101 .bit_length() - 1
        assert ops.value(kind="multiply") == bin(0b110101).count("1") - 1
        assert validate_chrome_trace(tr.to_dict()) == []

    def test_rtl_exponentiation_nests_mmm_spans(self):
        ctx = MontgomeryContext(N8)
        tr = SpanTracer()
        with observe(tracer=tr):
            run = ModularExponentiator(ctx, engine="rtl").exponentiate(100, 0b1011)
        assert tr.span_cycles("mmm") == run.cycles
        assert len(tr.spans("mmm")) == run.num_multiplications


class TestHdlInstrumentation:
    def test_gate_level_multiply_populates_hdl_counters(self):
        from repro.systolic.mmmc_netlist import GateLevelMMMC

        reg = MetricsRegistry()
        with observe(metrics=reg):
            GateLevelMMMC(4, "paper").multiply(10, 7, 13)
        assert reg.counter("hdl.cycles").value() > 0
        assert reg.counter("hdl.gate_evals").value() > 0
        assert reg.counter("hdl.dff_captures").value() > 0
        gates = reg.histogram("hdl.gates_per_cycle").series()
        assert gates.count > 0 and gates.min == gates.max  # fixed netlist


class TestDisabledModeEquivalence:
    def test_results_identical_with_and_without_observer(self):
        baseline = MMMC(8, mode="paper").multiply(X, Y, N8)
        with observe(metrics=MetricsRegistry(), tracer=SpanTracer(detail="cycle")):
            observed = MMMC(8, mode="paper").multiply(X, Y, N8)
        disabled = MMMC(8, mode="paper").multiply(X, Y, N8)
        assert baseline == observed == disabled

    def test_exponentiation_identical_with_and_without_observer(self):
        ctx = MontgomeryContext(N8)

        def run():
            return ModularExponentiator(ctx, engine="rtl").exponentiate(77, 0b10111)

        baseline = run()
        with observe(metrics=MetricsRegistry(), tracer=SpanTracer(detail="state")):
            observed = run()
        assert (baseline.result, baseline.cycles, baseline.operations) == (
            observed.result,
            observed.cycles,
            observed.operations,
        )
