"""Utilization profiler: attribution, exported gauges, Prometheus parsing.

The profiler reads metrics other layers recorded; these tests feed it
hand-built registries (exact arithmetic, no simulation) plus one real
exponentiation to pin the end-to-end phase split.  The Prometheus half
covers the text-exposition contract ``repro top`` scrapes: real
cumulative ``_bucket`` series, the 0.0.4 Content-Type, and
``parse_prometheus_text`` as the inverse of ``to_prometheus``.
"""

import urllib.request

import pytest

from repro.observability import (
    MetricsRegistry,
    OccupancyRecorder,
    attribute_cycles,
    attribute_serving,
    export_utilization_gauges,
    check_requirements,
    observe,
    render_report,
)
from repro.observability.metrics import parse_prometheus_text


def _cycles_registry():
    reg = MetricsRegistry()
    hist = reg.histogram("exponentiator.operation_cycles")
    hist.observe(100, kind="pre")
    for _ in range(3):
        hist.observe(200, kind="square")
    hist.observe(200, kind="multiply")
    hist.observe(50, kind="window-op")
    hist.observe(100, kind="post")
    return reg


class TestAttributeCycles:
    def test_phase_split(self):
        phases = attribute_cycles(_cycles_registry())
        assert phases["precompute"] == {
            "cycles": 100,
            "operations": 1,
            "fraction": 100 / 1050,
        }
        assert phases["mmm-squares"]["cycles"] == 600
        # multiply + window-op fold into one phase
        assert phases["mmm-multiplies"] == {
            "cycles": 250,
            "operations": 2,
            "fraction": 250 / 1050,
        }
        assert phases["drain"]["cycles"] == 100
        assert phases["total"]["cycles"] == 1050

    def test_empty_registry_reports_zeros(self):
        phases = attribute_cycles(MetricsRegistry())
        assert phases["total"]["cycles"] == 0
        assert phases["precompute"]["fraction"] == 0.0

    def test_real_exponentiation_covers_every_phase(self):
        import random

        from repro.montgomery.params import precompute_montgomery_constants
        from repro.systolic.exponentiator import ModularExponentiator
        from repro.utils.rng import random_odd_modulus

        rng = random.Random(3)
        ctx = precompute_montgomery_constants(random_odd_modulus(16, rng))
        reg = MetricsRegistry()
        with observe(metrics=reg):
            ModularExponentiator(ctx, engine="rtl").exponentiate(
                rng.randrange(ctx.modulus), 0b10110
            )
        phases = attribute_cycles(reg)
        assert phases["precompute"]["operations"] == 1
        assert phases["drain"]["operations"] == 1
        assert phases["mmm-squares"]["operations"] == 4  # bitlen-1 squares
        assert sum(
            phases[p]["fraction"]
            for p in ("precompute", "mmm-squares", "mmm-multiplies", "drain")
        ) == pytest.approx(1.0)


class TestAttributeServing:
    def test_wall_time_split_and_workers(self):
        reg = MetricsRegistry()
        reg.histogram("serving.queue_wait_us").observe(100, backend="gate")
        reg.histogram("serving.queue_wait_us").observe(300, backend="gate")
        reg.histogram("serving.request_wall_us").observe(500, backend="gate")
        reg.histogram("serving.verify_wall_us").observe(40, backend="gate")
        reg.counter("serving.worker_busy_us").inc(450, worker="w0")
        reg.counter("serving.worker_busy_us").inc(50, worker="w1")
        serving = attribute_serving(reg)
        assert serving["queue_wait_us"] == 400
        assert serving["execution_us"] == 500
        assert serving["verify_us"] == 40
        assert serving["total_us"] == 940
        assert serving["workers"] == {"w0": 450, "w1": 50}

    def test_empty_registry(self):
        serving = attribute_serving(MetricsRegistry())
        assert serving["total_us"] == 0
        assert serving["workers"] == {}
        assert serving["shards"] == {}
        assert serving["queue_wait_p50_us"] is None

    def test_per_shard_gauges_folded_by_shard(self):
        reg = MetricsRegistry()
        reg.gauge("serving.shard_busy_fraction").set(0.8, shard="0")
        reg.gauge("serving.shard_busy_fraction").set(0.4, shard="1")
        reg.gauge("serving.shard_queue_depth").set(3, shard="0")
        reg.gauge("serving.shard_cache_hit_rate").set(0.9, shard="1")
        serving = attribute_serving(reg)
        assert serving["shards"] == {
            "0": {"busy_fraction": 0.8, "queue_depth": 3},
            "1": {"busy_fraction": 0.4, "cache_hit_rate": 0.9},
        }

    def test_render_report_shows_shard_section(self):
        from repro.observability.profiler import render_report

        reg = MetricsRegistry()
        reg.gauge("serving.shard_busy_fraction").set(0.75, shard="0")
        reg.gauge("serving.shard_queue_depth").set(2, shard="0")
        reg.gauge("serving.shard_cache_hit_rate").set(0.5, shard="0")
        report = render_report(reg)
        assert "shards (modulus-homed data plane):" in report
        assert "shard0" in report and "75.0%" in report


class TestExportUtilizationGauges:
    def test_headline_gauges_are_single_series(self):
        reg = MetricsRegistry()
        occ = OccupancyRecorder()
        occ.sample("array", 0, 0b0001, 4)  # idle 0.75
        occ.sample("gate", 0, 0b0011, 4)  # idle 0.50
        for fill in (8, 8, 8):
            reg.histogram("hdl.lane_fill").observe(fill, lanes=64)
        export_utilization_gauges(reg, occ)
        # one unlabeled series -> check_requirements sums exactly one value
        snap = reg.snapshot()
        idle_rows = [g for g in snap["gauges"] if g["name"] == "hdl.idle_fraction"]
        assert len(idle_rows) == 1 and idle_rows[0]["labels"] == {}
        assert idle_rows[0]["value"] == 0.75  # array is the primary source
        assert (
            check_requirements(
                snap,
                [
                    "hdl.idle_fraction>=0.7",
                    "hdl.idle_fraction<=0.8",
                    "serving.lane_fill_p50>=8",
                ],
            )
            == []
        )
        by_source = {
            g["labels"]["source"]: g["value"]
            for g in snap["gauges"]
            if g["name"] == "hdl.occupancy_idle_fraction"
        }
        assert by_source == {"array": 0.75, "gate": 0.5}

    def test_gate_source_is_fallback_primary(self):
        reg = MetricsRegistry()
        occ = OccupancyRecorder()
        occ.sample("gate", 0, 0b0001, 4)
        export_utilization_gauges(reg, occ)
        rows = [g for g in reg.snapshot()["gauges"] if g["name"] == "hdl.idle_fraction"]
        assert rows and rows[0]["value"] == 0.75

    def test_no_data_exports_nothing(self):
        reg = MetricsRegistry()
        export_utilization_gauges(reg, OccupancyRecorder())
        assert "hdl.idle_fraction" not in reg
        assert "serving.lane_fill_p50" not in reg
        assert "chip.tile_busy_fraction" not in reg
        assert "chip.fifo_depth_p95" not in reg
        assert "chip.waves_in_flight" not in reg

    def test_chip_health_trio(self):
        reg = MetricsRegistry()
        occ = OccupancyRecorder()
        # chip.tiles: one busy bit per tile; tile0 busy 2/2, tile1 1/2.
        occ.sample("chip.tiles", 0, 0b11, 2)
        occ.sample("chip.tiles", 1, 0b01, 2)
        for depth in (0, 1, 1, 2):
            reg.histogram("chip.fifo_depth").observe(depth, tile="0", dir="in")
        for waves in (2, 4, 4, 2):
            reg.histogram("chip.waves").observe(waves)
        export_utilization_gauges(reg, occ)
        snap = reg.snapshot()
        gauges = {
            (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
            for g in snap["gauges"]
        }
        assert gauges[("chip.tile_busy_fraction", ())] == 0.75
        assert gauges[("chip.tile_busy", (("tile", "0"),))] == 1.0
        assert gauges[("chip.tile_busy", (("tile", "1"),))] == 0.5
        assert gauges[("chip.waves_in_flight", ())] == 3.0
        assert ("chip.fifo_depth_p95", ()) in gauges
        # The CI gate shape: requirements over the exported gauges.
        assert (
            check_requirements(
                snap,
                ["chip.tile_busy_fraction>=0.5", "chip.waves_in_flight>=2"],
            )
            == []
        )


class TestRenderReport:
    def test_sections_appear_when_data_exists(self):
        reg = _cycles_registry()
        reg.histogram("hdl.lane_fill").observe(8, lanes=64)
        reg.counter("hdl.wasted_lane_cycles").inc(100)
        reg.histogram("serving.queue_wait_us").observe(10)
        reg.histogram("serving.request_wall_us").observe(90)
        occ = OccupancyRecorder()
        occ.sample("array", 0, 0b01, 2)
        report = render_report(reg, occ, l=64)
        assert "cycles by phase:" in report
        assert "occupancy by source:" in report
        assert "2i+j model" in report
        assert "lane fill" in report and "wasted_lane_cycles=100" in report
        assert "serving wall time:" in report
        assert "occupancy heatmap [array]" in report

    def test_empty_inputs_render_header_only(self):
        report = render_report(MetricsRegistry())
        assert report.startswith("=== utilization profile ===")
        assert "cycles by phase" not in report
        assert "chip health:" not in report

    def test_chip_health_section(self):
        reg = MetricsRegistry()
        occ = OccupancyRecorder()
        occ.sample("chip.tiles", 0, 0b11, 2)
        occ.sample("chip.tiles", 1, 0b01, 2)
        reg.histogram("chip.waves").observe(3)
        reg.histogram("chip.fifo_depth").observe(1, tile="0", dir="in")
        report = render_report(reg, occ, heatmap_source=None)
        assert "chip health:" in report
        assert "tiles=2" in report and "tile0=100.0%" in report
        assert "waves in flight" in report
        assert "fifo depth p95" in report
        assert "occupancy heatmap [chip.tiles]" in report
        assert "2 tiles" in report


class TestPrometheusExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serving.requests").inc(5, status="completed")
        hist = reg.histogram("serving.request_wall_us")
        for v in (10, 20, 4000):
            hist.observe(v, backend="gate")
        reg.gauge("hdl.idle_fraction").set(0.66)
        return reg

    def test_histogram_series_are_cumulative_buckets(self):
        text = self._registry().to_prometheus()
        lines = text.splitlines()
        buckets = [
            ln for ln in lines if ln.startswith("serving_request_wall_us_bucket")
        ]
        assert buckets, text
        assert any('le="+Inf"' in ln for ln in buckets)
        # cumulative: counts never decrease as le rises, +Inf == count
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert "serving_request_wall_us_sum" in text
        assert 'serving_request_wall_us_count{backend="gate"} 3' in text
        assert "serving_requests_total" in text

    def test_parse_round_trip(self):
        reg = self._registry()
        parsed = parse_prometheus_text(reg.to_prometheus())
        assert parsed["serving_requests_total"]["type"] == "counter"
        [(labels, value)] = parsed["serving_requests_total"]["samples"]
        assert labels == {"status": "completed"} and value == 5
        assert parsed["hdl_idle_fraction"]["samples"] == [({}, 0.66)]
        bucket = parsed["serving_request_wall_us_bucket"]
        assert bucket["type"] == "histogram"
        inf = [v for lb, v in bucket["samples"] if lb["le"] == "+Inf"]
        assert inf == [3]
        count = parsed["serving_request_wall_us_count"]["samples"]
        assert count == [({"backend": "gate"}, 3)]

    def test_parse_skips_garbage_lines(self):
        parsed = parse_prometheus_text("not a metric line\n# random comment\nx 1\n")
        assert parsed["x"]["samples"] == [({}, 1)]
        assert len(parsed) == 1

    def test_scrape_content_type_is_prometheus_0_0_4(self):
        from repro.serving import TelemetryServer

        with TelemetryServer(self._registry(), port=0) as srv:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{srv.port}/metrics"
            ) as resp:
                ctype = resp.headers["Content-Type"]
                body = resp.read().decode()
        assert ctype.startswith("text/plain; version=0.0.4")
        assert "serving_request_wall_us_bucket" in body
        # what the server serves parses back losslessly
        assert parse_prometheus_text(body)["serving_requests_total"]["samples"]
