"""Unit tests for the metrics registry."""

import json

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_are_independent(self):
        c = Counter("state_cycles")
        c.inc(3, state="MUL1")
        c.inc(2, state="MUL2")
        assert c.value(state="MUL1") == 3
        assert c.value(state="MUL2") == 2
        assert c.value(state="OUT") == 0
        assert c.total() == 5

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot_rows(self):
        c = Counter("x")
        c.inc(7, state="OUT")
        assert c.snapshot() == [{"labels": {"state": "OUT"}, "value": 7}]


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(3)
        g.set(9)
        assert g.value() == 9

    def test_unset_is_none(self):
        assert Gauge("depth").value(l=8) is None


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("cycles")
        for v in (28, 28, 29):
            h.observe(v)
        s = h.series()
        assert (s.count, s.sum, s.min, s.max) == (3, 85, 28, 29)

    def test_bucketing_first_bound_gte(self):
        h = Histogram("v", buckets=(1, 4, 16))
        h.observe(1)   # <= 1
        h.observe(3)   # <= 4
        h.observe(16)  # <= 16
        h.observe(17)  # +Inf
        row = h.snapshot()[0]
        assert row["buckets"] == {"1": 1, "4": 1, "16": 1, "+Inf": 1}

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("v", buckets=(4, 2))


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg and len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, state="MUL1")
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(28)
        doc = json.loads(reg.to_json())
        assert doc["counters"][0]["name"] == "c"
        assert doc["counters"][0]["labels"] == {"state": "MUL1"}
        assert doc["gauges"][0]["value"] == 1.5
        assert doc["histograms"][0]["count"] == 1

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["counters"][0]["value"] == 1

    def test_render_text_lists_every_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3, state="OUT")
        reg.gauge("g").set(2)
        reg.histogram("h").observe(5)
        text = reg.render_text()
        assert "c{state=OUT} = 3" in text
        assert "g = 2" in text
        assert "count=1 sum=5" in text

    def test_render_text_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0
