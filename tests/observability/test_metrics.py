"""Unit tests for the metrics registry."""

import json

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("ops")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labelled_series_are_independent(self):
        c = Counter("state_cycles")
        c.inc(3, state="MUL1")
        c.inc(2, state="MUL2")
        assert c.value(state="MUL1") == 3
        assert c.value(state="MUL2") == 2
        assert c.value(state="OUT") == 0
        assert c.total() == 5

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_snapshot_rows(self):
        c = Counter("x")
        c.inc(7, state="OUT")
        assert c.snapshot() == [{"labels": {"state": "OUT"}, "value": 7}]


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("depth")
        g.set(3)
        g.set(9)
        assert g.value() == 9

    def test_unset_is_none(self):
        assert Gauge("depth").value(l=8) is None


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("cycles")
        for v in (28, 28, 29):
            h.observe(v)
        s = h.series()
        assert (s.count, s.sum, s.min, s.max) == (3, 85, 28, 29)

    def test_bucketing_first_bound_gte(self):
        h = Histogram("v", buckets=(1, 4, 16))
        h.observe(1)   # <= 1
        h.observe(3)   # <= 4
        h.observe(16)  # <= 16
        h.observe(17)  # +Inf
        row = h.snapshot()[0]
        assert row["buckets"] == {"1": 1, "4": 1, "16": 1, "+Inf": 1}

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("v", buckets=(4, 2))


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg and len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, state="MUL1")
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(28)
        doc = json.loads(reg.to_json())
        assert doc["counters"][0]["name"] == "c"
        assert doc["counters"][0]["labels"] == {"state": "MUL1"}
        assert doc["gauges"][0]["value"] == 1.5
        assert doc["histograms"][0]["count"] == 1

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["counters"][0]["value"] == 1

    def test_render_text_lists_every_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3, state="OUT")
        reg.gauge("g").set(2)
        reg.histogram("h").observe(5)
        text = reg.render_text()
        assert "c{state=OUT} = 3" in text
        assert "g = 2" in text
        assert "count=1 sum=5" in text

    def test_render_text_empty(self):
        assert "no metrics" in MetricsRegistry().render_text()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0


class TestPercentiles:
    def _uniform_1_to_100(self):
        h = Histogram("lat", buckets=tuple(range(10, 101, 10)))
        for v in range(1, 101):
            h.observe(v)
        return h

    def test_known_uniform_distribution_is_exact(self):
        h = self._uniform_1_to_100()
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0

    def test_p0_is_min_p100_is_max(self):
        h = self._uniform_1_to_100()
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100.0

    def test_single_value_series_is_exact_via_clamping(self):
        h = Histogram("lat")
        for _ in range(7):
            h.observe(28)
        assert h.percentile(50) == 28
        assert h.percentile(99) == 28

    def test_overflow_bucket_returns_observed_max(self):
        h = Histogram("lat", buckets=(10,))
        h.observe(5)
        h.observe(12345)
        assert h.percentile(99) == 12345

    def test_empty_or_missing_series_is_none(self):
        h = Histogram("lat")
        assert h.percentile(95) is None
        h.observe(1, backend="a")
        assert h.percentile(95, backend="b") is None

    def test_out_of_range_q_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_label_subset_aggregates_across_workers(self):
        h = Histogram("lat", buckets=tuple(range(10, 101, 10)))
        for v in range(1, 51):
            h.observe(v, backend="integer", worker="pid1")
        for v in range(51, 101):
            h.observe(v, backend="integer", worker="pid2")
        # Neither exact series holds the full distribution...
        assert h.series(backend="integer") is None
        # ...but the subset aggregate does.
        agg = h.aggregate(backend="integer")
        assert agg.count == 100 and agg.min == 1 and agg.max == 100
        assert h.percentile(50, backend="integer") == 50.0

    def test_snapshot_rows_carry_percentiles(self):
        h = self._uniform_1_to_100()
        row = h.snapshot()[0]
        assert row["p50"] == 50.0 and row["p95"] == 95.0 and row["p99"] == 99.0


class TestCounterTotalSubset:
    def test_subset_total_sums_matching_series(self):
        c = Counter("reqs")
        c.inc(3, backend="a", worker="w1")
        c.inc(4, backend="a", worker="w2")
        c.inc(9, backend="b", worker="w1")
        assert c.total(backend="a") == 7
        assert c.total(worker="w1") == 12
        assert c.total() == 16
        assert c.total(backend="c") == 0


class TestMerge:
    def _worker_registry(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(5, kind="square")
        reg.gauge("depth").set(3)
        for v in (10, 20, 30):
            reg.histogram("lat").observe(v)
        return reg

    def test_merge_adds_extra_labels_everywhere(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_registry(), worker="pid7")
        assert parent.counter("ops").value(kind="square", worker="pid7") == 5
        assert parent.gauge("depth").value(worker="pid7") == 3
        s = parent.histogram("lat").series(worker="pid7")
        assert s.count == 3 and s.sum == 60 and s.min == 10 and s.max == 30

    def test_merge_accepts_snapshot_dict(self):
        snap = self._worker_registry().snapshot()
        parent = MetricsRegistry()
        parent.merge(snap, worker="pid8")
        assert parent.counter("ops").total() == 5

    def test_merging_two_workers_keeps_series_separate(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_registry(), worker="pid1")
        parent.merge(self._worker_registry(), worker="pid2")
        assert parent.counter("ops").total(kind="square") == 10
        assert parent.histogram("lat").aggregate().count == 6
        assert parent.histogram("lat").series(worker="pid1").count == 3

    def test_repeated_merge_into_same_labels_accumulates(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_registry(), worker="pid1")
        parent.merge(self._worker_registry(), worker="pid1")
        s = parent.histogram("lat").series(worker="pid1")
        assert s.count == 6 and s.sum == 120


class TestPrometheusExport:
    def test_counter_gets_total_suffix_and_sanitised_name(self):
        reg = MetricsRegistry()
        reg.counter("serving.requests", "requests seen").inc(
            2, backend="integer"
        )
        text = reg.to_prometheus()
        assert "# HELP serving_requests_total requests seen" in text
        assert "# TYPE serving_requests_total counter" in text
        assert 'serving_requests_total{backend="integer"} 2' in text

    def test_gauge_renders_plain(self):
        reg = MetricsRegistry()
        reg.gauge("queue.depth").set(4)
        assert "# TYPE queue_depth gauge\nqueue_depth 4" in reg.to_prometheus()

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 20))
        for v in (5, 15, 99):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="20"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 119" in text
        assert "lat_count 3" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1, path='a"b\\c')
        assert r'path="a\"b\\c"' in reg.to_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "m.prom"
        reg.write_prometheus(str(path))
        assert "c_total 1" in path.read_text()


class TestParsePrometheusText:
    """Scrape-side robustness: `repro top` must survive hostile exposition."""

    def test_round_trip_of_own_exposition(self):
        reg = MetricsRegistry()
        reg.counter("reqs").inc(3, backend="gate")
        reg.gauge("depth").set(7)
        parsed = parse_prometheus_text(reg.to_prometheus())
        assert parsed["reqs_total"]["type"] == "counter"
        assert parsed["reqs_total"]["samples"] == [({"backend": "gate"}, 3.0)]
        assert parsed["depth"]["samples"] == [({}, 7.0)]

    def test_truncated_help_and_type_lines_are_skipped(self):
        text = "# HELP\n# TYPE\n# TYPE lonely\n# HELP x partial\nx 4\n"
        parsed = parse_prometheus_text(text)
        # the sample survives; the broken comment lines contribute nothing
        assert parsed["x"]["samples"] == [({}, 4.0)]
        assert parsed["x"]["type"] == "untyped"

    def test_nan_and_inf_values(self):
        import math

        parsed = parse_prometheus_text("a NaN\nb +Inf\nc -Inf\n")
        assert math.isnan(parsed["a"]["samples"][0][1])
        assert parsed["b"]["samples"][0][1] == math.inf
        assert parsed["c"]["samples"][0][1] == -math.inf

    def test_non_numeric_value_is_skipped(self):
        parsed = parse_prometheus_text("a 1\nb banana\n")
        assert "b" not in parsed and "a" in parsed

    def test_unescaped_quote_inside_label_value(self):
        # 'say "hi"' written WITHOUT escaping — invalid exposition.  The
        # parser must not crash or smear labels across samples.
        text = 'm{msg="say "hi"",other="ok"} 1\nnext 2\n'
        parsed = parse_prometheus_text(text)
        assert parsed["next"]["samples"] == [({}, 2.0)]
        if "m" in parsed:  # salvaged labels must at least be well-formed
            for labels, _ in parsed["m"]["samples"]:
                assert all(isinstance(v, str) for v in labels.values())

    def test_escaped_label_values_unescape(self):
        text = 'm{msg="line\\nbreak \\"q\\" back\\\\slash"} 1\n'
        (labels, value), = parse_prometheus_text(text)["m"]["samples"]
        assert labels["msg"] == 'line\nbreak "q" back\\slash'
        assert value == 1.0

    def test_garbage_lines_and_blank_lines(self):
        text = "\n\n!!! not prometheus\n{} 3\nok 1 extra trailing\nok 5\n"
        parsed = parse_prometheus_text(text)
        assert parsed.keys() == {"ok"}
        # `ok 1 extra trailing` has trailing junk -> skipped; `ok 5` kept
        assert parsed["ok"]["samples"] == [({}, 5.0)]

    def test_histogram_suffixes_inherit_base_type(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10,))
        h.observe(5)
        parsed = parse_prometheus_text(reg.to_prometheus())
        for name in ("lat_bucket", "lat_sum", "lat_count"):
            assert parsed[name]["type"] == "histogram"
