"""Unit tests for the waveform recorder and VCD export."""

from repro.hdl.waveform import WaveformRecorder, parse_vcd, vcd_id


def _recorder():
    state = {"clk": 0, "bus": 0}
    rec = WaveformRecorder(
        probes={"clk": lambda: state["clk"], "bus": lambda: state["bus"]},
        widths={"bus": 8},
    )
    return state, rec


class TestSampling:
    def test_history(self):
        state, rec = _recorder()
        for i in range(4):
            state["clk"] = i % 2
            state["bus"] = i * 3
            rec.sample()
        assert rec.cycles == 4
        assert rec.history("clk") == [0, 1, 0, 1]
        assert rec.history("bus") == [0, 3, 6, 9]

    def test_changes(self):
        state, rec = _recorder()
        for v in [0, 0, 1, 1, 0]:
            state["clk"] = v
            rec.sample()
        assert rec.changes("clk") == [(0, 0), (2, 1), (4, 0)]

    def test_width_default(self):
        _, rec = _recorder()
        assert rec.width("clk") == 1
        assert rec.width("bus") == 8


class TestAscii:
    def test_diagram_renders_all_signals(self):
        state, rec = _recorder()
        for i in range(6):
            state["clk"] = i % 2
            state["bus"] = 0xAB if i > 2 else 0
            rec.sample()
        art = rec.ascii_diagram()
        assert "clk" in art and "bus" in art
        assert "▔" in art and "▁" in art

    def test_last_window(self):
        state, rec = _recorder()
        for i in range(10):
            state["clk"] = 1
            rec.sample()
        art = rec.ascii_diagram(names=["clk"], last=3)
        line = [ln for ln in art.splitlines() if ln.startswith("clk")][0]
        assert line.count("▔") == 3


class TestVcd:
    def test_structure(self):
        state, rec = _recorder()
        for i in range(3):
            state["clk"] = i % 2
            state["bus"] = i
            rec.sample()
        vcd = rec.to_vcd()
        assert "$timescale 1 ns $end" in vcd
        assert "$var wire 1" in vcd and "$var wire 8" in vcd
        assert "$enddefinitions $end" in vcd
        # change dumps exist for both signals
        assert "#0" in vcd and "#1" in vcd and "#2" in vcd

    def test_only_changes_emitted(self):
        state, rec = _recorder()
        for _ in range(5):
            state["clk"] = 1
            rec.sample()
        vcd = rec.to_vcd()
        # one initial value change for clk, none after.
        clk_id = vcd.split("$var wire 1 ")[1][0]
        assert vcd.count(f"1{clk_id}") == 1


class TestVcdIds:
    def test_single_char_below_rollover(self):
        assert vcd_id(0) == "!"
        assert vcd_id(93) == "~"

    def test_multi_char_past_94(self):
        assert len(vcd_id(94)) == 2
        # bijective: no two indices share a code
        ids = [vcd_id(i) for i in range(500)]
        assert len(set(ids)) == 500

    def test_negative_index_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            vcd_id(-1)

    def test_dump_with_more_than_94_signals(self):
        """Regression: ids used to be chr(33+i) and collided (or walked
        into unprintable codes) past 94 probes — a full MMMC probe list
        plus per-cell taps crosses that line easily."""
        n = 120
        history = {f"sig{i:03d}": [i % 2, (i + 1) % 2] for i in range(n)}
        rec = WaveformRecorder.from_history(history, {k: 1 for k in history})
        vcd = rec.to_vcd()
        assert vcd.count("$var wire 1 ") == n
        # every id is unique and every signal round-trips with its values
        parsed = parse_vcd(vcd)
        assert len(parsed.signals) == n
        for i in range(n):
            assert parsed.history(f"sig{i:03d}") == [i % 2, (i + 1) % 2]


class TestParseVcd:
    def test_round_trip_scalars_and_vectors(self):
        state, rec = _recorder()
        values = [(0, 5), (1, 5), (0, 200), (1, 0)]
        for clk, bus in values:
            state["clk"], state["bus"] = clk, bus
            rec.sample()
        parsed = parse_vcd(rec.to_vcd())
        assert parsed.widths == {"clk": 1, "bus": 8}
        assert parsed.history("clk") == [v[0] for v in values]
        assert parsed.history("bus") == [v[1] for v in values]
        assert parsed.value_at("bus", 2) == 200

    def test_comments_are_collected(self):
        state, rec = _recorder()
        rec.sample()
        vcd = rec.to_vcd().replace(
            "$enddefinitions $end",
            "$comment flightrec window start_cycle=7 $end\n$enddefinitions $end",
        )
        parsed = parse_vcd(vcd)
        assert any("start_cycle=7" in c for c in parsed.comments)
