"""Tests for the Verilog re-interpreter: export → parse → cosimulate."""

import pytest

from repro.errors import HardwareModelError
from repro.hdl.gates import full_adder
from repro.hdl.netlist import Circuit
from repro.hdl.verilog import export_verilog
from repro.hdl.verilog_sim import cosimulate, parse_verilog
from repro.systolic.array_netlist import build_array
from repro.systolic.mmmc_netlist import build_mmmc
from repro.utils.bits import bits_to_int


def _fa():
    c = Circuit("fa")
    a, b, ci = (c.add_input(n) for n in "abc")
    s, co = full_adder(c, a, b, ci)
    c.mark_output("sum", s)
    c.mark_output("cout", co)
    return c


class TestParser:
    def test_roundtrip_structure(self):
        c = _fa()
        pm = parse_verilog(export_verilog(c).text)
        assert pm.name == "fa"
        assert pm.inputs == ["a", "b", "c"]
        assert pm.outputs == ["sum", "cout"]
        assert len(pm.ffs) == 0
        assert pm.constants  # const0/const1

    def test_ff_attributes_roundtrip(self):
        c = Circuit("seq")
        d = c.add_input("d")
        en = c.add_input("en")
        clr = c.add_input("clr")
        q = c.dff(d, name="r", enable=en, clear=clr, reset_value=1)
        c.mark_output("q", q)
        pm = parse_verilog(export_verilog(c).text)
        (ff,) = pm.ffs
        assert ff.reset_value == 1
        assert ff.enable == "en"
        assert ff.clear == "clr"

    def test_rejects_garbage(self):
        with pytest.raises(HardwareModelError):
            parse_verilog("wire x;\n")


class TestCosimulation:
    def test_combinational(self):
        assert cosimulate(_fa(), cycles=20) == 40

    @pytest.mark.parametrize("l", [4, 8])
    def test_array_netlists(self, l):
        assert cosimulate(build_array(l, "paper").circuit, cycles=25, seed=l) > 0

    def test_full_mmmc(self):
        assert cosimulate(build_mmmc(6, "corrected").circuit, cycles=50) > 0


class TestEndToEndThroughVerilog:
    def test_multiplication_through_parsed_verilog(self):
        """Drive a complete Montgomery multiplication through the PARSED
        VERILOG of the MMMC and compare against the golden algorithm —
        the exported artifact really is the machine."""
        from repro.montgomery.algorithms import montgomery_no_subtraction
        from repro.montgomery.params import MontgomeryContext

        l, n, x, y = 6, 53, 100, 71
        ports = build_mmmc(l, "corrected")
        vm = export_verilog(ports.circuit, "mmmc6")
        pm = parse_verilog(vm.text)
        sim = pm.simulator()
        sim.reset()

        def poke_bus(bus, value):
            for i, w in enumerate(bus):
                sim.poke(vm.wire_names[w.index], (value >> i) & 1)

        poke_bus(ports.x_in, x)
        poke_bus(ports.y_in, y)
        poke_bus(ports.n_in, n)
        sim.poke(vm.wire_names[ports.start.index], 1)
        sim.step()
        sim.poke(vm.wire_names[ports.start.index], 0)
        done_port = "DONE"
        for _ in range(4 * l + 16):
            sim.settle()
            done = sim.peek(done_port)
            sim.clock()
            if done:
                break
        else:
            raise AssertionError("DONE never rose in the parsed Verilog")
        sim.settle()
        result_bits = [sim.peek(f"RESULT_{b}_") for b in range(l + 1)]
        value = bits_to_int(result_bits)
        gold = montgomery_no_subtraction(MontgomeryContext(n), x, y)
        assert value == gold
