"""Unit tests for the Circuit container."""

import pytest

from repro.errors import HardwareModelError
from repro.hdl.netlist import Circuit


class TestWires:
    def test_constants_exist(self):
        c = Circuit()
        assert c.const0.index == 0
        assert c.const1.index == 1

    def test_bus_naming(self):
        c = Circuit()
        bus = c.new_bus(3, "data")
        assert [w.name for w in bus] == ["data[0]", "data[1]", "data[2]"]

    def test_foreign_wire_rejected(self):
        c1, c2 = Circuit("a"), Circuit("b")
        w = c1.add_input("x")
        with pytest.raises(HardwareModelError):
            c2.not_(w)


class TestDriving:
    def test_double_drive_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        out = c.and_(a, b)
        # A gate output is already driven; driving it again must fail.
        with pytest.raises(HardwareModelError):
            c._mark_driven(out)
        # Same for a primary input.
        with pytest.raises(HardwareModelError):
            c._mark_driven(a)

    def test_undriven_detection(self):
        c = Circuit()
        floating = c.new_wire("floating")
        a = c.add_input("a")
        c.and_(a, floating)
        assert "floating" in c.undriven_wires()
        with pytest.raises(HardwareModelError):
            c.validate()

    def test_validate_clean_circuit(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        c.mark_output("o", c.xor(a, b))
        c.validate()


class TestSequential:
    def test_dff_creation(self):
        c = Circuit()
        d = c.add_input("d")
        q = c.dff(d, name="r")
        assert len(c.dffs) == 1
        assert c.dffs[0].q == q.index

    def test_dff_bad_reset_value(self):
        c = Circuit()
        d = c.add_input("d")
        with pytest.raises(HardwareModelError):
            c.dff(d, reset_value=2)

    def test_clear_wire_tracked_as_read(self):
        c = Circuit()
        d = c.add_input("d")
        clr = c.new_wire("clr")  # deliberately undriven
        c.dff(d, clear=clr)
        assert "clr" in c.undriven_wires()


class TestStats:
    def test_stats_counts(self):
        c = Circuit("s")
        a = c.add_input("a")
        b = c.add_input("b")
        c.dff(c.or_(a, b))
        s = c.stats()
        assert s["gates"] == 1 and s["dffs"] == 1
        assert s["wires"] == c.num_wires
