"""Tests for the netlist optimization passes."""

import random

import pytest

from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit
from repro.hdl.optimize import optimize
from repro.hdl.simulator import Simulator

from tests.fpga.test_techmap_fuzz import random_circuit


def _cosim(original: Circuit, opt, cycles=25, seed=0) -> None:
    s1, s2 = Simulator(original), Simulator(opt.circuit)
    s1.reset()
    s2.reset()
    rng = random.Random(seed)
    for _ in range(cycles):
        for name, idx in original.inputs.items():
            bit = rng.getrandbits(1)
            s1.values[idx] = bit
            s2.values[opt.circuit.inputs[name]] = bit
        s1.settle()
        s2.settle()
        for name, idx in original.outputs.items():
            assert s1.values[idx] == s2.values[opt.circuit.outputs[name]], name
        s1.clock()
        s2.clock()


class TestFolding:
    def test_and_with_zero(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.and_(a, c.const0))
        opt = optimize(c)
        assert len(opt.circuit.gates) == 0
        assert opt.circuit.outputs["o"] == opt.circuit.const0.index

    def test_xor_with_one_becomes_not(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.xor(a, c.const1))
        opt = optimize(c)
        kinds = [g.kind for g in opt.circuit.gates]
        assert kinds == [GateKind.NOT]

    def test_same_input_xor_is_zero(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.xor(a, a))
        opt = optimize(c)
        assert len(opt.circuit.gates) == 0

    def test_double_inversion_removed(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.not_(c.not_(a)))
        opt = optimize(c)
        assert len(opt.circuit.gates) == 0
        assert opt.circuit.outputs["o"] == opt.circuit.inputs["a"]

    def test_constant_chain_collapses(self):
        """A whole cone of constants folds to a single constant output."""
        c = Circuit()
        a = c.add_input("a")
        w = c.and_(a, c.const0)
        w = c.or_(w, c.const0)
        w = c.xor(w, c.const0)
        c.mark_output("o", w)
        assert len(optimize(c).circuit.gates) == 0


class TestCSE:
    def test_duplicate_gates_shared(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        g1 = c.and_(a, b)
        g2 = c.and_(a, b)
        g3 = c.and_(b, a)  # commuted duplicate
        c.mark_output("o", c.xor(c.xor(g1, g2), g3))
        opt = optimize(c)
        # one AND survives; xor(g1,g2) folds to 0; xor(0, g3) passes g3.
        assert opt.gates_shared == 2
        and_count = sum(1 for g in opt.circuit.gates if g.kind is GateKind.AND)
        assert and_count == 1
        assert opt.circuit.outputs["o"] == [
            g for g in opt.circuit.gates if g.kind is GateKind.AND
        ][0].output


class TestDeadCode:
    def test_unobserved_logic_removed(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.xor(a, b)  # drives nothing
        c.mark_output("o", c.and_(a, b))
        opt = optimize(c)
        assert len(opt.circuit.gates) == 1

    def test_ff_feeding_logic_kept(self):
        c = Circuit()
        a = c.add_input("a")
        q = c.dff(c.not_(a))
        c.mark_output("o", q)
        opt = optimize(c)
        assert len(opt.circuit.dffs) == 1
        assert len(opt.circuit.gates) == 1


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_circuits(self, seed):
        c = random_circuit(seed, n_inputs=5, n_gates=50, n_ffs=4)
        _cosim(c, optimize(c), seed=seed)

    def test_mmmc_optimized_still_multiplies(self):
        """End-to-end: the optimized MMMC computes the same products."""
        from repro.montgomery.algorithms import montgomery_no_subtraction
        from repro.montgomery.params import MontgomeryContext
        from repro.systolic.mmmc_netlist import build_mmmc
        from repro.utils.bits import bits_to_int

        l, n, x, y = 6, 53, 100, 71
        ports = build_mmmc(l, "corrected")
        opt = optimize(ports.circuit)
        sim = Simulator(opt.circuit)
        sim.reset()
        oc = opt.circuit

        def poke_bus(prefix, value, width):
            for i in range(width):
                sim.values[oc.inputs[f"{prefix}[{i}]"]] = (value >> i) & 1

        poke_bus("X", x, l + 1)
        poke_bus("Y", y, l + 1)
        poke_bus("N", n, l + 1)
        sim.values[oc.inputs["START"]] = 1
        sim.step()
        sim.values[oc.inputs["START"]] = 0
        for _ in range(4 * l + 16):
            sim.settle()
            done = sim.values[oc.outputs["DONE"]]
            sim.clock()
            if done:
                break
        else:
            raise AssertionError("optimized MMMC never finished")
        sim.settle()
        bits = [sim.values[oc.outputs[f"RESULT[{b}]"]] for b in range(l + 1)]
        assert bits_to_int(bits) == montgomery_no_subtraction(
            MontgomeryContext(n), x, y
        )

    def test_idempotent(self):
        from repro.systolic.array_netlist import build_array

        c = build_array(16, "paper").circuit
        once = optimize(c)
        twice = optimize(once.circuit)
        assert len(twice.circuit.gates) == len(once.circuit.gates)

    def test_reduction_on_real_netlists(self):
        from repro.systolic.mmmc_netlist import build_mmmc

        c = build_mmmc(16, "paper").circuit
        opt = optimize(c)
        assert len(opt.circuit.gates) < len(c.gates) * 0.85
        assert len(opt.circuit.dffs) == len(c.dffs)


class TestWireMap:
    def test_surviving_wires_mapped(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        w = c.and_(a, b)
        c.mark_output("o", w)
        opt = optimize(c)
        assert opt.map_wire(w.index) == opt.circuit.outputs["o"]

    def test_dead_wire_raises(self):
        from repro.errors import HardwareModelError

        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        dead = c.xor(a, b)
        c.mark_output("o", c.and_(a, b))
        opt = optimize(c)
        with pytest.raises(HardwareModelError):
            opt.map_wire(dead.index)
