"""Unit tests for gate primitives and adder macros."""

import itertools

import pytest

from repro.hdl.gates import GATE_EVAL, GateKind, full_adder, half_adder
from repro.hdl.netlist import Circuit
from repro.hdl.simulator import Simulator


class TestGateEval:
    @pytest.mark.parametrize(
        "kind,table",
        [
            (GateKind.AND, {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
            (GateKind.OR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1}),
            (GateKind.XOR, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (GateKind.NAND, {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}),
            (GateKind.NOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}),
            (GateKind.XNOR, {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1}),
        ],
    )
    def test_truth_tables(self, kind, table):
        fn = GATE_EVAL[kind]
        for (a, b), out in table.items():
            assert fn(a, b) == out

    def test_unary(self):
        assert GATE_EVAL[GateKind.NOT](0) == 1
        assert GATE_EVAL[GateKind.NOT](1) == 0
        assert GATE_EVAL[GateKind.BUF](1) == 1

    def test_arity(self):
        assert GateKind.NOT.arity == 1
        assert GateKind.AND.arity == 2


def _simulate_adder(builder, n_inputs):
    """Exhaustively evaluate an adder macro; return {inputs: (sum, carry)}."""
    c = Circuit("adder")
    ins = [c.add_input(f"i{k}") for k in range(n_inputs)]
    s, carry = builder(c, *ins)
    c.mark_output("s", s)
    c.mark_output("c", carry)
    sim = Simulator(c)
    table = {}
    for combo in itertools.product((0, 1), repeat=n_inputs):
        for w, v in zip(ins, combo):
            sim.poke(w, v)
        sim.settle()
        table[combo] = (sim.peek(s), sim.peek(carry))
    return c, table


class TestHalfAdder:
    def test_exhaustive(self):
        _, table = _simulate_adder(lambda c, a, b: half_adder(c, a, b), 2)
        for (a, b), (s, cy) in table.items():
            assert 2 * cy + s == a + b

    def test_gate_inventory(self):
        """HA = 1 XOR + 1 AND, the paper's accounting unit."""
        c, _ = _simulate_adder(lambda c, a, b: half_adder(c, a, b), 2)
        kinds = [g.kind for g in c.gates]
        assert kinds.count(GateKind.XOR) == 1
        assert kinds.count(GateKind.AND) == 1
        assert len(kinds) == 2


class TestFullAdder:
    def test_exhaustive(self):
        _, table = _simulate_adder(lambda c, a, b, ci: full_adder(c, a, b, ci), 3)
        for (a, b, ci), (s, cy) in table.items():
            assert 2 * cy + s == a + b + ci

    def test_gate_inventory(self):
        """FA = 2 XOR + 2 AND + 1 OR (two HAs + carry OR)."""
        c, _ = _simulate_adder(lambda c, a, b, ci: full_adder(c, a, b, ci), 3)
        kinds = [g.kind for g in c.gates]
        assert kinds.count(GateKind.XOR) == 2
        assert kinds.count(GateKind.AND) == 2
        assert kinds.count(GateKind.OR) == 1
        assert len(kinds) == 5
