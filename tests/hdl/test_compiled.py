"""Differential equivalence: the compiled engine vs the interpreted simulator.

The compiled engine (:mod:`repro.hdl.compiled`) must be observationally
identical to the interpreted :class:`~repro.hdl.simulator.Simulator` —
wire for wire, cycle for cycle, including the paper-mode overflow raise.
This suite checks that on random fuzz circuits, on each of the paper's
Fig. 1 cells (exhaustive truth tables), and end-to-end on the full MMMC,
plus the kernel-cache accounting the serving layer relies on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.hdl.compiled import (
    CompiledSimulator,
    clear_kernel_cache,
    compile_kernel,
    kernel_cache_info,
)
from repro.hdl.netlist import Circuit, Wire
from repro.hdl.simulator import Simulator
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.observability import MetricsRegistry, observe
from repro.systolic.cell_netlists import (
    build_first_bit_cell,
    build_leftmost_cell,
    build_regular_cell,
    build_rightmost_cell,
)
from repro.systolic.mmmc import MMMC
from repro.systolic.mmmc_netlist import GateLevelMMMC

from tests.fpga.test_techmap_fuzz import random_circuit

# A known paper-mode carry-loss triple (see bench_overflow_finding.py).
OVERFLOW = dict(l=31, n=2094037023, x=2652540660, y=2813059522)


def _modulus(rng: random.Random, l: int) -> int:
    return (rng.getrandbits(l - 1) | (1 << (l - 1))) | 1


def _compare_state(circuit, interp, comp, lane=0):
    """Every gate output and register must agree (watch='all' keeps them
    all peekable on the compiled side)."""
    for gate in circuit.gates:
        w = Wire(circuit, gate.output)
        assert interp.peek(w) == comp.peek(w, lane), (
            f"gate {circuit.wire_names[gate.output]!r} diverged"
        )
    for ff in circuit.dffs:
        w = Wire(circuit, ff.q)
        assert interp.peek(w) == comp.peek(w, lane), (
            f"register {circuit.wire_names[ff.q]!r} diverged"
        )


def assert_engines_equivalent(circuit, *, cycles, seed):
    interp = Simulator(circuit)
    comp = CompiledSimulator(circuit, watch="all")
    interp.reset()
    comp.reset()
    _compare_state(circuit, interp, comp)
    rng = random.Random(seed)
    inputs = [Wire(circuit, idx) for idx in circuit.inputs.values()]
    for _ in range(cycles):
        for w in inputs:
            bit = rng.getrandbits(1)
            interp.poke(w, bit)
            comp.poke(w, bit)
        interp.step()
        comp.step()
        _compare_state(circuit, interp, comp)


class TestFuzzDifferential:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_circuits_match_wire_for_wire(self, seed):
        c = random_circuit(seed, n_inputs=5, n_gates=40, n_ffs=4)
        assert_engines_equivalent(c, cycles=30, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_larger_circuits(self, seed):
        c = random_circuit(7000 + seed, n_inputs=8, n_gates=150, n_ffs=10)
        assert_engines_equivalent(c, cycles=15, seed=seed)

    @given(st.integers(0, 10000))
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_driven(self, seed):
        c = random_circuit(seed, n_inputs=4, n_gates=25, n_ffs=3)
        assert_engines_equivalent(c, cycles=10, seed=seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_lanes_match_independent_interpreted_runs(self, seed):
        """K packed lanes == K separate interpreted simulations."""
        lanes = 8
        c = random_circuit(8000 + seed, n_inputs=5, n_gates=60, n_ffs=6)
        interps = [Simulator(c) for _ in range(lanes)]
        comp = CompiledSimulator(c, lanes=lanes, watch="all")
        for sim in interps:
            sim.reset()
        comp.reset()
        rngs = [random.Random(seed * 1000 + k) for k in range(lanes)]
        inputs = [Wire(c, idx) for idx in c.inputs.values()]
        for _ in range(20):
            for w in inputs:
                bits = [rng.getrandbits(1) for rng in rngs]
                for sim, bit in zip(interps, bits):
                    sim.poke(w, bit)
                comp.poke_lanes(w, bits)
            for sim in interps:
                sim.step()
            comp.step()
            for lane, sim in enumerate(interps):
                _compare_state(c, sim, comp, lane=lane)


class TestCellTruthTables:
    """Exhaustive input sweeps of the four Fig. 1 cells, both engines."""

    @staticmethod
    def _sweep(build):
        c = Circuit("cell")
        ins, outs = build(c)
        for name, w in outs.items():
            c.mark_output(name, w)
        interp = Simulator(c)
        comp = CompiledSimulator(c, watch="all")
        for pattern in range(1 << len(ins)):
            for i, w in enumerate(ins):
                bit = (pattern >> i) & 1
                interp.poke(w, bit)
                comp.poke(w, bit)
            interp.settle()
            comp.settle()
            for name, w in outs.items():
                assert interp.peek(w) == comp.peek(w), (
                    f"{name} diverged on input pattern {pattern:0{len(ins)}b}"
                )

    def test_regular_cell(self):
        def build(c):
            ins = [c.add_input(nm) for nm in ("t", "x", "y", "m", "n", "c0", "c1")]
            cell = build_regular_cell(c, *ins)
            return ins, {"t": cell.t, "c0": cell.c0, "c1": cell.c1}

        self._sweep(build)

    def test_rightmost_cell(self):
        def build(c):
            ins = [c.add_input(nm) for nm in ("t", "x", "y0")]
            cell = build_rightmost_cell(c, *ins)
            return ins, {"m": cell.m, "c0": cell.c0}

        self._sweep(build)

    def test_first_bit_cell(self):
        def build(c):
            ins = [c.add_input(nm) for nm in ("t", "x", "y1", "m", "n1", "c0")]
            cell = build_first_bit_cell(c, *ins)
            return ins, {"t": cell.t, "c0": cell.c0, "c1": cell.c1}

        self._sweep(build)

    def test_leftmost_cell(self):
        def build(c):
            ins = [c.add_input(nm) for nm in ("t", "x", "yl", "c0", "c1")]
            cell = build_leftmost_cell(c, *ins)
            return ins, {"t": cell.t, "t_next": cell.t_next}

        self._sweep(build)


class TestMMMCEndToEnd:
    @pytest.mark.parametrize("l", [2, 4, 8])
    def test_compiled_mmmc_matches_golden(self, l):
        rng = random.Random(40 + l)
        g = GateLevelMMMC(l, simulator="compiled")
        for _ in range(5):
            n = _modulus(rng, l)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            run = g.multiply(x, y, n)
            assert run.result == montgomery_no_subtraction(MontgomeryContext(n), x, y)
            assert run.cycles == 3 * l + 5

    def test_compiled_matches_interpreted_runs(self):
        l = 8
        rng = random.Random(99)
        comp = GateLevelMMMC(l, simulator="compiled")
        interp = GateLevelMMMC(l, simulator="interpreted")
        for _ in range(4):
            n = _modulus(rng, l)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            rc, ri = comp.multiply(x, y, n), interp.multiply(x, y, n)
            assert rc.result == ri.result
            assert rc.cycles == ri.cycles

    def test_lanes_end_to_end(self):
        l, lanes = 8, 4
        rng = random.Random(17)
        n = _modulus(rng, l)
        ctx = MontgomeryContext(n)
        xs = [rng.randrange(2 * n) for _ in range(lanes)]
        ys = [rng.randrange(2 * n) for _ in range(lanes)]
        g = GateLevelMMMC(l, simulator="compiled", lanes=lanes)
        runs = g.multiply_lanes(xs, ys, [n] * lanes)
        assert len(runs) == lanes
        for run, x, y in zip(runs, xs, ys):
            assert run.result == montgomery_no_subtraction(ctx, x, y)
            assert run.cycles == 3 * l + 5

    def test_short_batch_is_padded(self):
        l = 8
        rng = random.Random(18)
        n = _modulus(rng, l)
        ctx = MontgomeryContext(n)
        g = GateLevelMMMC(l, simulator="compiled", lanes=4)
        runs = g.multiply_lanes([3, 5], [7, 11], [n, n])
        assert len(runs) == 2
        for run, x, y in zip(runs, (3, 5), (7, 11)):
            assert run.result == montgomery_no_subtraction(ctx, x, y)

    def test_paper_mode_overflow_raises_identically(self):
        """The lost-carry raise must not depend on the engine: same
        exception type, same message (= same detection cycle), and the
        instance stays reusable afterwards."""
        l, n, x, y = OVERFLOW["l"], OVERFLOW["n"], OVERFLOW["x"], OVERFLOW["y"]
        messages = {}
        for simulator in ("compiled", "interpreted"):
            g = GateLevelMMMC(l, "paper", simulator=simulator)
            with pytest.raises(SimulationError) as exc:
                g.multiply(x, y, n)
            messages[simulator] = str(exc.value)
            # A safe operand set still computes on the same instance.
            run = g.multiply(1, 1, n)
            assert run.cycles == 3 * l + 4
        assert messages["compiled"] == messages["interpreted"]
        with pytest.raises(SimulationError):
            MMMC(l, mode="paper").multiply(x, y, n)

    def test_paper_mode_overflow_raises_in_lane_batch(self):
        l, n, x, y = OVERFLOW["l"], OVERFLOW["n"], OVERFLOW["x"], OVERFLOW["y"]
        g = GateLevelMMMC(l, "paper", simulator="compiled", lanes=2)
        with pytest.raises(SimulationError):
            g.multiply_lanes([1, x], [1, y], [n, n])


class TestKernelCache:
    def test_structural_sharing_and_counters(self):
        clear_kernel_cache()
        registry = MetricsRegistry()
        with observe(metrics=registry):
            a = random_circuit(123, n_inputs=4, n_gates=30, n_ffs=3)
            compile_kernel(a)
            compile_kernel(a)  # same object: hit
            # Same seed rebuilds a structurally identical circuit: hit.
            compile_kernel(random_circuit(123, n_inputs=4, n_gates=30, n_ffs=3))
            # A different watch signature is a different kernel: miss.
            compile_kernel(a, watch="all")
        assert registry.counter("hdl.compile_cache_misses").total() == 2
        assert registry.counter("hdl.compile_cache_hits").total() == 2
        assert kernel_cache_info()["size"] == 2

    def test_lane_count_not_part_of_cache_key(self):
        clear_kernel_cache()
        c = random_circuit(321, n_inputs=4, n_gates=30, n_ffs=3)
        scalar = CompiledSimulator(c)
        vector = CompiledSimulator(c, lanes=64)
        assert scalar.kernel is vector.kernel
        assert kernel_cache_info()["size"] == 1

    def test_instances_do_not_share_state(self):
        c = Circuit("tff")
        en = c.add_input("en")
        d = c.new_wire("d")
        q = c.dff(d, name="t", enable=en)
        from repro.hdl.registers import _drive

        _drive(c, d, c.not_(q, name="nq"))
        c.mark_output("q", q)
        a = CompiledSimulator(c)
        b = CompiledSimulator(c)
        a.reset()
        b.reset()
        a.poke(en, 1)
        b.poke(en, 0)
        a.step()
        b.step()
        assert a.peek(q) == 1
        assert b.peek(q) == 0


class TestFoldedWires:
    def test_peeking_an_inlined_wire_needs_watch(self):
        c = Circuit("fold")
        a = c.add_input("a")
        b = c.add_input("b")
        inner = c.not_(a, name="inner")  # single fanout: inlined
        out = c.and_(inner, b, name="out")
        c.mark_output("out", out)
        sim = CompiledSimulator(c)
        sim.poke(a, 0)
        sim.poke(b, 1)
        sim.settle()
        assert sim.peek(out) == 1
        with pytest.raises(SimulationError, match="folded away"):
            sim.peek(inner)
        watched = CompiledSimulator(c, watch=[inner])
        watched.poke(a, 0)
        watched.poke(b, 1)
        watched.settle()
        assert watched.peek(inner) == 1
