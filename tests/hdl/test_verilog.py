"""Tests for the structural Verilog export."""

import re

import pytest

from repro.hdl.gates import full_adder
from repro.hdl.netlist import Circuit
from repro.hdl.verilog import export_verilog
from repro.systolic.mmmc_netlist import build_mmmc


def _fa_circuit():
    c = Circuit("fa_demo")
    a, b, ci = (c.add_input(n) for n in "abc")
    s, co = full_adder(c, a, b, ci)
    c.mark_output("sum", s)
    c.mark_output("cout", co)
    return c


class TestStructure:
    def test_module_skeleton(self):
        v = export_verilog(_fa_circuit())
        assert v.text.startswith("// generated")
        assert "module fa_demo (" in v.text
        assert v.text.rstrip().endswith("endmodule")

    def test_ports_declared(self):
        v = export_verilog(_fa_circuit())
        for port in ("clk", "rst", "a", "b", "c", "sum", "cout"):
            assert re.search(rf"\b{port}\b", v.text)
        assert "input wire a;" in v.text
        assert "output wire sum;" in v.text

    def test_one_assign_per_gate(self):
        c = _fa_circuit()
        v = export_verilog(c)
        # gates + 2 output aliases + 2 constants declared inline
        assigns = [l for l in v.text.splitlines() if l.strip().startswith("assign")]
        assert len(assigns) == len(c.gates) + len(c.outputs)

    def test_constants(self):
        v = export_verilog(_fa_circuit())
        assert "= 1'b0;" in v.text and "= 1'b1;" in v.text

    def test_identifier_sanitization(self):
        c = Circuit("weird")
        a = c.add_input("a")
        w = c.not_(a, name="cell[3].fa.s")
        c.mark_output("module", w)  # a Verilog keyword as port name
        v = export_verilog(c)
        assert "cell_3__fa_s" in v.text
        assert re.search(r"\bmodule_\b", v.text)
        # no illegal characters anywhere
        for line in v.text.splitlines():
            assert "[" not in line.replace("1'b", "") or "//" in line


class TestSequential:
    def test_ff_with_enable_and_clear(self):
        c = Circuit("seq")
        d = c.add_input("d")
        en = c.add_input("en")
        clr = c.add_input("clr")
        q = c.dff(d, name="r", enable=en, clear=clr, reset_value=1)
        c.mark_output("q", q)
        v = export_verilog(c)
        assert "always @(posedge clk)" in v.text
        line = [l for l in v.text.splitlines() if "r_q" in l and "rst" in l][0]
        # reset -> 1; clear dominates enable.
        assert "1'b1" in line
        assert "if (clr) r_q <= 1'b0; else if (en)" in line

    def test_mmmc_exports(self):
        """The whole circuit exports without errors, at realistic size."""
        c = build_mmmc(16, "paper").circuit
        v = export_verilog(c, "mmmc16")
        assert v.text.count("assign") >= len([g for g in c.gates]) * 0 + 100
        assert v.text.count("<=") >= len(c.dffs)
        # every FF got exactly one clocked statement line
        always = v.text.split("always @(posedge clk) begin")[1].split("end")[0]
        assert len([l for l in always.splitlines() if "if (rst)" in l]) == len(c.dffs)


class TestNameMap:
    def test_signal_lookup(self):
        c = _fa_circuit()
        v = export_verilog(c)
        assert v.signal("fa.cout", c) == "fa_cout"

    def test_unknown_signal(self):
        c = _fa_circuit()
        v = export_verilog(c)
        from repro.errors import HardwareModelError

        with pytest.raises(HardwareModelError):
            v.signal("nonexistent", c)
