"""Unit tests for the gate census."""

from repro.hdl.census import GateCensus, census, paper_array_formula
from repro.hdl.gates import GateKind, full_adder
from repro.hdl.netlist import Circuit


class TestCensus:
    def test_counts_by_kind(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        c.and_(a, b)
        c.and_(a, b)
        c.xor(a, b)
        c.dff(a)
        cen = census(c)
        assert cen.get(GateKind.AND) == 2
        assert cen.get(GateKind.XOR) == 1
        assert cen.get(GateKind.OR) == 0
        assert cen.flip_flops == 1
        assert cen.total_gates == 3

    def test_full_adder_census(self):
        c = Circuit()
        a, b, ci = (c.add_input(n) for n in "abc")
        full_adder(c, a, b, ci)
        cen = census(c)
        assert cen.as_row() == {
            "xor": 2,
            "and": 2,
            "or": 1,
            "FF": 0,
            "total_gates": 5,
        }

    def test_empty_circuit(self):
        cen = census(Circuit())
        assert cen.total_gates == 0 and cen.flip_flops == 0


class TestPaperFormula:
    def test_values_at_1024(self):
        f = paper_array_formula(1024)
        assert f == {"xor": 5117, "and": 7161, "or": 4091, "FF": 4096}

    def test_linear_in_l(self):
        f32, f64 = paper_array_formula(32), paper_array_formula(64)
        assert f64["xor"] - f32["xor"] == 5 * 32
        assert f64["and"] - f32["and"] == 7 * 32
        assert f64["or"] - f32["or"] == 4 * 32
        assert f64["FF"] - f32["FF"] == 4 * 32
