"""Random-circuit fuzzing of the Verilog export path (export → parse →
co-simulate), mirroring the technology-mapper fuzz suite."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.verilog_sim import cosimulate

from tests.fpga.test_techmap_fuzz import random_circuit


class TestVerilogFuzz:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_circuits_roundtrip(self, seed):
        c = random_circuit(seed, n_inputs=5, n_gates=40, n_ffs=4)
        assert cosimulate(c, cycles=20, seed=seed) > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_larger_circuits(self, seed):
        c = random_circuit(3000 + seed, n_inputs=8, n_gates=150, n_ffs=8)
        cosimulate(c, cycles=12, seed=seed)

    @given(st.integers(0, 10000))
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_driven(self, seed):
        c = random_circuit(seed, n_inputs=4, n_gates=25, n_ffs=3)
        cosimulate(c, cycles=10, seed=seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_optimized_circuits_also_roundtrip(self, seed):
        """Export after optimization: the two passes compose."""
        from repro.hdl.optimize import optimize

        c = random_circuit(4000 + seed, n_inputs=5, n_gates=60, n_ffs=5)
        opt = optimize(c).circuit
        cosimulate(opt, cycles=15, seed=seed)
