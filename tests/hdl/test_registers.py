"""Unit tests for the structural register/counter/comparator builders."""

import pytest

from repro.errors import HardwareModelError
from repro.hdl.netlist import Circuit
from repro.hdl.registers import (
    counter,
    equality_comparator,
    mux2,
    mux2_bus,
    register,
    ripple_adder,
    ripple_increment,
    shift_register_right,
)
from repro.hdl.simulator import Simulator


class TestMux:
    def test_mux2(self):
        c = Circuit()
        s = c.add_input("s")
        a = c.add_input("a")
        b = c.add_input("b")
        o = mux2(c, s, a, b)
        sim = Simulator(c)
        for sv, av, bv in [(0, 1, 0), (1, 1, 0), (0, 0, 1), (1, 0, 1)]:
            sim.poke(s, sv)
            sim.poke(a, av)
            sim.poke(b, bv)
            sim.settle()
            assert sim.peek(o) == (bv if sv else av)

    def test_mux_bus_width_mismatch(self):
        c = Circuit()
        s = c.add_input("s")
        with pytest.raises(HardwareModelError):
            mux2_bus(c, s, c.new_bus(3), c.new_bus(2))


class TestAdders:
    def test_ripple_adder_exhaustive_4bit(self):
        c = Circuit()
        a = c.add_input("a", 4)
        b = c.add_input("b", 4)
        s, cout = ripple_adder(c, a, b)
        sim = Simulator(c)
        for av in range(16):
            for bv in range(16):
                sim.poke(a, av)
                sim.poke(b, bv)
                sim.settle()
                assert sim.peek(s) | (sim.peek(cout) << 4) == av + bv

    def test_ripple_increment(self):
        c = Circuit()
        a = c.add_input("a", 4)
        s, cout = ripple_increment(c, a)
        sim = Simulator(c)
        for av in range(16):
            sim.poke(a, av)
            sim.settle()
            assert sim.peek(s) | (sim.peek(cout) << 4) == av + 1

    def test_adder_width_mismatch(self):
        c = Circuit()
        with pytest.raises(HardwareModelError):
            ripple_adder(c, c.add_input("a", 3), c.add_input("b", 2))


class TestRegister:
    def test_parallel_load(self):
        c = Circuit()
        d = c.add_input("d", 4)
        en = c.add_input("en")
        q = register(c, d, enable=en)
        sim = Simulator(c)
        sim.reset()
        sim.poke(d, 9)
        sim.poke(en, 1)
        sim.step()
        assert sim.peek(q) == 9
        sim.poke(d, 3)
        sim.poke(en, 0)
        sim.step()
        assert sim.peek(q) == 9, "disabled register must hold"


class TestShiftRegister:
    def test_load_then_shift(self):
        c = Circuit()
        d = c.add_input("d", 5)
        ld = c.add_input("ld")
        sh = c.add_input("sh")
        q = shift_register_right(c, d, ld, sh)
        sim = Simulator(c)
        sim.reset()
        sim.poke(d, 0b10110)
        sim.poke(ld, 1)
        sim.poke(sh, 0)
        sim.step()
        assert sim.peek(q) == 0b10110
        sim.poke(ld, 0)
        sim.poke(sh, 1)
        seen = []
        for _ in range(6):
            seen.append(sim.peek(q[0]))
            sim.step()
        # Serial LSB-first output, MSB filled with 0 (paper's X register).
        assert seen == [0, 1, 1, 0, 1, 0]
        assert sim.peek(q) == 0

    def test_hold_when_idle(self):
        c = Circuit()
        d = c.add_input("d", 3)
        ld = c.add_input("ld")
        sh = c.add_input("sh")
        q = shift_register_right(c, d, ld, sh)
        sim = Simulator(c)
        sim.reset()
        sim.poke(d, 5)
        sim.poke(ld, 1)
        sim.poke(sh, 0)
        sim.step()
        sim.poke(ld, 0)
        sim.step()
        sim.step()
        assert sim.peek(q) == 5

    def test_custom_fill(self):
        c = Circuit()
        d = c.add_input("d", 3)
        ld = c.add_input("ld")
        sh = c.add_input("sh")
        q = shift_register_right(c, d, ld, sh, fill=c.const1)
        sim = Simulator(c)
        sim.reset()
        sim.poke(d, 0)
        sim.poke(ld, 1)
        sim.poke(sh, 0)
        sim.step()
        sim.poke(ld, 0)
        sim.poke(sh, 1)
        sim.run(3)
        assert sim.peek(q) == 0b111


class TestCounter:
    def test_count_and_clear(self):
        c = Circuit()
        inc = c.add_input("inc")
        clr = c.add_input("clr")
        q = counter(c, 4, inc, clr)
        sim = Simulator(c)
        sim.reset()
        sim.poke(inc, 1)
        sim.poke(clr, 0)
        for expect in range(1, 10):
            sim.step()
            assert sim.peek(q) == expect
        sim.poke(clr, 1)
        sim.step()
        assert sim.peek(q) == 0, "clear dominates increment"
        sim.poke(clr, 0)
        sim.poke(inc, 0)
        sim.step()
        assert sim.peek(q) == 0, "idle counter holds"

    def test_wraparound(self):
        c = Circuit()
        inc = c.add_input("inc")
        clr = c.add_input("clr")
        q = counter(c, 2, inc, clr)
        sim = Simulator(c)
        sim.reset()
        sim.poke(inc, 1)
        sim.poke(clr, 0)
        sim.run(5)
        assert sim.peek(q) == 1  # 5 mod 4


class TestComparator:
    def test_equality(self):
        c = Circuit()
        v = c.add_input("v", 5)
        eq = equality_comparator(c, v, 19)
        sim = Simulator(c)
        for val in range(32):
            sim.poke(v, val)
            sim.settle()
            assert sim.peek(eq) == (1 if val == 19 else 0)

    def test_constant_too_wide(self):
        c = Circuit()
        v = c.add_input("v", 3)
        with pytest.raises(HardwareModelError):
            equality_comparator(c, v, 8)

    def test_logarithmic_depth(self):
        c = Circuit()
        v = c.add_input("v", 16)
        equality_comparator(c, v, 0x1234)
        sim = Simulator(c)
        # 16 leaf gates + log2(16)=4 AND levels.
        assert sim.max_depth <= 6
