"""Unit tests for the levelized two-phase simulator."""

import pytest

from repro.errors import HardwareModelError, SimulationError
from repro.hdl.netlist import Circuit
from repro.hdl.registers import _drive
from repro.hdl.simulator import Simulator


def _toggler():
    """A 1-bit toggle flip-flop circuit."""
    c = Circuit("tog")
    d = c.new_wire("d")
    q = c.dff(d, name="t")
    _drive(c, d, c.not_(q))
    return c, q


class TestCombinational:
    def test_settle_propagates(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        out = c.xor(c.and_(a, b), c.or_(a, b))
        sim = Simulator(c)
        for av, bv in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            sim.poke(a, av)
            sim.poke(b, bv)
            sim.settle()
            assert sim.peek(out) == ((av & bv) ^ (av | bv))

    def test_constants(self):
        c = Circuit()
        out = c.and_(c.const1, c.not_(c.const0))
        sim = Simulator(c)
        sim.settle()
        assert sim.peek(out) == 1

    def test_deep_chain_depth(self):
        c = Circuit()
        w = c.add_input("a")
        for _ in range(10):
            w = c.not_(w)
        sim = Simulator(c)
        assert sim.max_depth == 10

    def test_combinational_loop_detected(self):
        c = Circuit()
        a = c.new_wire("a")
        b = c.not_(a)
        # close the loop: drive a from b via a BUF.
        _drive(c, a, b)
        with pytest.raises(HardwareModelError, match="loop"):
            Simulator(c)


class TestSequential:
    def test_toggle(self):
        c, q = _toggler()
        sim = Simulator(c)
        sim.reset()
        values = []
        for _ in range(4):
            sim.step()
            values.append(sim.peek(q))
        assert values == [1, 0, 1, 0]

    def test_enable_gates_capture(self):
        c = Circuit()
        d = c.add_input("d")
        en = c.add_input("en")
        q = c.dff(d, enable=en)
        sim = Simulator(c)
        sim.reset()
        sim.poke(d, 1)
        sim.poke(en, 0)
        sim.step()
        assert sim.peek(q) == 0, "disabled FF must hold"
        sim.poke(en, 1)
        sim.step()
        assert sim.peek(q) == 1

    def test_clear_dominates_enable(self):
        c = Circuit()
        d = c.add_input("d")
        en = c.add_input("en")
        clr = c.add_input("clr")
        q = c.dff(d, enable=en, clear=clr)
        sim = Simulator(c)
        sim.poke(d, 1)
        sim.poke(en, 1)
        sim.poke(clr, 0)
        sim.step()
        assert sim.peek(q) == 1
        sim.poke(clr, 1)
        sim.poke(en, 0)  # enable low; clear must still act
        sim.step()
        assert sim.peek(q) == 0

    def test_reset_loads_reset_values(self):
        c = Circuit()
        d = c.add_input("d")
        q1 = c.dff(d, reset_value=1)
        q0 = c.dff(d, reset_value=0)
        sim = Simulator(c)
        sim.poke(d, 0)
        sim.run(3)
        sim.reset()
        assert sim.peek(q1) == 1 and sim.peek(q0) == 0
        assert sim.cycle == 0

    def test_captures_are_simultaneous(self):
        """A 2-stage shift: both FFs capture old values on the same edge."""
        c = Circuit()
        a = c.add_input("a")
        q1 = c.dff(a, name="s1")
        q2 = c.dff(q1, name="s2")
        sim = Simulator(c)
        sim.reset()
        sim.poke(a, 1)
        sim.step()
        assert (sim.peek(q1), sim.peek(q2)) == (1, 0)
        sim.poke(a, 0)
        sim.step()
        assert (sim.peek(q1), sim.peek(q2)) == (0, 1)


class TestPokePeek:
    def test_bus_roundtrip(self):
        c = Circuit()
        bus = c.add_input("v", 8)
        sim = Simulator(c)
        sim.poke(bus, 0xA5)
        assert sim.peek(bus) == 0xA5

    def test_bus_overflow_rejected(self):
        c = Circuit()
        bus = c.add_input("v", 4)
        sim = Simulator(c)
        with pytest.raises(SimulationError):
            sim.poke(bus, 16)

    def test_single_wire_range(self):
        c = Circuit()
        a = c.add_input("a")
        sim = Simulator(c)
        with pytest.raises(SimulationError):
            sim.poke(a, 2)
