"""The graceful-degradation ladder: policies alone, then wired into the service."""

from __future__ import annotations

import random
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeout

import pytest

from repro.errors import ParameterError, RequestShed
from repro.observability import MetricsRegistry, observe
from repro.serving.overload import (
    BROWNOUT_LEVELS,
    BrownoutController,
    CoDelShedder,
    HedgePolicy,
    LatencyReservoir,
    OverloadConfig,
    TokenBucket,
)
from repro.serving.request import ModExpRequest
from repro.serving.service import ModExpService
from repro.utils.rng import random_odd_modulus


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


def _requests(count: int, *, priority: str = "batch", **kw):
    rng = random.Random("overload")
    n = random_odd_modulus(48, rng)
    return [
        ModExpRequest(
            rng.randrange(n),
            rng.randrange(1, n),
            n,
            request_id=f"ovl{i}",
            priority=priority,
            **kw,
        )
        for i in range(count)
    ]


class TestOverloadConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(admit_rate=0.0),
            dict(interactive_reserve=1.0),
            dict(shed_target_s=0.0),
            dict(hedge_min_samples=1),
            dict(brownout_low=0.8, brownout_high=0.5),
            dict(default_budget_s=0.0),
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ParameterError):
            OverloadConfig(**kw)

    def test_budget_for_falls_back_to_default(self):
        cfg = OverloadConfig(default_budget_s=2.0, interactive_budget_s=0.5)
        assert cfg.budget_for("interactive") == 0.5
        assert cfg.budget_for("batch") == 2.0
        assert OverloadConfig().budget_for("batch") is None


class TestTokenBucket:
    def test_batch_stops_at_the_reserve_line(self, clock):
        bucket = TokenBucket(10.0, 10.0, reserve=0.3, clock=clock)
        admitted = 0
        while bucket.try_admit("batch"):
            admitted += 1
        assert admitted == 7  # 10 - reserve floor of 3
        # The reserve slice is still spendable by interactive traffic.
        assert bucket.try_admit("interactive")

    def test_refill_restores_admission(self, clock):
        bucket = TokenBucket(5.0, 5.0, reserve=0.0, clock=clock)
        while bucket.try_admit("batch"):
            pass
        assert not bucket.try_admit("batch")
        clock.now += 1.0  # 5 tokens refill
        assert bucket.try_admit("batch")

    def test_level_gauge(self, clock):
        bucket = TokenBucket(4.0, 4.0, reserve=0.0, clock=clock)
        assert bucket.level == 1.0
        bucket.try_admit("batch", tokens=2.0)
        assert bucket.level == 0.5

    def test_unknown_priority_rejected(self, clock):
        with pytest.raises(ParameterError):
            TokenBucket(1.0, clock=clock).try_admit("urgent")


class TestCoDelShedder:
    def test_below_target_never_sheds(self, clock):
        shed = CoDelShedder(0.05, 0.5, clock=clock)
        for _ in range(100):
            assert not shed.offer(0.01)
            clock.now += 0.01
        assert not shed.dropping

    def test_sheds_after_a_standing_interval(self, clock):
        shed = CoDelShedder(0.05, 0.5, clock=clock)
        assert not shed.offer(0.1)  # first crossing only starts the timer
        clock.now += 0.4
        assert not shed.offer(0.1)  # not a full interval yet
        clock.now += 0.2
        assert shed.offer(0.1)  # standing queue: drop
        assert shed.dropping

    def test_drop_rate_accelerates(self, clock):
        shed = CoDelShedder(0.05, 1.0, clock=clock)
        shed.offer(0.1)
        clock.now += 1.0
        assert shed.offer(0.1)  # first drop
        drops = 0
        for _ in range(400):
            clock.now += 0.01
            if shed.offer(0.1):
                drops += 1
        # 4 seconds of standing queue at interval 1.0: the 1/sqrt(count)
        # law yields strictly more than 4 drops.
        assert drops > 4

    def test_draining_below_target_resets(self, clock):
        shed = CoDelShedder(0.05, 0.5, clock=clock)
        shed.offer(0.1)
        clock.now += 0.6
        assert shed.offer(0.1)
        assert not shed.offer(0.01)  # queue drained
        assert not shed.dropping


class TestHedgePolicy:
    def test_abstains_until_warm(self):
        policy = HedgePolicy(min_samples=4, min_delay_s=0.0)
        assert policy.delay() is None
        for _ in range(3):
            policy.observe(0.01)
        assert policy.delay() is None
        policy.observe(0.01)
        assert policy.delay() == pytest.approx(0.01)

    def test_delay_is_the_tail_with_a_floor(self):
        policy = HedgePolicy(
            quantile=50.0, min_samples=2, min_delay_s=0.02
        )
        policy.observe(0.001)
        policy.observe(0.001)
        assert policy.delay() == 0.02  # floored
        for _ in range(10):
            policy.observe(0.5)
        assert policy.delay() == 0.5

    def test_reservoir_is_bounded(self):
        res = LatencyReservoir(capacity=4)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            res.record(v)
        assert len(res) == 4
        assert res.percentile(100) == 100.0


class TestBrownoutController:
    def test_escalates_and_recovers_through_levels(self, clock):
        ctl = BrownoutController(
            high=0.7, low=0.2, dwell_s=1.0, alpha=1.0, clock=clock
        )
        assert ctl.level == 0 and ctl.level_name == BROWNOUT_LEVELS[0]
        for expect in (1, 2, 3):
            clock.now += 1.0
            assert ctl.update(1.0) == expect
        clock.now += 1.0
        assert ctl.update(1.0) == 3  # capped
        for expect in (2, 1, 0):
            clock.now += 1.0
            assert ctl.update(0.0) == expect

    def test_dwell_prevents_flapping(self, clock):
        ctl = BrownoutController(
            high=0.7, low=0.2, dwell_s=10.0, alpha=1.0, clock=clock
        )
        clock.now += 10.0
        assert ctl.update(1.0) == 1
        assert ctl.update(1.0) == 1  # still inside the dwell window
        clock.now += 10.0
        assert ctl.update(1.0) == 2

    def test_levers_engage_in_order(self, clock):
        ctl = BrownoutController(
            high=0.7, low=0.2, dwell_s=0.0, alpha=1.0, clock=clock
        )
        assert ctl.verify_scale() == 1.0
        assert not ctl.reroute_cheap and not ctl.batch_suspended
        ctl.update(1.0)
        assert ctl.verify_scale() < 1.0
        assert not ctl.reroute_cheap
        ctl.update(1.0)
        assert ctl.reroute_cheap and not ctl.batch_suspended
        ctl.update(1.0)
        assert ctl.batch_suspended
        assert ctl.verify_scale() > 0.0  # a trickle of verification survives


class TestServiceAdmission:
    def test_token_bucket_sheds_batch_overflow(self):
        overload = OverloadConfig(
            admit_rate=0.001, admit_burst=3.0, interactive_reserve=0.0
        )
        with ModExpService(worker_kind="inline", overload=overload) as service:
            results = service.process(_requests(8))
        ok = [r for r in results if r.ok]
        shed = [r for r in results if r.error_type == "RequestShed"]
        assert len(ok) == 3 and len(shed) == 5
        assert all("admission" in r.error for r in shed)

    def test_interactive_reserve_survives_a_batch_flood(self):
        overload = OverloadConfig(
            admit_rate=0.001, admit_burst=4.0, interactive_reserve=0.5
        )
        with ModExpService(worker_kind="inline", overload=overload) as service:
            batch = service.process(_requests(8))
            interactive = service.process(
                _requests(2, priority="interactive")
            )
        # Batch drained only down to the reserve line...
        assert sum(r.ok for r in batch) == 2
        # ...leaving the reserve slice for interactive traffic.
        assert all(r.ok for r in interactive)

    def test_expired_request_fails_at_admission(self):
        stale = _requests(1, expires_at=time.monotonic() - 1.0)
        with ModExpService(
            worker_kind="inline", overload=OverloadConfig()
        ) as service:
            result = service.process(stale)[0]
        assert not result.ok
        assert result.error_type == "DeadlineExceeded"

    def test_budget_is_stamped_and_generous_budgets_complete(self):
        overload = OverloadConfig(default_budget_s=60.0)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                worker_kind="inline", overload=overload
            ) as service:
                results = service.process(_requests(4))
        assert all(r.ok for r in results)
        # Completed inside the budget: no violations recorded.
        assert "serving.deadline_violations" not in registry

    def test_without_overload_nothing_changes(self):
        with ModExpService(worker_kind="inline") as service:
            results = service.process(
                _requests(4, expires_at=time.monotonic() - 1.0)
            )
        # No overload config: expires_at is ignored entirely.
        assert all(r.ok for r in results)


class _AlwaysShed:
    target_s = 0.0

    def offer(self, sojourn_s):
        return True


class TestServiceShedding:
    def test_codel_sheds_batch_not_interactive(self):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                worker_kind="inline", overload=OverloadConfig()
            ) as service:
                service._shedder = _AlwaysShed()
                batch = service.process(_requests(3))
                interactive = service.process(
                    _requests(3, priority="interactive")
                )
        assert all(r.error_type == "RequestShed" for r in batch)
        assert all(r.ok for r in interactive)
        shed = registry.counter("serving.shed_requests")
        assert shed.total(reason="codel") == 3

    def test_brownout_level_three_refuses_batch_admission(self, clock):
        with ModExpService(
            worker_kind="inline", overload=OverloadConfig(brownout=True)
        ) as service:
            ctl = BrownoutController(
                high=0.7, low=0.2, dwell_s=0.0, alpha=1.0, clock=clock
            )
            for _ in range(3):
                ctl.update(1.0)
            # Freeze the controller at level 3: the service's own pressure
            # samples (an idle inline pool) must not step it back down.
            ctl.dwell_s = 1e9
            service._brownout = ctl
            batch = service.process(_requests(2))
            interactive = service.process(_requests(2, priority="interactive"))
        assert all(r.error_type == "RequestShed" for r in batch)
        assert all("brownout" in r.error for r in batch)
        assert all(r.ok for r in interactive)

    def test_brownout_thins_verification(self, clock):
        from repro.robustness import VerifyPolicy

        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                worker_kind="inline",
                verify=VerifyPolicy(mode="full"),
                overload=OverloadConfig(brownout=True),
            ) as service:
                ctl = BrownoutController(
                    high=0.7, low=0.2, dwell_s=0.0, alpha=1.0, clock=clock
                )
                ctl.update(1.0)  # level 1: verify scaled to 1/4
                ctl.dwell_s = 1e9  # freeze: idle-pool samples must not reset it
                service._brownout = ctl
                results = service.process(_requests(40))
        assert all(r.ok for r in results)
        skipped = registry.counter("serving.verify_skipped").total()
        verified = registry.counter("serving.verified").total()
        assert skipped > 0
        assert verified > 0  # thinned, not eliminated
        assert verified + skipped == 40

    def test_shed_results_count_as_rejected_on_the_wire(self):
        import io

        from repro.serving.wire import request_to_json

        overload = OverloadConfig(
            admit_rate=0.001, admit_burst=1.0, interactive_reserve=0.0
        )
        lines = [request_to_json(r) + "\n" for r in _requests(4)]
        out = io.StringIO()
        with ModExpService(worker_kind="inline", overload=overload) as service:
            stats = service.serve(iter(lines), out)
        assert stats["ok"] == 1
        assert stats["rejected"] == 3
        assert stats["failed"] == 0


class _StubShardPool:
    """Just enough pool for exercising _hedged_result in isolation."""

    kind = "shard"

    def __init__(self, hedge_future):
        self.hedge_future = hedge_future
        self.abandoned = []

    def submit_hedge(self, request):
        return self.hedge_future

    def abandon(self, future):
        self.abandoned.append(future)
        return True

    def shutdown(self, **kw):
        pass


class TestHedgedResult:
    def _service_with_stub(self, hedge_future):
        service = ModExpService(
            worker_kind="inline",
            overload=OverloadConfig(hedge=True, hedge_min_samples=2),
        )
        service.close()
        service.pool = _StubShardPool(hedge_future)
        # Warm the reservoir so hedging is armed with a tiny delay.
        service._hedge = HedgePolicy(min_samples=2, min_delay_s=0.0)
        service._hedge.observe(0.001)
        service._hedge.observe(0.001)
        return service

    def _entry(self, future):
        from repro.serving.service import _Entry

        entry = _Entry(_requests(1)[0], 0)
        entry.future = future
        entry.submitted_at = time.monotonic()
        return entry

    def test_hedge_wins_when_the_primary_straggles(self):
        primary = Future()  # never resolves: a wedged shard
        hedge = Future()
        hedge.set_result((42, 7, 10.0, "shard1", None))
        registry = MetricsRegistry()
        with observe(metrics=registry):
            service = self._service_with_stub(hedge)
            payload = service._hedged_result(self._entry(primary), 5.0)
        assert payload[0] == 42
        assert primary in service.pool.abandoned  # exactly-once: loser dropped
        assert registry.counter("serving.hedges_fired").total() == 1
        assert registry.counter("serving.hedge_wins").total(winner="hedge") == 1

    def test_primary_wins_without_hedging(self):
        primary = Future()
        primary.set_result((7, 1, 1.0, "shard0", None))
        registry = MetricsRegistry()
        with observe(metrics=registry):
            service = self._service_with_stub(Future())
            payload = service._hedged_result(self._entry(primary), 5.0)
        assert payload[0] == 7
        assert "serving.hedges_fired" not in registry
        assert not service.pool.abandoned

    def test_both_stuck_times_out_and_cleans_up(self):
        primary = Future()
        hedge = Future()
        service = self._service_with_stub(hedge)
        with pytest.raises(FuturesTimeout):
            service._hedged_result(self._entry(primary), 0.05)
        # The helper cleans up its own hedge; the caller owns the primary.
        assert hedge in service.pool.abandoned

    def test_no_distinct_shard_falls_back_to_plain_wait(self):
        primary = Future()
        service = self._service_with_stub(None)  # submit_hedge -> None
        with pytest.raises(FuturesTimeout):
            service._hedged_result(self._entry(primary), 0.05)
        assert not service.pool.abandoned
