"""Bit-sliced lane batching through the serving layer.

Coalesced batches of same-modulus, same-exponent requests ride one
64-lane compiled simulator sweep instead of 64 scalar simulations; mixed
exponents and short batches degrade gracefully to scalar dispatch.  The
wire format, result ordering and SLO inputs must be indistinguishable
from scalar execution.
"""

import random

import pytest

from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import MetricsRegistry, observe
from repro.serving import ModExpRequest, ModExpService
from repro.serving.backends import GateLevelBackend, RTLBackend
from repro.utils.rng import random_odd_modulus


def _requests(rng, n, count, exponent=None):
    return [
        ModExpRequest(
            rng.randrange(n),
            exponent if exponent is not None else rng.randrange(1, n),
            n,
            request_id=f"r{i}",
        )
        for i in range(count)
    ]


class TestBackendLanes:
    def test_rtl_defaults_to_compiled_gate_twin(self):
        backend = RTLBackend()
        assert backend.engine == "gate"
        assert backend.capabilities.lanes == 64
        assert "compiled" in backend.capabilities.description

    def test_rtl_behavioral_fallback_is_scalar(self):
        backend = RTLBackend(engine="rtl")
        assert backend.capabilities.lanes == 1
        assert "behavioral" in backend.capabilities.description

    def test_gate_interpreted_fallback_is_scalar(self):
        backend = GateLevelBackend(simulator="interpreted")
        assert backend.capabilities.lanes == 1
        assert backend.wall_weight > GateLevelBackend().wall_weight

    def test_execute_many_groups_by_exponent(self):
        """3+2 requests with two exponents: the 3-group runs as lanes,
        the 2-group runs as lanes, results come back in input order."""
        rng = random.Random("lanes-group")
        n = random_odd_modulus(9, rng)
        ctx = precompute_montgomery_constants(n)
        reqs = _requests(rng, n, 3, exponent=19)
        reqs += _requests(rng, n, 2, exponent=23)
        backend = GateLevelBackend()
        registry = MetricsRegistry()
        with observe(metrics=registry):
            results = backend.execute_many(ctx, reqs)
        assert len(results) == len(reqs)
        for req, res in zip(reqs, results):
            assert res.value == pow(req.base, req.exponent, n)
            assert res.cycles is not None and res.cycles > 0
        assert registry.counter("hdl.lanes_packed").total() > 0

    def test_execute_many_singletons_take_the_scalar_path(self):
        rng = random.Random("lanes-single")
        n = random_odd_modulus(9, rng)
        ctx = precompute_montgomery_constants(n)
        reqs = _requests(rng, n, 3)  # three distinct random exponents
        backend = GateLevelBackend()
        registry = MetricsRegistry()
        with observe(metrics=registry):
            results = backend.execute_many(ctx, reqs)
        for req, res in zip(reqs, results):
            assert res.value == pow(req.base, req.exponent, n)
        assert registry.counter("hdl.lanes_packed").total() == 0

    def test_lane_group_cycles_match_scalar_execution(self):
        """SLO semantics: a laned request reports the same cycle count
        the scalar path would have charged it."""
        rng = random.Random("lanes-cycles")
        n = random_odd_modulus(9, rng)
        ctx = precompute_montgomery_constants(n)
        reqs = _requests(rng, n, 4, exponent=21)
        backend = GateLevelBackend()
        grouped = backend.execute_many(ctx, reqs)
        scalar = [backend.execute(ctx, r) for r in reqs]
        assert [g.value for g in grouped] == [s.value for s in scalar]
        assert [g.cycles for g in grouped] == [s.cycles for s in scalar]


class TestServiceLaneDispatch:
    def test_same_exponent_batch_packs_lanes(self):
        rng = random.Random("svc-lanes")
        n = random_odd_modulus(10, rng)
        reqs = _requests(rng, n, 16, exponent=257)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(backend="gate", max_batch=16) as svc:
                results = svc.process(reqs)
        for req, res in zip(reqs, results):
            assert res.ok, res
            assert res.value == pow(req.base, req.exponent, n)
            assert res.cycles is not None
            assert res.wall_us is not None and res.wall_us > 0
        assert registry.counter("hdl.lanes_packed").total() >= 16
        accepted = registry.counter("serving.requests").total(status="accepted")
        completed = registry.counter("serving.requests").total(status="completed")
        assert accepted == completed == 16

    def test_mixed_exponents_still_correct(self):
        rng = random.Random("svc-mixed")
        n = random_odd_modulus(10, rng)
        reqs = _requests(rng, n, 6, exponent=91)
        reqs += _requests(rng, n, 5)
        rng.shuffle(reqs)
        with ModExpService(backend="gate", max_batch=8, workers=2) as svc:
            results = svc.process(reqs)
        for req, res in zip(reqs, results):
            assert res.ok, res
            assert res.value == pow(req.base, req.exponent, n)

    def test_rtl_backend_lanes_through_service(self):
        rng = random.Random("svc-rtl")
        n = random_odd_modulus(12, rng)
        reqs = _requests(rng, n, 8, exponent=65)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(backend="rtl", max_batch=8) as svc:
                results = svc.process(reqs)
        for req, res in zip(reqs, results):
            assert res.ok, res
            assert res.value == pow(req.base, req.exponent, n)
        assert registry.counter("hdl.lanes_packed").total() >= 8

    def test_scalar_backend_never_groups(self):
        rng = random.Random("svc-scalar")
        n = random_odd_modulus(8, rng)
        reqs = _requests(rng, n, 4, exponent=9)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            backend = GateLevelBackend(simulator="interpreted")
            with ModExpService(backend=backend, max_batch=4) as svc:
                results = svc.process(reqs)
        for req, res in zip(reqs, results):
            assert res.ok, res
            assert res.value == pow(req.base, req.exponent, n)
        assert registry.counter("hdl.lanes_packed").total() == 0
