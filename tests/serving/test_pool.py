"""Worker pool: bounded window, rejection, no deadlock, all kinds."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ParameterError, QueueFull
from repro.observability import MetricsRegistry, observe
from repro.serving.pool import WorkerPool


def _add(a, b):
    return a + b


class TestBasics:
    @pytest.mark.parametrize("kind", ["inline", "thread", "process"])
    def test_submit_returns_result(self, kind):
        with WorkerPool(workers=2, kind=kind) as pool:
            assert pool.submit(_add, 2, 3).result(timeout=30) == 5

    def test_inline_runs_on_caller_thread(self):
        with WorkerPool(kind="inline") as pool:
            ident = pool.submit(threading.get_ident).result()
        assert ident == threading.get_ident()

    def test_exceptions_surface_via_future(self):
        with WorkerPool(kind="inline") as pool:
            future = pool.submit(int, "not a number")
        assert isinstance(future.exception(), ValueError)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError):
            WorkerPool(kind="fiber")
        with pytest.raises(ParameterError):
            WorkerPool(workers=0)
        with pytest.raises(ParameterError):
            WorkerPool(queue_limit=0)


class TestBackpressure:
    def test_saturated_queue_rejects_not_deadlocks(self):
        """The acceptance regression: a full bounded queue raises QueueFull
        immediately; it never blocks the submitter."""
        release = threading.Event()
        pool = WorkerPool(workers=1, kind="thread", queue_limit=2)
        try:
            first = pool.submit(release.wait, 30)  # occupies the worker
            second = pool.submit(release.wait, 30)  # sits in the queue
            assert pool.depth == 2
            t0 = time.monotonic()
            with pytest.raises(QueueFull, match="2/2"):
                pool.submit(release.wait, 30)
            # Rejection must be immediate (no hidden blocking path).
            assert time.monotonic() - t0 < 1.0
            release.set()
            assert first.result(timeout=30) and second.result(timeout=30)
            assert pool.wait_for_capacity(timeout=30)
            assert pool.submit(_add, 1, 1).result(timeout=30) == 2
        finally:
            release.set()
            pool.shutdown()

    def test_queue_depth_gauge_tracks_inflight(self):
        registry = MetricsRegistry()
        release = threading.Event()
        with observe(metrics=registry):
            pool = WorkerPool(workers=1, kind="thread", queue_limit=4)
            try:
                futures = [pool.submit(release.wait, 30) for _ in range(3)]
                assert registry.gauge("serving.queue_depth").value() == 3
                release.set()
                for f in futures:
                    f.result(timeout=30)
                # Done-callbacks may lag result() by an instant; poll down.
                deadline = time.monotonic() + 30
                while pool.depth and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert pool.depth == 0
            finally:
                release.set()
                pool.shutdown()
        assert registry.gauge("serving.queue_depth").value() == 0

    def test_submit_after_shutdown_rejects(self):
        pool = WorkerPool(kind="thread")
        pool.shutdown()
        with pytest.raises(QueueFull, match="shut down"):
            pool.submit(_add, 1, 2)

    def test_default_queue_limit_scales_with_workers(self):
        pool = WorkerPool(workers=3, kind="inline")
        try:
            assert pool.queue_limit == 12
        finally:
            pool.shutdown()
