"""Lane-fill accounting under mixed traffic (the profiler's serving leg).

Coalescing groups by *modulus*; lane packing then groups each batch by
*exponent*.  These tests drive deliberately mixed request sets through
both layers and assert the new accounting series — ``hdl.lane_fill``,
``hdl.wasted_lane_cycles``, ``serving.lane_group_size``,
``serving.lane_groups{packed}``, ``serving.coalesce_group_size`` —
report exactly the grouping arithmetic the mix implies.
"""

import random

import pytest

from repro.montgomery.params import precompute_montgomery_constants
from repro.observability import MetricsRegistry, observe
from repro.serving import ModExpRequest, ModExpService
from repro.serving.backends import GateLevelBackend
from repro.utils.rng import random_odd_modulus

LANES = 64


def _mixed_requests(rng, moduli, exponents, count):
    """The profiler's traffic shape: requests cycle through moduli and
    exponents independently, so each (modulus, exponent) pair repeats
    ``count / (len(moduli) * len(exponents))`` times (when divisible)."""
    reqs = []
    for i in range(count):
        n = moduli[i % len(moduli)]
        reqs.append(
            ModExpRequest(
                base=rng.randrange(1, n),
                exponent=exponents[i % len(exponents)],
                modulus=n,
                request_id=f"m{i}",
            )
        )
    return reqs


class TestBackendLaneFill:
    def test_lane_fill_histogram_matches_exponent_groups(self):
        # One modulus, two exponents, 4+4 requests -> two sweeps of fill 4.
        rng = random.Random("fill-groups")
        n = random_odd_modulus(9, rng)
        ctx = precompute_montgomery_constants(n)
        reqs = _mixed_requests(rng, [n], [19, 23], 8)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            results = GateLevelBackend().execute_many(ctx, reqs)
        for req, res in zip(reqs, results):
            assert res.value == pow(req.base, req.exponent, n)

        fill = registry.histogram("hdl.lane_fill").aggregate()
        assert fill.min == fill.max == 4
        # every sweep recorded exactly one fill sample, labelled lanes=64
        assert registry.histogram("hdl.lane_fill").aggregate(lanes=LANES).count == fill.count
        # each MMM sweep wastes (64-4) lanes; totals must match exactly
        sweeps = registry.counter("hdl.lanes_packed").total() / 4
        wasted = registry.counter("hdl.wasted_lane_cycles").total()
        assert sweeps == fill.count
        cycles_per_mult = 3 * 9 + 5  # corrected-mode gate netlist at l=9
        assert wasted == (LANES - 4) * cycles_per_mult * sweeps

    def test_scalar_dispatch_records_no_fill(self):
        rng = random.Random("fill-scalar")
        n = random_odd_modulus(9, rng)
        ctx = precompute_montgomery_constants(n)
        reqs = _mixed_requests(rng, [n], [5, 7, 11], 3)  # singleton groups
        registry = MetricsRegistry()
        with observe(metrics=registry):
            GateLevelBackend().execute_many(ctx, reqs)
        assert "hdl.lane_fill" not in registry
        assert registry.counter("hdl.lanes_packed").total() == 0


class TestServiceGroupAccounting:
    def _run(self, moduli_bits, exponents, count, max_batch=64):
        rng = random.Random("svc-fill")
        moduli = [random_odd_modulus(bits, rng) for bits in moduli_bits]
        reqs = _mixed_requests(rng, moduli, exponents, count)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(backend="gate", max_batch=max_batch) as svc:
                results = svc.process(reqs)
        for req, res in zip(reqs, results):
            assert res.ok, res
            assert res.value == pow(req.base, req.exponent, req.modulus)
        return registry, moduli

    def test_mixed_moduli_and_exponents_grouping_arithmetic(self):
        # 3 moduli x 2 exponents, 24 requests: coalescing makes 3 batches
        # of 8; lane packing splits each into 2 groups of 4.
        registry, moduli = self._run([10, 10, 10], [19, 257], 24)

        coalesce = registry.histogram("serving.coalesce_group_size").aggregate()
        assert coalesce.count == len(set(moduli)) == 3
        assert coalesce.min == coalesce.max == 8

        groups = registry.histogram("serving.lane_group_size").aggregate()
        assert groups.count == 6  # 3 batches x 2 exponent groups
        assert groups.min == groups.max == 4
        assert registry.counter("serving.lane_groups").total(packed="yes") == 6
        assert registry.counter("serving.lane_groups").total(packed="no") == 0

        fill = registry.histogram("hdl.lane_fill").aggregate()
        assert fill.min == fill.max == 4
        assert registry.histogram("hdl.lane_fill").percentile(50) == 4.0

    def test_uneven_mix_produces_bimodal_fill(self):
        # One modulus; exponents 9x A and 3x B -> groups of 9 and 3.
        rng = random.Random("svc-bimodal")
        n = random_odd_modulus(10, rng)
        reqs = _mixed_requests(rng, [n], [101], 9)
        reqs += _mixed_requests(rng, [n], [257], 3)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(backend="gate", max_batch=64) as svc:
                results = svc.process(reqs)
        assert all(r.ok for r in results)
        groups = registry.histogram("serving.lane_group_size").aggregate()
        assert groups.count == 2
        assert (groups.min, groups.max) == (3, 9)
        fill = registry.histogram("hdl.lane_fill").aggregate()
        assert (fill.min, fill.max) == (3, 9)

    def test_singleton_groups_counted_as_unpacked(self):
        # 4 requests, 4 distinct exponents: no group reaches lane width 2.
        registry, _ = self._run([10], [3, 5, 17, 19], 4)
        assert registry.counter("serving.lane_groups").total(packed="no") == 4
        assert registry.counter("serving.lane_groups").total(packed="yes") == 0
        assert "hdl.lane_fill" not in registry

    def test_worker_busy_and_queue_wait_recorded(self):
        registry, _ = self._run([10], [19, 257], 8)
        busy = registry.counter("serving.worker_busy_us").snapshot()
        assert busy and all(row["value"] >= 0 for row in busy)
        waits = registry.histogram("serving.queue_wait_us").aggregate()
        assert waits.count == 8  # one sample per completed request
        assert waits.min >= 0
