"""End-to-end request telemetry across the process boundary.

The acceptance scenario of the telemetry PR: a 20-request batch on the
``"process"`` pool must leave the *parent* registry with one
``serving.request_cycles`` sample per request labelled by backend and
worker, the worker-side ``exponentiator.*`` series merged in with
``worker`` labels, and an exported Perfetto trace whose worker spans
nest inside their ``serving.request`` spans.
"""

import pytest

from repro.observability import (
    MetricsRegistry,
    REQUEST_SPAN,
    SpanTracer,
    TraceContext,
    observe,
    validate_chrome_trace,
    worker_label,
)
from repro.serving import ModExpRequest, ModExpService

N_REQUESTS = 20
MODULUS = 0xC5AF  # 16-bit odd


def _workload(n=N_REQUESTS):
    return [
        ModExpRequest(
            base=3 + i, exponent=65537, modulus=MODULUS, request_id=f"r{i}"
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def process_run():
    """One observed 20-request process-pool batch, shared by the class."""
    registry, tracer = MetricsRegistry(), SpanTracer()
    requests = _workload()
    with ModExpService(backend="integer", workers=2, worker_kind="process") as svc:
        with observe(metrics=registry, tracer=tracer):
            results = svc.process(requests)
    return requests, results, registry, tracer


class TestProcessPoolAcceptance:
    def test_results_are_correct(self, process_run):
        requests, results, _, _ = process_run
        assert len(results) == N_REQUESTS
        for request, result in zip(requests, results):
            assert result.ok and result.value == request.expected()

    def test_one_cycle_sample_per_request_with_worker_labels(self, process_run):
        _, _, registry, _ = process_run
        hist = registry.histogram("serving.request_cycles")
        agg = hist.aggregate(backend="integer")
        # The satellite regression check: the latency series is NOT empty
        # after a process-pool batch (the pre-telemetry blind spot).
        assert agg is not None and agg.count == N_REQUESTS
        workers = {
            dict(key).get("worker")
            for key, _ in hist._labelled_rows()
        }
        assert workers and all(w and w.startswith("pid") for w in workers)

    def test_worker_metrics_merged_with_worker_labels(self, process_run):
        _, _, registry, _ = process_run
        ops = registry.counter("exponentiator.operations")
        assert ops.total() > 0
        labelled = [dict(key) for key, _ in ops._labelled_rows()]
        assert labelled and all(
            row.get("worker", "").startswith("pid") for row in labelled
        )
        assert registry.counter("exponentiator.exponentiations").total() == N_REQUESTS

    def test_trace_has_nested_request_spans(self, process_run):
        _, _, _, tracer = process_run
        doc = tracer.to_dict()
        assert validate_chrome_trace(doc) == []
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        request_spans = [e for e in spans if e["name"] == REQUEST_SPAN]
        assert len(request_spans) == N_REQUESTS
        assert {e["args"]["request_id"] for e in request_spans} == {
            f"r{i}" for i in range(N_REQUESTS)
        }
        worker_spans = [
            e
            for e in spans
            if e["name"] != REQUEST_SPAN and "worker" in e.get("args", {})
        ]
        assert worker_spans  # the merged sessions actually carried spans

    def test_wall_us_series_also_per_worker(self, process_run):
        _, _, registry, _ = process_run
        agg = registry.histogram("serving.request_wall_us").aggregate(
            backend="integer"
        )
        assert agg is not None and agg.count == N_REQUESTS


class TestWorkerLabelsByPoolKind:
    def _run(self, kind, workers):
        registry = MetricsRegistry()
        with ModExpService(
            backend="integer", workers=workers, worker_kind=kind
        ) as svc:
            with observe(metrics=registry):
                results = svc.process(_workload(6))
        assert all(r.ok for r in results)
        hist = registry.histogram("serving.request_cycles")
        return {dict(key).get("worker") for key, _ in hist._labelled_rows()}

    def test_inline_worker_is_main(self):
        assert self._run("inline", 1) == {"main"}

    def test_thread_workers_use_thread_names(self):
        workers = self._run("thread", 2)
        assert workers and all(w.startswith("repro-serve") for w in workers)


class TestTraceContextAttachment:
    def test_anonymous_requests_get_generated_ids(self):
        registry, tracer = MetricsRegistry(), SpanTracer()
        request = ModExpRequest(base=5, exponent=3, modulus=97)
        with ModExpService(backend="integer", workers=2, worker_kind="process") as svc:
            with observe(metrics=registry, tracer=tracer):
                svc.process([request])
        spans = [
            e
            for e in tracer.to_dict()["traceEvents"]
            if e.get("ph") == "X" and e["name"] == REQUEST_SPAN
        ]
        assert spans and spans[0]["args"]["request_id"].startswith("req")

    def test_no_capture_flags_outside_process_pools(self):
        registry = MetricsRegistry()
        captured = []
        with ModExpService(backend="integer", workers=1, worker_kind="inline") as svc:
            with observe(metrics=registry):
                original = svc._trace_context(_workload(1)[0])
                captured.append(original)
        ctx = captured[0]
        assert not ctx.collect_metrics and not ctx.collect_spans
        assert not ctx.wants_capture

    def test_caller_supplied_trace_is_respected(self):
        registry, tracer = MetricsRegistry(), SpanTracer()
        mine = TraceContext(request_id="custom-id")
        request = ModExpRequest(base=5, exponent=3, modulus=97, trace=mine)
        with ModExpService(backend="integer", workers=1, worker_kind="inline") as svc:
            with observe(metrics=registry, tracer=tracer):
                results = svc.process([request])
        assert results[0].ok
        # No replacement happened: capture flags stayed off as supplied.
        assert request.trace is mine

    def test_worker_label_in_parent_process_is_main(self):
        assert worker_label() == "main"


class TestDisabledObservability:
    def test_process_pool_works_without_a_session(self):
        with ModExpService(backend="integer", workers=2, worker_kind="process") as svc:
            results = svc.process(_workload(4))
        assert all(r.ok for r in results)

    def test_requests_carry_no_trace_when_disabled(self):
        with ModExpService(backend="integer", workers=1, worker_kind="inline") as svc:
            results = svc.process(_workload(2))
        assert all(r.ok for r in results)
