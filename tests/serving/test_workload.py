"""Seeded workload generator: determinism, skew, bursts, wire round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.serving.wire import parse_request_line, request_to_json
from repro.serving.workload import WorkloadConfig, generate_workload


def _cfg(**kw) -> WorkloadConfig:
    base = dict(requests=120, keys=5, bits=(12, 16), zipf_s=1.2)
    base.update(kw)
    return WorkloadConfig(**base)


class TestConfigScreen:
    @pytest.mark.parametrize(
        "kw",
        [
            {"requests": -1},
            {"keys": 0},
            {"bits": ()},
            {"bits": (3,)},
            {"zipf_s": -0.1},
            {"exponent_bits": ()},
            {"f4_share": 1.5},
            {"rate": 0.0},
            {"burst_factor": 0.5},
            {"burst_every": 0.0},
            {"burst_len": 2.0},
            {"interactive_share": 1.5},
            {"interactive_share": -0.1},
            {"interactive_budget_s": 0.0},
            {"batch_budget_s": -1.0},
        ],
    )
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ParameterError):
            _cfg(**kw)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_workload(_cfg(), seed="t")
        b = generate_workload(_cfg(), seed="t")
        assert [r.__dict__ for r in a.requests] == [
            r.__dict__ for r in b.requests
        ]
        assert a.keyring == b.keyring and a.arrivals == b.arrivals

    def test_different_seed_different_trace(self):
        a = generate_workload(_cfg(), seed="t1")
        b = generate_workload(_cfg(), seed="t2")
        assert a.keyring != b.keyring

    def test_key_k_stable_under_other_knobs(self):
        # Key derivation is per-(seed, rank, bits): changing the request
        # count or skew must not reshuffle the keyring.
        a = generate_workload(_cfg(requests=10), seed="t")
        b = generate_workload(_cfg(requests=500, zipf_s=0.1), seed="t")
        assert a.keyring == b.keyring


class TestShape:
    def test_zipf_rank_zero_is_hottest(self):
        w = generate_workload(_cfg(requests=400), seed="skew")
        hist = w.key_histogram()
        counts = [hist[n] for n in w.keyring]
        assert counts[0] == max(counts)
        assert counts[0] > 2 * counts[-1]

    def test_modulus_widths_cycle_over_bits(self):
        w = generate_workload(_cfg(), seed="widths")
        widths = [n.bit_length() for n in w.keyring]
        assert widths == [12, 16, 12, 16, 12]

    def test_f4_share(self):
        w = generate_workload(_cfg(requests=400, f4_share=0.5), seed="f4")
        share = sum(1 for r in w.requests if r.exponent == 65537) / 400
        assert 0.4 < share < 0.6
        none = generate_workload(_cfg(f4_share=0.0), seed="f4")
        assert all(r.exponent != 65537 or r.exponent.bit_length() in (8, 16)
                   for r in none.requests)

    def test_exponent_sizes_come_from_config(self):
        w = generate_workload(_cfg(exponent_bits=(6,)), seed="e")
        assert all(r.exponent.bit_length() == 6 for r in w.requests)

    def test_arrivals_monotone_and_in_deadline(self):
        w = generate_workload(_cfg(), seed="arr")
        assert all(b > a for a, b in zip(w.arrivals, w.arrivals[1:]))
        assert [r.deadline for r in w.requests] == w.arrivals

    def test_bursts_compress_interarrivals(self):
        calm = generate_workload(_cfg(requests=600), seed="b")
        bursty = generate_workload(
            _cfg(requests=600, burst_factor=8.0, burst_every=0.5, burst_len=0.25),
            seed="b",
        )
        # Same request count arrives in less simulated time under bursts.
        assert bursty.arrivals[-1] < calm.arrivals[-1]


class TestPriorityMix:
    def test_default_mix_is_all_batch_with_no_budgets(self):
        w = generate_workload(_cfg(), seed="mix0")
        assert all(r.priority == "batch" for r in w.requests)
        assert all(r.budget_s is None for r in w.requests)

    def test_share_splits_classes_and_assigns_class_budgets(self):
        w = generate_workload(
            _cfg(
                requests=400,
                interactive_share=0.5,
                interactive_budget_s=0.05,
                batch_budget_s=2.0,
            ),
            seed="mix",
        )
        interactive = [r for r in w.requests if r.priority == "interactive"]
        batch = [r for r in w.requests if r.priority == "batch"]
        assert 120 < len(interactive) < 280  # ~half, seeded draw
        assert len(interactive) + len(batch) == 400
        assert all(r.budget_s == 0.05 for r in interactive)
        assert all(r.budget_s == 2.0 for r in batch)

    def test_priority_draw_rides_the_trace_seed(self):
        kw = dict(requests=200, interactive_share=0.3)
        a = generate_workload(_cfg(**kw), seed="p")
        b = generate_workload(_cfg(**kw), seed="p")
        assert [r.priority for r in a.requests] == [
            r.priority for r in b.requests
        ]

    def test_priority_mix_survives_the_wire(self):
        # 0.25 s is exact in binary, so budget_ms → budget_s round-trips
        # bit-identically through the JSON float detour.
        w = generate_workload(
            _cfg(requests=20, interactive_share=0.5, interactive_budget_s=0.25),
            seed="pw",
        )
        for req in w.requests:
            back = parse_request_line(request_to_json(req))
            assert back.priority == req.priority
            assert back.budget_s == req.budget_s


class TestWireCompat:
    def test_round_trip_through_wire_format(self):
        w = generate_workload(_cfg(requests=10), seed="wire")
        for req in w.requests:
            back = parse_request_line(request_to_json(req))
            assert (back.base, back.exponent, back.modulus) == (
                req.base,
                req.exponent,
                req.modulus,
            )
            assert back.request_id == req.request_id
            assert back.deadline == req.deadline

    def test_summary_rows_cover_keyring(self):
        w = generate_workload(_cfg(requests=50), seed="sum")
        rows = w.summary_rows()
        assert len(rows) == 5
        assert sum(row[2] for row in rows) == 50
