"""End-to-end service semantics: correctness, timeouts, backpressure, metrics."""

from __future__ import annotations

import io
import random
import time

import pytest

from repro.errors import ParameterError
from repro.montgomery.params import montgomery_cache_clear
from repro.observability import MetricsRegistry, observe
from repro.serving.backends import (
    BackendCapabilities,
    BackendRegistry,
    BackendResult,
    ModExpBackend,
)
from repro.serving.request import ModExpRequest
from repro.serving.service import ModExpService
from repro.utils.rng import random_odd_modulus


def _workload(count: int, distinct_moduli: int, bits: int = 48, seed: int = 0):
    rng = random.Random(seed)
    moduli = [random_odd_modulus(bits, rng) for _ in range(distinct_moduli)]
    return [
        ModExpRequest(
            rng.randrange(moduli[i % distinct_moduli]),
            rng.randrange(1, moduli[i % distinct_moduli]),
            moduli[i % distinct_moduli],
            request_id=f"r{i}",
        )
        for i in range(count)
    ]


class SleepBackend(ModExpBackend):
    """Test backend: configurable latency, correct answers."""

    name = "sleepy"
    capabilities = BackendCapabilities(
        description="test-only slow backend", process_safe=False
    )

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def model_cycles(self, request):
        return 1.0

    def execute(self, ctx, request):
        time.sleep(self.delay)
        return BackendResult(request.expected(), 1)


def _sleepy_registry(delay: float) -> BackendRegistry:
    registry = BackendRegistry()
    registry.register(SleepBackend(delay))
    return registry


class TestCorrectness:
    @pytest.mark.parametrize("kind", ["inline", "thread", "process"])
    def test_results_match_pow_in_input_order(self, kind):
        requests = _workload(12, 3)
        with ModExpService(backend="integer", workers=2, worker_kind=kind) as svc:
            results = svc.process(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.ok, result
            assert result.request_id == request.request_id
            assert result.value == request.expected()
            assert result.backend == "integer"
            assert result.cycles and result.cycles > 0

    def test_duplicate_request_objects_allowed(self):
        request = _workload(1, 1)[0]
        with ModExpService(worker_kind="inline") as svc:
            results = svc.process([request, request, request])
        assert all(r.ok and r.value == request.expected() for r in results)

    def test_unsupported_request_fails_without_dispatch(self):
        requests = _workload(2, 2, bits=20)
        with ModExpService(backend="rtl", workers=1, worker_kind="thread") as svc:
            wide = ModExpRequest(2, 3, (1 << 96) + 61)  # over rtl's 64-bit cap
            results = svc.process([requests[0], wide, requests[1]])
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].error_type == "ParameterError"

    def test_batch_indices_reported(self):
        requests = _workload(8, 2)
        with ModExpService(worker_kind="inline") as svc:
            results = svc.process(requests)
        assert {r.batch_index for r in results} == {0, 1}

    def test_process_pool_requires_registered_name(self):
        with pytest.raises(ParameterError, match="not process-safe"):
            ModExpService(backend="gate", workers=2, worker_kind="process")

        class _Portable(SleepBackend):
            name = "portable"
            capabilities = BackendCapabilities(
                description="process-safe but unregistered", process_safe=True
            )

        registry = BackendRegistry()
        registry.register(_Portable(0.0))
        with pytest.raises(ParameterError, match="default registry"):
            ModExpService(
                backend="portable",
                registry=registry,
                workers=2,
                worker_kind="process",
            )


class TestTimeouts:
    def test_per_request_timeout_surfaces_timeout_error(self):
        requests = _workload(2, 1, bits=16, seed=3)
        slow = ModExpRequest(
            requests[0].base,
            requests[0].exponent,
            requests[0].modulus,
            request_id="slow",
            timeout=0.05,
        )
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                backend=SleepBackend(0.4),
                registry=_sleepy_registry(0.4),
                workers=1,
                worker_kind="thread",
            ) as svc:
                results = svc.process([slow])
        assert not results[0].ok
        assert results[0].error_type == "TimeoutError"
        assert (
            registry.counter("serving.requests").value(
                status="timeout", backend="sleepy"
            )
            == 1
        )

    def test_default_timeout_applies_when_request_has_none(self):
        request = _workload(1, 1, bits=16, seed=4)[0]
        with ModExpService(
            backend=SleepBackend(0.4),
            registry=_sleepy_registry(0.4),
            workers=1,
            worker_kind="thread",
            default_timeout=0.05,
        ) as svc:
            results = svc.process([request])
        assert results[0].error_type == "TimeoutError"

    def test_no_timeout_waits_for_completion(self):
        request = _workload(1, 1, bits=16, seed=5)[0]
        with ModExpService(
            backend=SleepBackend(0.1),
            registry=_sleepy_registry(0.1),
            workers=1,
            worker_kind="thread",
        ) as svc:
            results = svc.process([request])
        assert results[0].ok and results[0].value == request.expected()


class TestBackpressure:
    def test_saturated_service_rejects_rather_than_deadlocks(self):
        """Acceptance regression: queue_limit saturation yields QueueFull
        results and the call completes promptly."""
        requests = _workload(8, 1, bits=16, seed=6)
        registry = MetricsRegistry()
        t0 = time.monotonic()
        with observe(metrics=registry):
            with ModExpService(
                backend=SleepBackend(0.15),
                registry=_sleepy_registry(0.15),
                workers=1,
                worker_kind="thread",
                queue_limit=2,
                max_batch=16,
            ) as svc:
                results = svc.process(requests, on_full="reject")
        elapsed = time.monotonic() - t0
        rejected = [r for r in results if r.error_type == "QueueFull"]
        completed = [r for r in results if r.ok]
        assert len(rejected) == 6 and len(completed) == 2
        # 2 sleeps' worth of work, not 8: rejection was immediate.
        assert elapsed < 2.0
        counters = registry.counter("serving.requests")
        assert counters.value(status="accepted", backend="sleepy") == 2
        assert counters.value(status="rejected", backend="sleepy") == 6
        assert counters.value(status="completed", backend="sleepy") == 2

    def test_wait_mode_completes_everything(self):
        requests = _workload(6, 2, bits=16, seed=7)
        with ModExpService(
            backend=SleepBackend(0.02),
            registry=_sleepy_registry(0.02),
            workers=2,
            worker_kind="thread",
            queue_limit=2,
        ) as svc:
            results = svc.process(requests, on_full="wait")
        assert all(r.ok for r in results)

    def test_bad_on_full_value_rejected(self):
        with ModExpService(worker_kind="inline") as svc:
            with pytest.raises(ParameterError, match="on_full"):
                svc.process([], on_full="drop")


class TestMetrics:
    def test_counters_reflect_accepted_and_completed(self):
        montgomery_cache_clear()
        requests = _workload(9, 3, seed=8)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(worker_kind="inline") as svc:
                svc.process(requests)
        counters = registry.counter("serving.requests")
        assert counters.value(status="accepted", backend="integer") == 9
        assert counters.value(status="completed", backend="integer") == 9
        # One precompute per distinct modulus; 3 batches of 3.
        assert registry.counter("montgomery.precompute").total() == 3
        assert registry.counter("serving.batches").total() == 3
        hist = registry.histogram("serving.batch_size").series()
        assert hist.count == 3 and hist.sum == 9
        # Latency series now carry a worker label too; aggregate() folds
        # every worker's series for the backend together.
        assert registry.histogram("serving.request_cycles").aggregate(
            backend="integer"
        ).count == 9
        assert registry.histogram("serving.request_wall_us").aggregate(
            backend="integer"
        ).count == 9
        assert registry.histogram("serving.request_cycles").series(
            backend="integer", worker="main"
        ).count == 9


class TestServeLoop:
    def test_json_lines_roundtrip_with_flush_marker(self):
        from repro.serving.wire import request_to_json

        requests = _workload(5, 2, seed=9)
        lines = [request_to_json(r) + "\n" for r in requests]
        lines.insert(2, "\n")  # flush marker mid-stream
        out = io.StringIO()
        with ModExpService(worker_kind="inline", max_batch=100) as svc:
            stats = svc.serve(iter(lines), out)
        assert stats == {
            "served": 5, "ok": 5, "failed": 0, "rejected": 0, "parse_errors": 0,
        }
        import json

        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        by_id = {p["id"]: p for p in payloads}
        for request in requests:
            value = by_id[request.request_id]["value"]
            value = int(value) if isinstance(value, str) else value
            assert value == request.expected()

    def test_malformed_line_answers_immediately_and_loop_continues(self):
        from repro.serving.wire import request_to_json

        good = _workload(2, 1, seed=10)
        lines = [
            request_to_json(good[0]) + "\n",
            '{"nope": 1}\n',
            request_to_json(good[1]) + "\n",
        ]
        out = io.StringIO()
        with ModExpService(worker_kind="inline", max_batch=1) as svc:
            stats = svc.serve(iter(lines), out)
        assert stats["served"] == 3
        assert stats["parse_errors"] == 1 and stats["ok"] == 2
        import json

        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [p["ok"] for p in payloads] == [True, False, True]
        assert payloads[1]["error_type"] == "WireFormatError"
