"""CLI entry points for the serving engine: serve / batch / backends."""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.cli import main
from repro.serving.request import ModExpRequest
from repro.serving.wire import request_to_json
from repro.utils.rng import random_odd_modulus


def _workload_lines(count: int, distinct_moduli: int, seed: int = 0) -> str:
    rng = random.Random(seed)
    moduli = [random_odd_modulus(48, rng) for _ in range(distinct_moduli)]
    lines = []
    for i in range(count):
        n = moduli[i % distinct_moduli]
        lines.append(
            request_to_json(
                ModExpRequest(
                    rng.randrange(n), rng.randrange(1, n), n, request_id=f"r{i}"
                )
            )
        )
    return "\n".join(lines) + "\n"


def _expected_by_id(workload: str) -> dict:
    out = {}
    for line in workload.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        base, exp, mod = (
            int(obj[k]) if isinstance(obj[k], str) else obj[k]
            for k in ("base", "exponent", "modulus")
        )
        out[obj["id"]] = pow(base, exp, mod)
    return out


class TestBatchCommand:
    def test_batch_file_to_file(self, tmp_path):
        workload = _workload_lines(6, 2)
        src = tmp_path / "work.jsonl"
        dst = tmp_path / "results.jsonl"
        src.write_text(workload)
        out = io.StringIO()
        code = main(["batch", str(src), "--out", str(dst)], out=out)
        assert code == 0
        results = [json.loads(line) for line in dst.read_text().splitlines()]
        assert len(results) == 6
        expected = _expected_by_id(workload)
        for obj in results:
            assert obj["ok"] is True
            value = int(obj["value"]) if isinstance(obj["value"], str) else obj["value"]
            assert value == expected[obj["id"]]
        assert "6 requests, 6 ok, 0 failed" in out.getvalue()

    def test_batch_bad_line_keeps_alignment_and_exits_nonzero(self, tmp_path):
        workload = _workload_lines(2, 1, seed=1).splitlines()
        workload.insert(1, '{"base": 2}')  # missing fields
        src = tmp_path / "work.jsonl"
        src.write_text("\n".join(workload) + "\n")
        out = io.StringIO()
        code = main(["batch", str(src)], out=out)
        assert code == 1
        payload_lines = [
            line for line in out.getvalue().splitlines() if line.startswith("{")
        ]
        results = [json.loads(line) for line in payload_lines]
        assert [r["ok"] for r in results] == [True, False, True]
        assert results[1]["error_type"] == "WireFormatError"

    def test_batch_metrics_snapshot_shows_serving_counters(self, tmp_path):
        workload = _workload_lines(4, 2, seed=2)
        src = tmp_path / "work.jsonl"
        dst = tmp_path / "results.jsonl"
        metrics = tmp_path / "metrics.json"
        src.write_text(workload)
        out = io.StringIO()
        code = main(
            [
                "batch", str(src), "--out", str(dst),
                "--metrics", "--metrics-out", str(metrics),
            ],
            out=out,
        )
        assert code == 0
        assert "serving.requests" in out.getvalue()
        snapshot = json.loads(metrics.read_text())
        names = {row["name"] for rows in snapshot.values() for row in rows}
        assert {"serving.requests", "serving.batches", "serving.batch_size"} <= names

    def test_batch_rejects_unknown_backend(self, tmp_path):
        src = tmp_path / "work.jsonl"
        src.write_text(_workload_lines(1, 1))
        with pytest.raises(Exception, match="unknown backend"):
            main(["batch", str(src), "--backend", "abacus"], out=io.StringIO())


class TestServeCommand:
    def test_serve_reads_stdin_writes_results(self, monkeypatch, capsys):
        workload = _workload_lines(3, 1, seed=3)
        monkeypatch.setattr("sys.stdin", io.StringIO(workload))
        out = io.StringIO()
        code = main(["serve", "--max-batch", "2"], out=out)
        assert code == 0
        results = [json.loads(line) for line in out.getvalue().splitlines()]
        expected = _expected_by_id(workload)
        for obj in results:
            value = int(obj["value"]) if isinstance(obj["value"], str) else obj["value"]
            assert value == expected[obj["id"]]
        assert "[serve: 3 served, 3 ok" in capsys.readouterr().err


class TestBackendsCommand:
    def test_backends_table_lists_every_backend(self):
        out = io.StringIO()
        assert main(["backends"], out=out) == 0
        text = out.getvalue()
        for name in (
            "integer",
            "crt-rsa",
            "rtl",
            "gate",
            "highradix",
            "scalable",
            "chip",
        ):
            assert name in text
