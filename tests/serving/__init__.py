"""Tests for the serving engine (backends, scheduler, pool, service, wire)."""
