"""Self-healing serving: pool recovery, verification, breakers, chaos drill.

The acceptance test at the bottom is the PR's contract: a 200-request
workload under seeded worker kills, injected exceptions and bit flips
completes with every result equal to ``pow(x, e, N)`` and zero silent
corruptions.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import FaultDetected, InjectedFault, QueueFull
from repro.observability import MetricsRegistry, observe
from repro.robustness import (
    BreakerConfig,
    ChaosConfig,
    RetryPolicy,
    VerifyPolicy,
)
from repro.robustness.breaker import BreakerBoard
from repro.serving.pool import WorkerPool
from repro.serving.request import ModExpRequest
from repro.serving.service import ModExpService

N = 0xC96F4F3C6D21E1F1A9F5A8B7 | 1  # 96-bit odd modulus


def reqs(count, exponent=65537, prefix="r", timeout=None):
    return [
        ModExpRequest(
            base=3 + i,
            exponent=exponent,
            modulus=N,
            request_id=f"{prefix}{i}",
            timeout=timeout,
        )
        for i in range(count)
    ]


def expected(i, exponent=65537):
    return pow(3 + i, exponent, N)


# ----------------------------------------------------------------------
# Satellite bugfix: slot accounting under timeout / cancellation
# ----------------------------------------------------------------------
class TestPoolSlotRelease:
    def test_abandon_frees_the_slot_of_a_running_task(self):
        """Regression: before `abandon`, a timed-out but still-running
        task held its in-flight slot forever; enough of them saturated
        the window permanently and every later submit deadlocked."""
        release = threading.Event()
        pool = WorkerPool(workers=1, kind="thread", queue_limit=2)
        try:
            stuck = [pool.submit(release.wait, 30) for _ in range(2)]
            # Window is saturated by wedged tasks: submission rejects.
            with pytest.raises(QueueFull):
                pool.submit(lambda: None)
            # The running task's slot is released by abandon itself; the
            # queued one's by cancel()'s done callback — either way the
            # window fully drains.
            for f in stuck:
                pool.abandon(f)
            assert pool.depth == 0
            # The freed window admits new work — this is the submission
            # that raised QueueFull forever pre-fix.
            replacement = pool.submit(lambda: 7)
            release.set()  # the wedged worker drains and picks it up
            assert replacement.result(timeout=10) == 7
            time.sleep(0.05)  # abandoned task finishing must not double-free
            assert pool.depth == 0
        finally:
            release.set()
            pool.shutdown(wait=False)

    def test_abandon_is_idempotent_with_the_done_callback(self):
        pool = WorkerPool(workers=1, kind="thread", queue_limit=4)
        try:
            f = pool.submit(lambda: 1)
            f.result(timeout=10)
            time.sleep(0.05)  # let the done callback release first
            assert not pool.abandon(f)  # already released: no double-free
            assert pool.depth == 0
        finally:
            pool.shutdown()

    def test_service_timeout_path_releases_slots(self):
        """Saturation-after-timeouts regression at the service level:
        requests that blow their deadline must not eat the window."""
        from repro.serving.backends import (
            BackendCapabilities,
            BackendResult,
            ModExpBackend,
        )

        release = threading.Event()

        class Wedged(ModExpBackend):
            name = "wedged"
            capabilities = BackendCapabilities(
                description="test-only wedged backend", process_safe=False
            )

            def model_cycles(self, request):
                return 1.0

            def execute(self, ctx, request):
                release.wait(30)
                return BackendResult(request.expected(), None)

        svc = ModExpService(
            backend=Wedged(), workers=2, worker_kind="thread", queue_limit=4
        )
        try:
            for round_ in range(3):  # 12 timed-out requests through a 4-window
                results = svc.process(reqs(4, prefix=f"t{round_}_", timeout=0.05))
                assert all(r.error_type == "TimeoutError" for r in results)
            assert svc.pool.depth == 0  # every slot came back
        finally:
            release.set()
            svc.close(wait=False)


# ----------------------------------------------------------------------
# Worker-crash recovery (process pools)
# ----------------------------------------------------------------------
class TestWorkerCrashRecovery:
    def test_killed_workers_are_respawned_and_requests_requeued(self):
        svc = ModExpService(
            backend="integer",
            workers=2,
            worker_kind="process",
            chaos=ChaosConfig(seed=11, worker_kill_rate=0.2),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
        )
        try:
            results = svc.process(reqs(30))
            assert all(r.ok for r in results)
            assert [r.value for r in results] == [expected(i) for i in range(30)]
            assert svc.pool.restarts >= 1  # at least one pool respawn
        finally:
            svc.close(wait=False)

    def test_restart_metric_emitted(self):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            svc = ModExpService(
                backend="integer",
                workers=1,
                worker_kind="process",
                chaos=ChaosConfig(seed=1, worker_kill_rate=0.5),
                retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
            )
            try:
                results = svc.process(reqs(10))
                assert all(r.ok for r in results)
            finally:
                svc.close(wait=False)
        assert registry.counter("serving.worker_restarts").total() >= 1
        assert registry.counter("serving.requeued").total() >= 1


# ----------------------------------------------------------------------
# Verification + retry
# ----------------------------------------------------------------------
class TestVerifyAndRetry:
    def test_silent_bitflips_are_caught_and_healed(self):
        svc = ModExpService(
            backend="integer",
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(seed=2, bitflip_rate=0.3),
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
        )
        try:
            results = svc.process(reqs(25))
            assert [r.value for r in results] == [expected(i) for i in range(25)]
        finally:
            svc.close()

    def test_without_verification_bitflips_pass_silently(self):
        """The control experiment: corruption really is silent, so the
        verifier (not an exception path) is what stands between a flipped
        register and the client."""
        svc = ModExpService(
            backend="integer",
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(seed=2, bitflip_rate=0.3),
        )
        try:
            results = svc.process(reqs(25))
            wrong = [
                r
                for i, r in enumerate(results)
                if r.ok and r.value != expected(i)
            ]
            assert wrong  # some corrupted values sailed through
        finally:
            svc.close()

    def test_detection_metrics(self):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            svc = ModExpService(
                backend="integer",
                workers=1,
                worker_kind="inline",
                chaos=ChaosConfig(seed=2, bitflip_rate=0.3),
                verify=VerifyPolicy(mode="full"),
                retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
            )
            try:
                svc.process(reqs(25))
            finally:
                svc.close()
        assert registry.counter("serving.faults_detected").total() >= 1
        assert registry.counter("serving.retries").total() >= 1
        assert registry.counter("serving.verified").total() >= 25

    def test_exhausted_retries_fail_detected_never_silent(self):
        svc = ModExpService(
            backend="integer",
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(seed=7, bitflip_rate=0.4, exception_rate=0.1),
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        try:
            results = svc.process(reqs(40))
            for i, r in enumerate(results):
                if r.ok:
                    assert r.value == expected(i)  # zero silent corruptions
                else:
                    assert r.error_type in ("FaultDetected", "InjectedFault")
            assert any(not r.ok for r in results)  # seed 7 exhausts some
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Breakers + failover
# ----------------------------------------------------------------------
class TestBreakerIntegration:
    def _storm_service(self, **kw):
        return ModExpService(
            backend="integer",
            workers=1,
            worker_kind="inline",
            chaos=ChaosConfig(seed=5, target_prefix="storm"),
            **kw,
        )

    def test_storm_opens_then_recovers_half_open_to_closed(self):
        clock = [0.0]
        svc = self._storm_service()
        svc.breakers = BreakerBoard(
            BreakerConfig(failure_threshold=3, cooldown_s=10.0, half_open_probes=1),
            clock=lambda: clock[0],
        )
        try:
            svc.process(reqs(5, prefix="storm"))
            brk = svc.breakers.get("integer")
            assert brk.state == "open"
            assert not svc.breakers.allow("integer")
            clock[0] = 11.0  # cooldown elapses
            results = svc.process(reqs(3, prefix="clean"))
            assert all(r.ok for r in results)
            assert brk.state == "closed"
        finally:
            svc.close()

    def test_open_breaker_routes_retries_to_alternate_backend(self):
        svc = self._storm_service(
            breaker=BreakerConfig(failure_threshold=2, cooldown_s=999.0),
            failover=True,
        )
        try:
            svc.process(reqs(3, prefix="storm"))  # no retries: breaker opens
            assert svc.breakers.get("integer").state == "open"
            svc.retry = RetryPolicy(max_attempts=3, backoff_s=0.0)
            results = svc.process(reqs(4, exponent=17, prefix="stormB"))
            assert all(r.ok for r in results)
            assert all(r.backend != "integer" for r in results)
            assert [r.value for r in results] == [
                expected(i, 17) for i in range(4)
            ]
        finally:
            svc.close()

    def test_failover_metric(self):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            svc = self._storm_service(
                breaker=BreakerConfig(failure_threshold=1, cooldown_s=999.0),
                failover=True,
                retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
            )
            try:
                svc.process(reqs(1, prefix="storm"))  # opens after 1 failure
                results = svc.process(reqs(2, prefix="stormB"))
                assert all(r.ok for r in results)
            finally:
                svc.close()
        assert registry.counter("serving.failovers").total() >= 1
        assert registry.counter("serving.breaker_transitions").total() >= 1


# ----------------------------------------------------------------------
# Acceptance: the 200-request chaos drill
# ----------------------------------------------------------------------
class TestChaosAcceptance:
    def test_200_requests_process_pool_kills_exceptions_flips(self):
        """Kills (>=5%), exceptions (5%) and result bit flips (5%) over a
        200-request batch through a real process pool: every returned
        value equals pow(x, e, N); nothing silently corrupted."""
        registry = MetricsRegistry()
        with observe(metrics=registry):
            svc = ModExpService(
                backend="integer",
                workers=4,
                worker_kind="process",
                chaos=ChaosConfig(
                    seed=13,
                    worker_kill_rate=0.05,
                    exception_rate=0.05,
                    bitflip_rate=0.05,
                ),
                verify=VerifyPolicy(mode="full"),
                retry=RetryPolicy(max_attempts=5, backoff_s=0.0),
                breaker=BreakerConfig(failure_threshold=20),
            )
            try:
                results = svc.process(reqs(200))
            finally:
                svc.close(wait=False)
        assert len(results) == 200
        failures = [r for r in results if not r.ok]
        assert not failures, [r.error_type for r in failures]
        assert [r.value for r in results] == [expected(i) for i in range(200)]
        # The drill must actually have injected and detected faults.
        # (Worker-side chaos.injected counts die with killed processes,
        # so the parent-side recovery counters are the robust signal.)
        assert registry.counter("serving.retries").total() >= 5
        assert registry.counter("serving.faults_detected").total() >= 1
        assert registry.counter("serving.worker_restarts").total() >= 1

    def test_register_level_flips_on_the_gate_backend(self):
        """Bit flips land in real netlist DFFs mid-multiplication; the
        verifier (range / residue) still catches every corruption."""
        svc = ModExpService(
            backend="gate",
            workers=1,
            worker_kind="thread",
            chaos=ChaosConfig(seed=3, bitflip_rate=0.5),
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=6, backoff_s=0.0),
        )
        small_n = 197
        try:
            requests = [
                ModExpRequest(
                    base=2 + i, exponent=19, modulus=small_n, request_id=f"g{i}"
                )
                for i in range(8)
            ]
            results = svc.process(requests)
            for i, r in enumerate(results):
                if r.ok:
                    assert r.value == pow(2 + i, 19, small_n)
        finally:
            svc.close()
