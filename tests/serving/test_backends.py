"""Backend registry semantics and capability declarations."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.serving.backends import (
    BackendCapabilities,
    BackendResult,
    IntegerBackend,
    ModExpBackend,
    default_registry,
)
from repro.serving.request import ModExpRequest


class _StubBackend(ModExpBackend):
    name = "stub"
    capabilities = BackendCapabilities(description="test stub", max_bits=16)

    def execute(self, ctx, request):
        return BackendResult(pow(request.base, request.exponent, request.modulus))


class TestRegistry:
    def test_default_registry_has_all_engines(self):
        reg = default_registry()
        assert reg.names() == [
            "chip",
            "crt-rsa",
            "gate",
            "highradix",
            "integer",
            "rtl",
            "scalable",
        ]

    def test_get_unknown_backend_lists_known(self):
        with pytest.raises(ParameterError, match="integer"):
            default_registry().get("does-not-exist")

    def test_duplicate_registration_rejected_unless_replace(self):
        reg = default_registry()
        with pytest.raises(ParameterError, match="already registered"):
            reg.register(IntegerBackend())
        reg.register(IntegerBackend(), replace=True)  # explicit replace ok

    def test_register_requires_name(self):
        backend = _StubBackend()
        backend.name = ""
        with pytest.raises(ParameterError, match="name"):
            default_registry().register(backend)

    def test_capability_rows_cover_every_backend(self):
        reg = default_registry()
        rows = reg.capability_rows()
        assert [row[0] for row in rows] == reg.names()
        assert all(len(row) == 7 for row in rows)


class TestCapabilityScreen:
    def test_width_ceiling_rejects(self):
        backend = _StubBackend()
        small = ModExpRequest(2, 3, 0xFFFF)  # 16 bits: at the limit
        large = ModExpRequest(2, 3, (1 << 17) + 1)
        assert backend.reject_reason(small) is None
        reason = backend.reject_reason(large)
        assert reason is not None and "16" in reason

    def test_explicit_l_counts_toward_width(self):
        backend = _StubBackend()
        req = ModExpRequest(2, 3, 251, l=20)
        assert backend.reject_reason(req) is not None

    def test_crt_requires_factors(self):
        crt = default_registry().get("crt-rsa")
        plain = ModExpRequest(2, 3, 15)
        with_factors = ModExpRequest(2, 3, 15, factors=(3, 5))
        assert crt.reject_reason(plain) is not None
        assert crt.reject_reason(with_factors) is None

    def test_simulators_are_thread_only(self):
        reg = default_registry()
        for name in ("rtl", "gate"):
            caps = reg.get(name).capabilities
            assert caps.simulator and not caps.process_safe
        assert reg.get("integer").capabilities.process_safe


class TestCostModel:
    def test_cost_grows_with_exponent_bits(self):
        backend = IntegerBackend()
        n = (1 << 63) + 5
        cheap = ModExpRequest(2, 3, n)
        dear = ModExpRequest(2, (1 << 60) + 1, n)
        assert backend.estimate_cost(dear) > backend.estimate_cost(cheap)

    def test_simulator_cost_reflects_wall_weight(self):
        reg = default_registry()
        n = 0xC001
        req = ModExpRequest(3, 5, n)
        assert reg.get("rtl").estimate_cost(req) > reg.get("integer").estimate_cost(req)

    def test_crt_model_cheaper_than_full_width(self):
        reg = default_registry()
        n = (1 << 63) + 5
        req = ModExpRequest(2, n - 2, n, factors=None)
        assert reg.get("crt-rsa").model_cycles(req) < reg.get("integer").model_cycles(req)
