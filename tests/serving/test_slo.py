"""SLO policy: cycle budgets from the paper's formulas, and enforcement."""

import pytest

from repro.errors import ParameterError
from repro.observability import MetricsRegistry, observe
from repro.serving import ModExpRequest, ModExpService, SLOPolicy
from repro.systolic.timing import mmm_cycles, mmm_cycles_corrected


def _request(bits=16, exponent=65537, l=0):
    modulus = (1 << (bits - 1)) | 0xB  # odd, exactly `bits` wide
    return ModExpRequest(base=7, exponent=exponent, modulus=modulus, l=l)


class TestSLOPolicyBudget:
    def test_corrected_mode_formula(self):
        # l=16, e=65537 (17 bits): 2*17 mults x (3*16+5) cycles each.
        request = _request(bits=16, exponent=65537)
        assert SLOPolicy().cycle_budget(request) == 34 * mmm_cycles_corrected(16)
        assert SLOPolicy().cycle_budget(request) == 34 * 53

    def test_paper_mode_uses_3l_plus_4(self):
        request = _request(bits=16, exponent=65537)
        assert SLOPolicy(mode="paper").cycle_budget(request) == 34 * mmm_cycles(16)
        assert SLOPolicy(mode="paper").cycle_budget(request) == 34 * 52

    def test_explicit_width_overrides_modulus_bits(self):
        request = _request(bits=16, exponent=3, l=64)
        assert SLOPolicy().cycle_budget(request) == 4 * mmm_cycles_corrected(64)

    def test_exponent_one_still_costs_one_bit(self):
        # bitlen(1) == 1, and the max(..., 1) guard keeps the budget > 0.
        request = _request(bits=8, exponent=1)
        assert SLOPolicy().cycle_budget(request) == 2 * mmm_cycles_corrected(8)

    def test_margin_scales_and_rounds_up(self):
        request = _request(bits=16, exponent=65537)
        base = SLOPolicy().cycle_budget(request)
        assert SLOPolicy(margin=2.0).cycle_budget(request) == 2 * base
        tight = SLOPolicy(margin=0.5).cycle_budget(request)
        assert tight == -(-base // 2)  # ceil division

    def test_fixed_budget_bypasses_formula(self):
        policy = SLOPolicy(fixed_budget=123)
        assert policy.cycle_budget(_request(bits=16, exponent=65537)) == 123
        assert policy.cycle_budget(_request(bits=8, exponent=1)) == 123

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            SLOPolicy(mode="optimistic")
        with pytest.raises(ParameterError):
            SLOPolicy(margin=0)
        with pytest.raises(ParameterError):
            SLOPolicy(margin=-1.0)
        with pytest.raises(ParameterError):
            SLOPolicy(fixed_budget=0)


class TestServiceEnforcement:
    def _serve(self, slo, n=8):
        registry = MetricsRegistry()
        requests = [
            ModExpRequest(base=3 + i, exponent=65537, modulus=0xC5AF)
            for i in range(n)
        ]
        with ModExpService(backend="integer", workers=1, slo=slo) as svc:
            with observe(metrics=registry):
                results = svc.process(requests)
        assert all(r.ok for r in results)
        return registry

    def test_impossible_budget_flags_every_request(self):
        registry = self._serve(SLOPolicy(fixed_budget=1))
        assert registry.counter("serving.slo_checks").total() == 8
        violations = registry.counter("serving.slo_violations")
        assert violations.total(backend="integer") == 8

    def test_analytic_budget_never_fires_on_cycle_accurate_backend(self):
        registry = self._serve(SLOPolicy(margin=1.0))
        assert registry.counter("serving.slo_checks").total() == 8
        assert registry.counter("serving.slo_violations").total() == 0

    def test_huge_fixed_budget_never_fires(self):
        registry = self._serve(SLOPolicy(fixed_budget=10**9))
        assert registry.counter("serving.slo_violations").total() == 0

    def test_slo_none_disables_checks(self):
        registry = self._serve(None)
        assert registry.counter("serving.slo_checks").total() == 0
        assert registry.counter("serving.slo_violations").total() == 0
        # Telemetry itself is unaffected by the disabled policy.
        hist = registry.histogram("serving.request_cycles")
        assert hist.aggregate(backend="integer").count == 8

    def test_violation_counter_carries_worker_label(self):
        registry = self._serve(SLOPolicy(fixed_budget=1))
        rows = [
            dict(key)
            for key, _ in registry.counter("serving.slo_violations")._labelled_rows()
        ]
        assert rows and all("worker" in row and "backend" in row for row in rows)
