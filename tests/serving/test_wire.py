"""JSON-lines wire format: parsing, serialization, alignment."""

from __future__ import annotations

import json

import pytest

from repro.errors import WireFormatError
from repro.serving.request import ModExpRequest, ModExpResult
from repro.serving.wire import (
    parse_request_line,
    read_requests,
    request_to_json,
    result_to_dict,
    result_to_json,
)


class TestParse:
    def test_minimal_request(self):
        request = parse_request_line('{"base": 4, "exponent": 13, "modulus": 497}')
        assert (request.base, request.exponent, request.modulus) == (4, 13, 497)
        assert request.request_id == ""

    def test_all_fields(self):
        line = json.dumps(
            {
                "id": "job-1",
                "base": 2,
                "exponent": 7,
                "modulus": 15,
                "p": 3,
                "q": 5,
                "l": 8,
                "timeout": 1.5,
                "deadline": 9,
            }
        )
        request = parse_request_line(line)
        assert request.request_id == "job-1"
        assert request.factors == (3, 5)
        assert request.l == 8
        assert request.timeout == 1.5
        assert request.deadline == 9.0

    def test_hex_string_operands(self):
        request = parse_request_line(
            '{"base": "0x10", "exponent": "3", "modulus": "0xFFEF"}'
        )
        assert (request.base, request.exponent, request.modulus) == (16, 3, 0xFFEF)

    def test_big_int_string_operands_roundtrip(self):
        n = (1 << 255) + 95  # far beyond 2^53
        original = ModExpRequest(12345, 65537, n, request_id="big")
        request = parse_request_line(request_to_json(original))
        assert request == original
        # On the wire the modulus travelled as a string.
        assert isinstance(json.loads(request_to_json(original))["modulus"], str)

    def test_integer_id_echoed_as_string(self):
        request = parse_request_line('{"id": 7, "base": 2, "exponent": 3, "modulus": 9}')
        assert request.request_id == "7"

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("not json at all", "invalid JSON"),
            ("[1, 2, 3]", "JSON object"),
            ('{"base": 2, "exponent": 3}', "modulus"),
            ('{"base": 2, "exponent": 3, "modulus": 9, "bogus": 1}', "bogus"),
            ('{"base": true, "exponent": 3, "modulus": 9}', "base"),
            ('{"base": "xyz", "exponent": 3, "modulus": 9}', "parseable"),
            ('{"base": 2, "exponent": 3, "modulus": 9, "p": 3}', "together"),
            ('{"base": 2, "exponent": 3, "modulus": 9, "timeout": "soon"}', "number"),
            ('{"base": 2, "exponent": 3, "modulus": 8}', "odd"),
        ],
    )
    def test_malformed_lines_raise_wire_format_error(self, line, fragment):
        with pytest.raises(WireFormatError, match=fragment):
            parse_request_line(line)

    def test_recoverable_id_attached_to_error(self):
        with pytest.raises(WireFormatError) as excinfo:
            parse_request_line('{"id": "r9", "base": 2, "exponent": 3, "modulus": 8}')
        assert excinfo.value.request_id == "r9"


class TestResultSerialization:
    def test_success_result_fields(self):
        request = ModExpRequest(4, 13, 497, request_id="ok-1")
        result = ModExpResult.success(
            request, request.expected(), backend="integer", cycles=1234,
            wall_us=56.789, batch_index=2,
        )
        obj = result_to_dict(result)
        assert obj == {
            "id": "ok-1",
            "ok": True,
            "value": request.expected(),
            "cycles": 1234,
            "wall_us": 56.8,
            "backend": "integer",
            "batch": 2,
        }

    def test_large_value_stringified(self):
        n = (1 << 127) + 1
        request = ModExpRequest(3, 5, n, request_id="w")
        result = ModExpResult.success(
            request, (1 << 100) + 7, backend="integer", cycles=None, wall_us=None,
            batch_index=None,
        )
        obj = result_to_dict(result)
        assert obj["value"] == str((1 << 100) + 7)
        assert "cycles" not in obj and "wall_us" not in obj and "batch" not in obj

    def test_failure_result_fields(self):
        result = ModExpResult.failure("bad-1", ValueError("boom"), backend="rtl")
        obj = json.loads(result_to_json(result))
        assert obj["ok"] is False
        assert obj["error"] == "boom"
        assert obj["error_type"] == "ValueError"
        assert obj["backend"] == "rtl"


class TestReadRequests:
    def test_line_numbers_and_blank_skipping(self):
        lines = [
            '{"base": 2, "exponent": 3, "modulus": 9}\n',
            "\n",
            "garbage\n",
            '{"base": 3, "exponent": 5, "modulus": 11}\n',
        ]
        items = list(read_requests(lines))
        assert [lineno for lineno, _ in items] == [1, 3, 4]
        assert isinstance(items[0][1], ModExpRequest)
        assert isinstance(items[1][1], WireFormatError)
        assert isinstance(items[2][1], ModExpRequest)

    def test_roundtrip_workload(self):
        requests = [
            ModExpRequest(2, 3, 9, request_id="a"),
            ModExpRequest(3, 65537, (1 << 64) + 13, request_id="b", timeout=2.0),
            ModExpRequest(5, 7, 77, request_id="c", factors=(7, 11), l=8),
        ]
        lines = [request_to_json(r) + "\n" for r in requests]
        parsed = [item for _, item in read_requests(lines)]
        assert parsed == requests
