"""Coalescing under Zipf mixed traffic: grouping, shard stability, no loss.

The workload generator's Zipf keyring is the adversarial case for the
sharded data plane: a few hot moduli dominate (deep batches for their
home shards) while the tail moduli trickle in (many thin batches).
These tests pin the scheduler's grouping arithmetic on that mix, the
stability of batch→shard placement, and the service-level guarantee
that backpressure reshapes *when* requests run, never *whether* they
are answered.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.serving import ModExpRequest, ModExpService
from repro.serving.backends import default_registry
from repro.serving.scheduler import BatchScheduler, coalesce
from repro.serving.shard import ShardMap
from repro.serving.workload import WorkloadConfig, generate_workload

ZIPF = WorkloadConfig(
    requests=200,
    keys=8,
    bits=(24, 32),
    zipf_s=1.2,
    exponent_bits=(8, 16),
)


def _zipf_requests(seed="zipf-coalesce"):
    return list(generate_workload(ZIPF, seed=seed).requests)


class TestGroupCounts:
    def test_one_batch_per_distinct_key_without_chunking(self):
        requests = _zipf_requests()
        backend = default_registry().get("integer")
        batches = coalesce(requests, backend, max_batch=0)
        distinct = {r.coalesce_key for r in requests}
        assert len(batches) == len(distinct)
        assert sum(b.size for b in batches) == len(requests)
        # Zipf skew shows up as a deep head batch: the hottest modulus
        # alone carries several times its fair share of the traffic.
        assert max(b.size for b in batches) > 2 * len(requests) // ZIPF.keys

    def test_chunked_group_count_matches_ceiling_arithmetic(self):
        requests = _zipf_requests()
        backend = default_registry().get("integer")
        max_batch = 16
        batches = coalesce(requests, backend, max_batch=max_batch)
        per_key = Counter(r.coalesce_key for r in requests)
        expected = sum(math.ceil(n / max_batch) for n in per_key.values())
        assert len(batches) == expected
        assert all(b.size <= max_batch for b in batches)
        assert sum(b.size for b in batches) == len(requests)

    def test_every_batch_is_single_key(self):
        requests = _zipf_requests()
        backend = default_registry().get("integer")
        for batch in coalesce(requests, backend, max_batch=16):
            keys = {r.coalesce_key for r in batch.requests}
            assert keys == {(batch.modulus, batch.l)}


class TestShardKeyStability:
    def test_requests_in_a_batch_share_one_shard_key(self):
        requests = _zipf_requests()
        backend = default_registry().get("integer")
        for batch in coalesce(requests, backend, max_batch=16):
            assert len({r.shard_key for r in batch.requests}) == 1

    def test_same_modulus_lands_on_same_shard_across_rounds(self):
        shard_map = ShardMap(4)
        placements = {}
        # Three independently seeded traces over the same keyring: the
        # moduli repeat, and each must keep its home shard.
        for round_seed in ("zipf-a", "zipf-b", "zipf-c"):
            for request in _zipf_requests(seed="zipf-stable"):
                owner = shard_map.owner(request.shard_key)
                home = placements.setdefault(request.modulus, owner)
                assert owner == home

    def test_chunked_batches_of_one_modulus_share_one_home(self):
        requests = _zipf_requests()
        backend = default_registry().get("integer")
        shard_map = ShardMap(4)
        homes = {}
        for batch in coalesce(requests, backend, max_batch=8):
            owner = shard_map.owner(batch.requests[0].shard_key)
            assert homes.setdefault((batch.modulus, batch.l), owner) == owner


class TestNoLossUnderBackpressure:
    def test_scheduler_bound_rejects_but_never_drops(self):
        requests = _zipf_requests()
        scheduler = BatchScheduler(
            default_registry().get("integer"), max_pending=32, max_batch=16
        )
        accepted, rejected = 0, 0
        drained = []
        for request in requests:
            try:
                scheduler.submit(request)
                accepted += 1
            except Exception:
                rejected += 1
                batches = scheduler.take_batches()
                drained.extend(r for b in batches for r in b.requests)
                scheduler.submit(request)
                accepted += 1
        drained.extend(
            r for b in scheduler.take_batches() for r in b.requests
        )
        # Every accepted request comes back out exactly once.
        assert accepted == len(requests)
        assert sorted(r.request_id for r in drained) == sorted(
            r.request_id for r in requests
        )

    def test_sharded_service_wait_mode_answers_every_request(self):
        requests = _zipf_requests(seed="zipf-service")
        with ModExpService(
            backend="integer",
            workers=2,
            worker_kind="shard",
            queue_limit=16,  # far below the 200-request trace
            max_batch=16,
        ) as service:
            results = service.process(requests, on_full="wait")
        assert len(results) == len(requests)
        returned = Counter(r.request_id for r in results)
        assert all(count == 1 for count in returned.values())
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value == pow(
                request.base, request.exponent, request.modulus
            )

    def test_sharded_service_reject_mode_accounts_for_every_request(self):
        requests = _zipf_requests(seed="zipf-reject")
        with ModExpService(
            backend="integer",
            workers=2,
            worker_kind="shard",
            queue_limit=16,
            max_batch=16,
        ) as service:
            results = service.process(requests, on_full="reject")
        assert len(results) == len(requests)
        completed = [r for r in results if r.ok]
        rejected = [r for r in results if not r.ok]
        # A rejection is an explicit answer, not a drop — and every
        # completion is correct.
        assert len(completed) + len(rejected) == len(requests)
        by_id = {r.request_id: r for r in results}
        for request in requests:
            result = by_id[request.request_id]
            if result.ok:
                assert result.value == pow(
                    request.base, request.exponent, request.modulus
                )
