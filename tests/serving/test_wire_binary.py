"""Binary batch frames: big-int edges, round trips, malformed-frame rejection.

The wire format's job is to move RSA-sized operands without the two
classic big-int hazards: silent precision loss at the JavaScript float
boundary (2⁵³ — the JSON-lines format stringifies past it) and
unbounded allocation from a corrupt or hostile length prefix.  These
tests pin both, straddling ``2⁵³`` exactly and exercising RSA-2048-size
operands through the JSON *and* binary formats.
"""

from __future__ import annotations

import io
import json
import random
import struct

import pytest

from repro.errors import WireFormatError
from repro.serving.request import ModExpRequest
from repro.serving.wire import (
    MAX_FRAME,
    batch_frame_cheap_mode,
    decode_batch_frame,
    decode_nack_frame,
    decode_result_frame,
    encode_batch_frame,
    encode_nack_frame,
    encode_result_frame,
    iter_frames,
    parse_request_line,
    read_frame,
    request_to_json,
    result_to_json,
    write_frame,
)

_JSON_SAFE_INT = 1 << 53

# Values straddling the JavaScript float boundary: every one must
# survive any wire format bit-exactly.
EDGE_VALUES = (_JSON_SAFE_INT - 1, _JSON_SAFE_INT, _JSON_SAFE_INT + 1)


def _rsa2048_modulus() -> int:
    n = random.Random("wire-rsa2048").getrandbits(2048) | (1 << 2047)
    return n | 1  # odd, full 2048 bits


def _reseal(body: bytes) -> bytes:
    """Stamp a fresh crc32 trailer onto a hand-patched frame body."""
    import zlib

    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


class TestBigIntEdges:
    @pytest.mark.parametrize("edge", EDGE_VALUES)
    def test_binary_round_trip_straddles_json_safe_boundary(self, edge):
        modulus = (1 << 54) + 5  # odd, above every edge value
        requests = [
            ModExpRequest(edge, edge, modulus, request_id=f"edge-{edge}")
        ]
        payload = encode_batch_frame(17, requests)
        batch_id, attempt, want_telemetry, out = decode_batch_frame(payload)
        assert (batch_id, attempt, want_telemetry) == (17, 0, True)
        assert out[0].base == edge
        assert out[0].exponent == edge
        assert out[0].modulus == modulus

    @pytest.mark.parametrize("edge", EDGE_VALUES)
    def test_json_round_trip_straddles_json_safe_boundary(self, edge):
        modulus = (1 << 54) + 5
        original = ModExpRequest(edge, edge, modulus, request_id="edge")
        parsed = parse_request_line(request_to_json(original))
        assert parsed == original

    @pytest.mark.parametrize("edge", EDGE_VALUES)
    def test_json_result_value_representation(self, edge):
        # At or past 2^53 the value travels as a string so JavaScript
        # consumers cannot silently round it; below, as a number.
        from repro.serving.request import ModExpResult

        line = result_to_json(
            ModExpResult(request_id="r", ok=True, value=edge)
        )
        value = json.loads(line)["value"]
        if edge >= _JSON_SAFE_INT:
            assert isinstance(value, str) and int(value) == edge
        else:
            assert isinstance(value, int) and value == edge

    def test_rsa2048_round_trip_binary_and_json(self):
        n = _rsa2048_modulus()
        rng = random.Random("wire-rsa2048-ops")
        requests = [
            ModExpRequest(
                rng.randrange(2, n), 65537, n, request_id=f"rsa-{i}"
            )
            for i in range(3)
        ]
        # Binary: operands as raw bytes, modulus encoded once per frame.
        payload = encode_batch_frame(1, requests)
        _, _, _, out = decode_batch_frame(payload)
        assert [(r.base, r.exponent, r.modulus) for r in out] == [
            (r.base, r.exponent, r.modulus) for r in requests
        ]
        # The frame stores the 256-byte modulus once, not per request.
        assert payload.count(n.to_bytes(256, "big")) == 1
        # JSON: the same operands survive the string detour.
        for request in requests:
            assert parse_request_line(request_to_json(request)) == request

    def test_result_frame_round_trip_with_rsa2048_values(self):
        n = _rsa2048_modulus()
        rows = [
            {"id": "a", "value": n - 3, "cycles": 6150, "wall_us": 12.5},
            {"id": "b", "value": 0, "wall_us": 1.0},
            {
                "id": "c",
                "error_type": "FaultDetected",
                "check": "expected",
                "error": "corrupted",
            },
        ]
        telemetry = {"counters": [{"name": "x", "labels": {}, "value": 1}]}
        payload = encode_result_frame(
            9, rows, batch_wall_us=77.0, telemetry=telemetry
        )
        batch_id, wall_us, out, tele = decode_result_frame(payload)
        assert (batch_id, wall_us) == (9, 77.0)
        assert out[0]["value"] == n - 3 and out[0]["cycles"] == 6150
        assert out[1]["value"] == 0 and "cycles" not in out[1]
        assert out[2]["error_type"] == "FaultDetected"
        assert tele == telemetry

    def test_factors_travel_when_present(self):
        requests = [
            ModExpRequest(2, 7, 15, request_id="crt", factors=(3, 5))
        ]
        _, _, _, out = decode_batch_frame(encode_batch_frame(3, requests))
        assert out[0].factors == (3, 5)

    def test_telemetry_flag_round_trip(self):
        requests = [ModExpRequest(2, 3, 97, request_id="t")]
        for flag in (True, False):
            payload = encode_batch_frame(5, requests, want_telemetry=flag)
            _, _, want_telemetry, _ = decode_batch_frame(payload)
            assert want_telemetry is flag


class TestDeadlinePriorityWire:
    """Deadlines, priority classes and the degradation control frames."""

    def test_deadline_and_priority_ride_the_binary_frame(self):
        requests = [
            ModExpRequest(
                2, 3, 97, request_id="i",
                priority="interactive", expires_at=1234.5,
            ),
            ModExpRequest(4, 5, 97, request_id="b"),
        ]
        _, _, _, out = decode_batch_frame(encode_batch_frame(8, requests))
        assert out[0].priority == "interactive"
        assert out[0].expires_at == 1234.5  # f64 is bit-exact
        assert out[1].priority == "batch"
        assert out[1].expires_at is None

    def test_nack_frame_round_trip(self):
        payload = encode_nack_frame(42, "unknown batch flags 0xf0")
        assert decode_nack_frame(payload) == (42, "unknown batch flags 0xf0")
        # batch_id 0 is the "header unreadable" sentinel.
        assert decode_nack_frame(encode_nack_frame(0, "garbage"))[0] == 0

    def test_nack_decoder_rejects_other_kinds(self):
        batch = encode_batch_frame(
            1, [ModExpRequest(4, 13, 497, request_id="x")]
        )
        with pytest.raises(WireFormatError, match="nack frame"):
            decode_nack_frame(batch)

    def test_cheap_mode_flag_peekable_without_full_decode(self):
        requests = [ModExpRequest(2, 3, 97, request_id="c")]
        cheap = encode_batch_frame(6, requests, cheap_mode=True)
        plain = encode_batch_frame(6, requests)
        assert batch_frame_cheap_mode(cheap) is True
        assert batch_frame_cheap_mode(plain) is False
        # The flag is a legal bflag: the full decoder still accepts it.
        _, _, want_telemetry, out = decode_batch_frame(cheap)
        assert want_telemetry and out[0].request_id == "c"

    def test_budget_and_priority_round_trip_through_json(self):
        original = ModExpRequest(
            2, 3, 97, request_id="j", priority="interactive", budget_s=0.25
        )
        parsed = parse_request_line(request_to_json(original))
        assert parsed == original
        assert json.loads(request_to_json(original))["budget_ms"] == 250.0

    def test_non_positive_budget_ms_rejected(self):
        line = json.dumps(
            {"id": "z", "base": 2, "exponent": 3, "modulus": 97, "budget_ms": 0}
        )
        with pytest.raises(WireFormatError, match="budget_ms"):
            parse_request_line(line)

    def test_unknown_priority_class_rejected(self):
        line = json.dumps(
            {"base": 2, "exponent": 3, "modulus": 97, "priority": "urgent"}
        )
        with pytest.raises(WireFormatError):
            parse_request_line(line)


class TestFraming:
    def test_stream_round_trip(self):
        requests = [ModExpRequest(4, 13, 497, request_id="s")]
        payload = encode_batch_frame(2, requests)
        buf = io.BytesIO()
        write_frame(buf, payload)
        write_frame(buf, payload)
        buf.seek(0)
        assert read_frame(buf) == payload
        assert read_frame(buf) == payload
        assert read_frame(buf) is None  # clean EOF

    def test_iter_frames(self):
        buf = io.BytesIO()
        for blob in (b"\x01abc", b"\x02defg"):
            write_frame(buf, blob)
        buf.seek(0)
        assert list(iter_frames(buf)) == [b"\x01abc", b"\x02defg"]

    def test_truncated_length_prefix_rejected(self):
        buf = io.BytesIO(b"\x00\x00\x01")  # 3 of 4 prefix bytes
        with pytest.raises(WireFormatError, match="length prefix"):
            read_frame(buf)

    def test_oversized_declared_length_rejected(self):
        # A hostile prefix declaring more than MAX_FRAME must be refused
        # before any allocation, not after.
        buf = io.BytesIO(struct.pack(">I", MAX_FRAME + 1))
        with pytest.raises(WireFormatError, match="exceeds"):
            read_frame(buf)

    def test_payload_shorter_than_declared_rejected(self):
        buf = io.BytesIO(struct.pack(">I", 100) + b"short")
        with pytest.raises(WireFormatError, match="truncated"):
            read_frame(buf)

    def test_truncated_batch_payload_rejected(self):
        payload = encode_batch_frame(
            1, [ModExpRequest(4, 13, 497, request_id="x")]
        )
        for cut in (1, 5, len(payload) // 2, len(payload) - 1):
            with pytest.raises(WireFormatError):
                decode_batch_frame(payload[:cut])

    def test_trailing_garbage_rejected(self):
        payload = encode_batch_frame(
            1, [ModExpRequest(4, 13, 497, request_id="x")]
        )
        # Appended bytes break the checksum before structural parsing...
        with pytest.raises(WireFormatError, match="checksum"):
            decode_batch_frame(payload + b"\x00")
        # ...and even a correctly re-sealed payload with junk between the
        # last request and the trailer is rejected structurally.
        with pytest.raises(WireFormatError, match="trailing"):
            decode_batch_frame(_reseal(payload[:-4] + b"\x00"))

    def test_wrong_frame_kind_rejected(self):
        batch = encode_batch_frame(
            1, [ModExpRequest(4, 13, 497, request_id="x")]
        )
        result = encode_result_frame(1, [{"id": "x", "value": 1}])
        with pytest.raises(WireFormatError, match="batch frame"):
            decode_batch_frame(result)
        with pytest.raises(WireFormatError, match="result frame"):
            decode_result_frame(batch)

    def test_invalid_request_in_frame_rejected(self):
        # An even modulus is structurally well-formed on the wire but
        # violates the Montgomery requirement; the decoder surfaces it
        # as a wire error, not a raw ParameterError from deep inside.
        good = encode_batch_frame(
            1, [ModExpRequest(4, 13, 497, request_id="x")]
        )
        # Patch the modulus bytes (497 = 0x01F1) to an even value and
        # re-seal so the semantic check is reached, not the checksum.
        bad = good.replace((497).to_bytes(2, "big"), (498).to_bytes(2, "big"), 1)
        with pytest.raises(WireFormatError, match="invalid request"):
            decode_batch_frame(_reseal(bad[:-4]))

    def test_mixed_modulus_batch_refused_at_encode(self):
        requests = [
            ModExpRequest(4, 13, 497, request_id="a"),
            ModExpRequest(4, 13, 499, request_id="b"),
        ]
        with pytest.raises(WireFormatError, match="share one"):
            encode_batch_frame(1, requests)

    def test_empty_batch_refused(self):
        with pytest.raises(WireFormatError, match="at least one"):
            encode_batch_frame(1, [])
