"""Sharded data plane: ring placement, warm workers, death and requeue.

The tentpole invariants under test:

* **Placement** — the consistent-hash ring maps each ``(modulus, l)``
  stably to one home shard; a dead shard's keys reassign to the next
  alive ring position and *return home* on revival.
* **Correctness** — every value that crosses the binary pipe equals
  ``pow(base, exponent, modulus)``.
* **Homing** — repeated traffic for a modulus hits its home shard's
  warm Montgomery-constant cache (misses stay at one per modulus).
* **Exactly-once** — a shard killed mid-batch is respawned, the batch
  requeued once, and every request answered exactly once with the
  correct value.
"""

from __future__ import annotations

import random
import signal
import time

import pytest

from repro.errors import ParameterError, QueueFull, ShardFailure
from repro.observability import MetricsRegistry, observe
from repro.robustness import ChaosConfig, RetryPolicy, VerifyPolicy
from repro.serving import ModExpRequest, ModExpService
from repro.serving.shard import DEFAULT_VNODES, ShardMap, ShardPool, placement_key
from repro.utils.rng import random_odd_modulus


def _requests(count, moduli, seed="shard-test"):
    rng = random.Random(seed)
    return [
        ModExpRequest(
            rng.randrange(1, moduli[i % len(moduli)]),
            rng.randrange(1, moduli[i % len(moduli)]),
            moduli[i % len(moduli)],
            request_id=f"{seed}-{i}",
        )
        for i in range(count)
    ]


class TestShardMap:
    def test_placement_key_is_stable_64_bit(self):
        key = placement_key(497, 16)
        assert key == placement_key(497, 16)
        assert 0 <= key < 1 << 64
        assert key != placement_key(497, 32)  # l is part of the identity
        assert key != placement_key(499, 16)

    def test_home_is_deterministic_and_ignores_liveness(self):
        m = ShardMap(4)
        keys = [placement_key(n) for n in range(3, 200, 2)]
        homes = [m.home(k) for k in keys]
        m.mark_dead(homes[0])
        assert m.home(keys[0]) == homes[0]  # home never moves

    def test_owner_reassigns_and_returns_home(self):
        m = ShardMap(4)
        key = placement_key(10007, 16)
        home = m.owner(key)
        m.mark_dead(home)
        stand_in = m.owner(key)
        assert stand_in != home and m.alive[stand_in]
        m.mark_alive(home)
        assert m.owner(key) == home  # revival returns the key home

    def test_all_dead_raises_shard_failure(self):
        m = ShardMap(2)
        m.mark_dead(0)
        m.mark_dead(1)
        with pytest.raises(ShardFailure):
            m.owner(placement_key(7))

    def test_vnodes_spread_keys_over_all_shards(self):
        m = ShardMap(4, vnodes=DEFAULT_VNODES)
        rng = random.Random("spread")
        counts = [0, 0, 0, 0]
        for _ in range(2000):
            counts[m.owner(rng.getrandbits(64))] += 1
        # Consistent hashing is lumpy but every shard must own a
        # non-trivial share of a large random key population.
        assert min(counts) > 2000 // 16


class TestShardPool:
    def test_values_are_correct_modular_exponentiations(self):
        rng = random.Random("pool-e2e")
        moduli = [random_odd_modulus(64, rng) for _ in range(4)]
        requests = _requests(32, moduli)
        with ShardPool(shards=2, backend="integer", queue_limit=256) as pool:
            futures = []
            by_key = {}
            for request in requests:
                by_key.setdefault(request.coalesce_key, []).append(request)
            for group in by_key.values():
                futures.extend(pool.submit_batch(group))
            payloads = [f.result(timeout=60) for f in futures]
        flat = [r for group in by_key.values() for r in group]
        for request, (value, _cycles, wall_us, worker, _tele) in zip(
            flat, payloads
        ):
            assert value == pow(request.base, request.exponent, request.modulus)
            assert worker.startswith("shard")
            assert wall_us >= 0

    def test_mixed_modulus_batch_rejected(self):
        with ShardPool(shards=1, backend="integer") as pool:
            with pytest.raises(ParameterError, match="share one"):
                pool.submit_batch(
                    [
                        ModExpRequest(2, 3, 97, request_id="a"),
                        ModExpRequest(2, 3, 101, request_id="b"),
                    ]
                )

    def test_backpressure_rejects_past_window_but_admits_elastic(self):
        m = random_odd_modulus(64, random.Random("bp"))
        requests = _requests(8, [m])
        with ShardPool(shards=1, backend="integer", queue_limit=4) as pool:
            # Empty window: a batch larger than the whole window is
            # admitted (elastic) so wait-mode submitters cannot deadlock.
            futures = pool.submit_batch(requests)
            with pytest.raises(QueueFull):
                pool.submit_batch(requests[:1])
            [f.result(timeout=60) for f in futures]

    def test_wait_for_capacity_is_slot_aware(self):
        # Regression: a 25-in/32-limit window used to satisfy a
        # single-slot wait predicate instantly, sending the dispatcher
        # into a hot reserve/QueueFull spin for the whole batch tail.
        from concurrent.futures import Future

        from repro.serving.pool import SlotWindow

        window = SlotWindow(8)
        window.reserve(6)
        assert window.wait(timeout=0, slots=1)  # 6 + 1 <= 8
        assert not window.wait(timeout=0.01, slots=6)  # 6 + 6 > 8: block
        futures = [Future() for _ in range(6)]
        for future in futures:
            window.release(future)
        assert window.wait(timeout=0, slots=6)
        # Empty window admits oversized batches (elastic), so the wait
        # predicate must too.
        window.reserve(20, elastic=True)
        done = Future()
        window.release(done)
        window.cancel_reservation(19)
        assert window.wait(timeout=0, slots=20)

    def test_homing_keeps_montgomery_cache_warm(self):
        rng = random.Random("homing")
        moduli = [random_odd_modulus(64, rng) for _ in range(4)]
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ShardPool(shards=2, backend="integer", queue_limit=256) as pool:
                for _round in range(3):
                    futures = []
                    for m in moduli:
                        futures.extend(
                            pool.submit_batch(_requests(4, [m], seed=f"h{m % 97}"))
                        )
                    [f.result(timeout=60) for f in futures]
        # One constant derivation per modulus on its home shard, ever;
        # rounds two and three are pure cache hits.
        misses = registry.counter("montgomery.precompute").total()
        hits = registry.counter("montgomery.precompute_cache_hits").total()
        assert misses == len(moduli)
        assert hits >= len(moduli)  # at least one warm round per modulus

    def test_lane_backend_compiles_kernel_once_per_home_shard(self):
        # The warm-worker claim for the compiled-simulation backends:
        # the kernel LRU lives in the shard process, so repeated traffic
        # for a modulus width compiles its (netlist, lanes) kernel at
        # most once per shard — and only on the modulus's home shard.
        from repro.hdl.compiled import clear_kernel_cache

        # Earlier tests may have compiled this kernel in *this* process;
        # forked shard workers would inherit the warm LRU and hide the
        # per-shard compile we are counting.  Fork from a cold cache.
        clear_kernel_cache()
        rng = random.Random("kernels")
        m = random_odd_modulus(8, rng)
        requests = [
            ModExpRequest(rng.randrange(1, m), 5, m, request_id=f"g{i}")
            for i in range(8)
        ]
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ShardPool(shards=2, backend="rtl", queue_limit=64) as pool:
                for _round in range(2):
                    futures = pool.submit_batch(requests)
                    payloads = [f.result(timeout=120) for f in futures]
        for request, payload in zip(requests, payloads):
            assert payload[0] == pow(
                request.base, request.exponent, request.modulus
            )
        misses = registry.counter("hdl.compile_cache_misses")
        assert misses.total() == 1  # one compile, ever, across both rounds
        home = ShardMap(2).owner(placement_key(m, requests[0].l))
        assert misses.total(shard=str(home)) == 1
        # The whole same-exponent batch crossed the pipe as one frame
        # and ran as one packed lane group on the home shard.
        groups = registry.counter("serving.lane_groups")
        assert groups.total(packed="yes", shard=str(home)) == 2

    def test_killed_shard_respawns_and_answers_exactly_once(self):
        import os

        rng = random.Random("kill")
        m = random_odd_modulus(64, rng)
        requests = _requests(12, [m])
        with ShardPool(shards=2, backend="integer", queue_limit=256) as pool:
            # Identify the home shard and kill it mid-flight.
            warm = pool.submit_batch(requests[:1])
            [f.result(timeout=60) for f in warm]
            home = placement_key(m, requests[0].l)
            victim = pool.map.owner(home)
            futures = pool.submit_batch(requests)
            os.kill(pool.shard_pids[victim], signal.SIGKILL)
            payloads = [f.result(timeout=60) for f in futures]
            assert pool.restarts >= 1
        assert len(payloads) == len(requests)
        for request, payload in zip(requests, payloads):
            assert payload[0] == pow(
                request.base, request.exponent, request.modulus
            )


class TestServiceIntegration:
    def test_shard_service_end_to_end(self):
        rng = random.Random("svc")
        moduli = [random_odd_modulus(64, rng) for _ in range(3)]
        requests = _requests(24, moduli)
        with ModExpService(
            backend="integer", workers=2, worker_kind="shard"
        ) as service:
            results = service.process(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value == pow(
                request.base, request.exponent, request.modulus
            )

    def test_shard_rejects_unregistered_backend(self):
        from repro.serving.backends import default_registry

        backend = default_registry().get("integer")

        class Custom(type(backend)):
            name = "custom-not-registered"

        with pytest.raises(ParameterError, match="shard workers resolve"):
            ModExpService(backend=Custom(), worker_kind="shard")

    def test_chaos_kill_respawn_requeue_no_silent_corruption(self):
        rng = random.Random("svc-chaos")
        moduli = [random_odd_modulus(64, rng) for _ in range(3)]
        requests = _requests(30, moduli)
        chaos = ChaosConfig(
            seed=20260808,
            worker_kill_rate=0.05,
            bitflip_rate=0.1,
            exception_rate=0.05,
        )
        with ModExpService(
            backend="integer",
            workers=2,
            worker_kind="shard",
            chaos=chaos,
            verify=VerifyPolicy(mode="full"),
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
        ) as service:
            results = service.process(requests)
        assert len(results) == len(requests)
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value == pow(
                request.base, request.exponent, request.modulus
            )

    def test_top_dashboard_surfaces_shard_gauges(self):
        from repro.cli import _render_top_frame, _top_summary
        from repro.observability.metrics import parse_prometheus_text

        rng = random.Random("top")
        moduli = [random_odd_modulus(64, rng) for _ in range(2)]
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                backend="integer", workers=2, worker_kind="shard"
            ) as service:
                service.process(_requests(16, moduli))
        text = registry.to_prometheus()
        summary = _top_summary(parse_prometheus_text(text))
        assert summary["shards"]
        for row in summary["shards"].values():
            assert 0.0 <= row["busy_fraction"] <= 1.0
        frame = _render_top_frame("test", text)
        assert any(line.startswith("shards") for line in frame.splitlines())

    def test_per_shard_gauges_exported(self):
        rng = random.Random("gauges")
        moduli = [random_odd_modulus(64, rng) for _ in range(2)]
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                backend="integer", workers=2, worker_kind="shard"
            ) as service:
                service.process(_requests(16, moduli))
        shard_labels = {
            row["labels"].get("shard")
            for row in registry.gauge("serving.shard_busy_fraction").snapshot()
        }
        assert shard_labels  # at least the shards that saw traffic
        for name in (
            "serving.shard_queue_depth",
            "serving.shard_cache_hit_rate",
        ):
            assert name in registry
