"""Cross-backend equivalence: every engine computes the same modexp.

One seeded vector set per width class drives every registered backend —
small operands for the cycle-stepped simulators, larger ones for the
big-int paths — and each result is checked against CPython's ``pow``.
This is the contract that lets the scheduler treat backends as
interchangeable.
"""

from __future__ import annotations

import random

import pytest

from repro.montgomery.params import precompute_montgomery_constants
from repro.rsa.primes import generate_prime
from repro.serving.backends import default_registry
from repro.serving.request import ModExpRequest
from repro.utils.rng import random_odd_modulus

REGISTRY = default_registry()

#: vectors per backend; simulators get few (they step every cycle).
VECTORS = {
    "integer": 6,
    "crt-rsa": 4,
    "highradix": 6,
    "scalable": 4,
    "rtl": 3,
    "gate": 2,
    "chip": 2,
}

#: modulus bit length per backend (simulators stay tiny).
BITS = {
    "integer": 96,
    "crt-rsa": 48,
    "highradix": 80,
    "scalable": 56,
    "rtl": 12,
    "gate": 7,
    "chip": 10,
}


def _vectors(name: str) -> list:
    rng = random.Random(f"equivalence:{name}")  # str seeds are stable
    out = []
    for _ in range(VECTORS[name]):
        if name == "crt-rsa":
            p = generate_prime(BITS[name] // 2, rng)
            q = generate_prime(BITS[name] // 2, rng)
            while q == p:
                q = generate_prime(BITS[name] // 2, rng)
            n = p * q
            out.append(
                ModExpRequest(
                    rng.randrange(n), rng.randrange(1, n), n, factors=(p, q)
                )
            )
        else:
            n = random_odd_modulus(BITS[name], rng)
            out.append(ModExpRequest(rng.randrange(n), rng.randrange(1, n), n))
    return out


@pytest.mark.parametrize("name", REGISTRY.names())
def test_backend_matches_builtin_pow(name):
    backend = REGISTRY.get(name)
    for request in _vectors(name):
        assert backend.reject_reason(request) is None
        ctx = precompute_montgomery_constants(request.modulus, request.l)
        result = backend.execute(ctx, request)
        assert result.value % request.modulus == request.expected(), (
            f"{name} disagrees with pow() on {request}"
        )


@pytest.mark.parametrize("name", REGISTRY.names())
def test_backend_reports_cycles(name):
    backend = REGISTRY.get(name)
    request = _vectors(name)[0]
    ctx = precompute_montgomery_constants(request.modulus, request.l)
    result = backend.execute(ctx, request)
    assert result.cycles is not None and result.cycles > 0
    assert backend.estimate_cost(request) > 0


def test_same_vector_across_all_software_backends():
    """One shared vector through every width-unlimited backend."""
    rng = random.Random(2003)
    n = random_odd_modulus(64, rng)
    request = ModExpRequest(rng.randrange(n), rng.randrange(1, n), n)
    ctx = precompute_montgomery_constants(n)
    values = {
        name: REGISTRY.get(name).execute(ctx, request).value % n
        for name in ("integer", "highradix", "scalable")
    }
    assert set(values.values()) == {request.expected()}
