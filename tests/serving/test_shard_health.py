"""Malformed shard-wire frames degrade — never kill — and requeue exactly once.

The graded-failure invariants under test:

* **The health machine** walks healthy → degraded → draining on strikes
  (slow batches, corrupt frames, stuck workers) and recovers on clean
  batches; only pipe EOF is death.
* **The wire** rejects a damaged payload with a precise
  :class:`WireFormatError` — the crc32 trailer catches blind damage, and
  structural checks catch re-sealed truncations, garbage flags and
  oversized bigint declarations — without ever desyncing the stream.
* **The parent** treats one corrupt frame (either direction) as shard
  degradation: the worker process survives, the batch is requeued
  exactly once, and a second loss fails over to the retry ladder.
"""

from __future__ import annotations

import random
import struct
import time
import zlib
from concurrent.futures import Future

import pytest

from repro.errors import ShardFailure, WireFormatError
from repro.observability import MetricsRegistry, observe
from repro.robustness import ChaosConfig, RetryPolicy, VerifyPolicy
from repro.serving import ModExpRequest, ModExpService
from repro.serving.health import HealthConfig, ShardHealth
from repro.serving.shard import ShardPool, _PendingBatch
from repro.serving.wire import decode_batch_frame, encode_batch_frame
from repro.utils.rng import random_odd_modulus


def _requests(count, modulus, prefix="fr"):
    rng = random.Random(prefix)
    return [
        ModExpRequest(
            rng.randrange(1, modulus),
            rng.randrange(1, modulus),
            modulus,
            request_id=f"{prefix}{i}",
        )
        for i in range(count)
    ]


def _reseal(body: bytes) -> bytes:
    """Re-append a valid crc32 trailer so structural checks are reached."""
    return body + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)


class TestShardHealthMachine:
    def test_latency_strikes_degrade_and_clean_batches_recover(self):
        h = ShardHealth(0, HealthConfig(degrade_strikes=1, drain_strikes=3))
        assert h.on_batch_done(100.0) == "healthy"  # seeds the EWMA
        assert h.on_batch_done(10_000.0) == "degraded"  # 100× the mean
        for _ in range(3):  # recover_batches clean results
            state = h.on_batch_done(100.0)
        assert state == "healthy"
        assert h.strikes == 0

    def test_corrupt_frames_weigh_a_full_degrade_step(self):
        h = ShardHealth(1)  # defaults: degrade at 2 strikes, drain at 4
        assert h.on_corrupt_frame() == "degraded"  # one frame = one full step
        assert h.on_corrupt_frame() == "degraded"
        assert h.on_corrupt_frame() == "draining"  # persistent corruption

    def test_stuck_worker_goes_straight_to_draining(self):
        h = ShardHealth(2)
        assert h.on_stuck() == "draining"

    def test_death_and_respawn_reset_the_machine(self):
        h = ShardHealth(3)
        h.on_corrupt_frame()
        assert h.on_death() == "dead"
        assert h.on_respawn() == "healthy"
        assert h.strikes == 0
        assert h.ewma_us is None  # a fresh worker gets a fresh latency prior

    def test_health_gauge_exported_per_shard(self):
        registry = MetricsRegistry()
        with observe(metrics=registry):
            h = ShardHealth(5)
            h.on_corrupt_frame()
        rows = {
            row["labels"]["shard"]: row["value"]
            for row in registry.gauge("serving.shard_health").snapshot()
        }
        assert rows["5"] == 1  # degraded
        transitions = registry.counter("serving.shard_health_transitions")
        assert transitions.total(shard="5", to="degraded") == 1


class TestMalformedFrames:
    """The three mid-stream damage shapes named by the robustness drill."""

    def _frame(self):
        m = random_odd_modulus(48, random.Random("wire"))
        return encode_batch_frame(7, _requests(2, m, prefix="wf"))

    def test_blind_damage_is_caught_by_the_checksum(self):
        frame = bytearray(self._frame())
        frame[len(frame) // 2] ^= 0xFF
        with pytest.raises(WireFormatError, match="checksum mismatch"):
            decode_batch_frame(bytes(frame))

    def test_truncation_after_a_length_prefix(self):
        # Cut the body right after the modulus's u32 length prefix (offset
        # 11 past kind+batch_id+attempt+bflags), then re-seal: the reader
        # must fail on the missing payload, not wander off the end.
        body = self._frame()[:-4]
        with pytest.raises(WireFormatError, match="truncated frame"):
            decode_batch_frame(_reseal(body[:15]))

    def test_garbage_batch_flags(self):
        body = bytearray(self._frame()[:-4])
        body[10] = 0xF0  # bits no encoder ever sets
        with pytest.raises(WireFormatError, match="unknown batch flags"):
            decode_batch_frame(_reseal(bytes(body)))

    def test_oversized_bigint_declaration(self):
        body = bytearray(self._frame()[:-4])
        body[11:15] = struct.pack(">I", 0xFFFFFFFF)  # modulus "length"
        with pytest.raises(WireFormatError, match="exceeds frame bound"):
            decode_batch_frame(_reseal(bytes(body)))


class TestParentSideRecovery:
    def test_corrupt_result_frame_degrades_and_requeues_exactly_once(self):
        m = random_odd_modulus(64, random.Random("requeue"))
        requests = _requests(4, m, prefix="rq")
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ShardPool(shards=1, backend="integer", queue_limit=64) as pool:
                warm = pool.submit_batch(_requests(1, m, prefix="warm"))
                [f.result(timeout=60) for f in warm]
                pid = pool.shard_pids[0]
                # Simulate a result frame the parent could not decode for
                # an in-flight batch: register it pending, then report the
                # corruption the reader would have seen.
                shard = pool._shards[0]
                futures = [Future() for _ in requests]
                pool._window.reserve(len(requests), elastic=True)
                pending = _PendingBatch(999, requests, futures, 0)
                with shard.lock:
                    shard.pending[999] = pending
                pool._frame_corruption(shard, 999, "checksum mismatch (test)")
                # The requeue goes back to the same live worker, which
                # answers it normally — every request exactly once.
                payloads = [f.result(timeout=60) for f in futures]
                assert pool.restarts == 0
                assert pool.shard_pids[0] == pid  # degrade, not kill
                assert pool.health_states()[0] == "degraded"
        assert pending.attempt == 1 and pending.requeued
        for request, payload in zip(requests, payloads):
            assert payload[0] == pow(
                request.base, request.exponent, request.modulus
            )
        assert registry.counter("serving.requeued").total() == len(requests)
        assert registry.counter("serving.corrupt_frames").total() == 1

    def test_second_corruption_fails_over_to_the_retry_ladder(self):
        m = random_odd_modulus(64, random.Random("twice"))
        requests = _requests(3, m, prefix="tw")
        with ShardPool(shards=1, backend="integer", queue_limit=64) as pool:
            shard = pool._shards[0]
            futures = [Future() for _ in requests]
            pool._window.reserve(len(requests), elastic=True)
            # attempt=1: this batch already spent its requeue budget.
            pending = _PendingBatch(1000, requests, futures, 1)
            with shard.lock:
                shard.pending[1000] = pending
            pool._frame_corruption(shard, 1000, "second hit")
            for future in futures:
                with pytest.raises(ShardFailure, match="lost twice"):
                    future.result(timeout=5)
            assert pool.restarts == 0  # still no kill

    def test_worker_nacks_garbage_batch_frame_and_keeps_serving(self):
        # A damaged batch frame mid-stream: the worker answers with a NACK
        # (message boundaries survive), the parent degrades the shard, and
        # the very same worker keeps serving real traffic.
        m = random_odd_modulus(64, random.Random("nack"))
        with ShardPool(shards=1, backend="integer", queue_limit=64) as pool:
            shard = pool._shards[0]
            body = bytearray(encode_batch_frame(555, _requests(1, m))[:-4])
            body[10] = 0xF0  # garbage bflags, crc re-sealed below
            with shard.send_lock:
                shard.conn.send_bytes(_reseal(bytes(body)))
            give_up = time.monotonic() + 10
            while pool.health_states()[0] != "degraded":
                assert time.monotonic() < give_up, "NACK never degraded the shard"
                time.sleep(0.01)
            requests = _requests(4, m, prefix="after")
            payloads = [f.result(timeout=60) for f in pool.submit_batch(requests)]
            assert pool.restarts == 0
        for request, payload in zip(requests, payloads):
            assert payload[0] == pow(
                request.base, request.exponent, request.modulus
            )


class TestServiceEndToEnd:
    def test_chaos_truncated_frames_recover_with_zero_corruption(self):
        # truncate_frame_rate=1.0 damages the result frame of every
        # attempt: the batch is requeued once (lost again), fails over to
        # the service's inline retry ladder, and every answer is still
        # verified correct — degradation all the way down, zero silent
        # corruption.
        m = random_odd_modulus(64, random.Random("svc-frames"))
        requests = _requests(4, m, prefix="sv")
        chaos = ChaosConfig(seed=11, truncate_frame_rate=1.0)
        registry = MetricsRegistry()
        with observe(metrics=registry):
            with ModExpService(
                backend="integer",
                workers=1,
                worker_kind="shard",
                chaos=chaos,
                retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
                verify=VerifyPolicy(mode="full"),
            ) as service:
                results = service.process(requests)
                health = service.pool.health_states()
        for request, result in zip(requests, results):
            assert result.ok, result.error
            assert result.value == pow(
                request.base, request.exponent, request.modulus
            )
        assert health[0] == "degraded"
        assert registry.counter("serving.corrupt_frames").total() == 2
        assert registry.counter("serving.requeued").total() == len(requests)
        assert "serving.silent_corruptions" not in registry
