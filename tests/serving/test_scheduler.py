"""Scheduler semantics: coalescing, precompute sharing, dispatch order."""

from __future__ import annotations

import pytest

from repro.errors import QueueFull
from repro.montgomery.params import montgomery_cache_clear
from repro.observability import MetricsRegistry, observe
from repro.serving.backends import IntegerBackend
from repro.serving.request import ModExpRequest
from repro.serving.scheduler import BatchScheduler, coalesce

N1 = (1 << 47) + 5  # odd 48-bit
N2 = (1 << 47) + 9
N3 = (1 << 31) + 11

BACKEND = IntegerBackend()


def _req(n: int, *, e: int = 65537, deadline=None, l: int = 0) -> ModExpRequest:
    return ModExpRequest(2, e, n, deadline=deadline, l=l)


class TestCoalescing:
    def test_groups_by_modulus(self):
        requests = [_req(N1), _req(N2), _req(N1), _req(N2), _req(N1)]
        batches = coalesce(requests, BACKEND)
        assert len(batches) == 2
        by_mod = {b.modulus: b.size for b in batches}
        assert by_mod == {N1: 3, N2: 2}

    def test_distinct_width_means_distinct_batch(self):
        # Same modulus, different circuit width -> different constants.
        requests = [_req(N3), _req(N3, l=40)]
        batches = coalesce(requests, BACKEND)
        assert len(batches) == 2
        assert {b.context.l for b in batches} == {N3.bit_length(), 40}

    def test_context_precomputed_once_per_distinct_modulus(self):
        montgomery_cache_clear()
        registry = MetricsRegistry()
        requests = [_req(N1) for _ in range(10)] + [_req(N2) for _ in range(10)]
        with observe(metrics=registry):
            batches = coalesce(requests, BACKEND)
        # 20 requests, 2 moduli: exactly 2 pre-computations, both counted.
        assert registry.counter("montgomery.precompute").total() == 2
        assert registry.counter("serving.coalesced_precomputes").total() == 2
        assert registry.counter("serving.batches").total() == len(batches) == 2
        assert registry.histogram("serving.batch_size").series().sum == 20

    def test_chunking_respects_max_batch_and_shares_context(self):
        montgomery_cache_clear()
        registry = MetricsRegistry()
        with observe(metrics=registry):
            batches = coalesce([_req(N1) for _ in range(10)], BACKEND, max_batch=4)
        # Cheapest chunk (the remainder of 2) dispatches first.
        assert [b.size for b in batches] == [2, 4, 4]
        # Chunks of one modulus still share a single pre-computation.
        assert registry.counter("montgomery.precompute").total() == 1
        assert registry.counter("serving.coalesced_precomputes").total() == 1
        assert len({id(b.context) for b in batches}) == 1

    def test_batch_indices_continue_from_start_index(self):
        batches = coalesce([_req(N1), _req(N2)], BACKEND, start_index=7)
        assert sorted(b.index for b in batches) == [7, 8]


class TestDispatchOrder:
    def test_earliest_deadline_first(self):
        late, early = _req(N1, deadline=50.0), _req(N2, deadline=1.0)
        batches = coalesce([late, early], BACKEND)
        assert [b.modulus for b in batches] == [N2, N1]

    def test_deadline_beats_cost(self):
        # N3 is far cheaper, but N1 carries the deadline.
        cheap = _req(N3)
        urgent = _req(N1, deadline=1.0)
        batches = coalesce([cheap, urgent], BACKEND)
        assert batches[0].modulus == N1

    def test_cost_breaks_ties_without_deadlines(self):
        heavy = _req(N1, e=(1 << 40) + 1)  # long exponent -> dearer batch
        light = _req(N2, e=3)
        batches = coalesce([heavy, light], BACKEND)
        assert [b.modulus for b in batches] == [N2, N1]
        assert batches[0].estimated_cost < batches[1].estimated_cost


class TestBoundedStaging:
    def test_submit_past_bound_raises_queue_full(self):
        scheduler = BatchScheduler(BACKEND, max_pending=3)
        for _ in range(3):
            scheduler.submit(_req(N1))
        with pytest.raises(QueueFull, match="retry"):
            scheduler.submit(_req(N1))
        assert scheduler.pending_count == 3

    def test_rejection_counted(self):
        registry = MetricsRegistry()
        scheduler = BatchScheduler(BACKEND, max_pending=1)
        with observe(metrics=registry):
            scheduler.submit(_req(N1))
            with pytest.raises(QueueFull):
                scheduler.submit(_req(N1))
        assert (
            registry.counter("serving.requests").value(
                status="rejected", backend="integer"
            )
            == 1
        )

    def test_take_batches_drains_and_reopens(self):
        scheduler = BatchScheduler(BACKEND, max_pending=2, max_batch=8)
        scheduler.submit(_req(N1))
        scheduler.submit(_req(N2))
        batches = scheduler.take_batches()
        assert len(batches) == 2 and scheduler.pending_count == 0
        scheduler.submit(_req(N1))  # accepted again after the drain
        more = scheduler.take_batches()
        # Batch indices keep increasing across drains.
        assert more[0].index == 2
        assert scheduler.take_batches() == []
