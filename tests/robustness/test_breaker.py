"""Circuit-breaker state machine with an injected clock."""

import pytest

from repro.errors import ParameterError
from repro.robustness.breaker import BreakerBoard, BreakerConfig, CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


def make(clock, **kw):
    defaults = dict(failure_threshold=3, cooldown_s=10.0, half_open_probes=2)
    defaults.update(kw)
    return CircuitBreaker("b", BreakerConfig(**defaults), clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        brk = make(clock)
        assert brk.state == "closed" and brk.allow()

    def test_opens_on_consecutive_failures(self, clock):
        brk = make(clock)
        for _ in range(3):
            brk.record_failure()
        assert brk.state == "open" and not brk.allow()

    def test_success_resets_the_failure_count(self, clock):
        brk = make(clock)
        for _ in range(10):
            brk.record_failure()
            brk.record_failure()
            brk.record_success()
        assert brk.state == "closed"

    def test_cooldown_moves_to_half_open(self, clock):
        brk = make(clock)
        for _ in range(3):
            brk.record_failure()
        clock.now = 9.9
        assert brk.state == "open"
        clock.now = 10.0
        assert brk.state == "half_open"

    def test_half_open_serializes_to_one_inflight_probe(self, clock):
        # Probes are strictly serialized: even with half_open_probes=2
        # (successes needed to close), only ONE probe may be in flight —
        # a second concurrent allow() is refused until the first settles.
        brk = make(clock, half_open_probes=2)
        for _ in range(3):
            brk.record_failure()
        clock.now = 11.0
        assert brk.allow()
        assert not brk.allow()  # concurrent probe rejected
        brk.record_success()  # probe settles → slot frees
        assert brk.state == "half_open"
        assert brk.allow()
        assert not brk.allow()  # still one at a time

    def test_probe_failure_frees_the_slot_too(self, clock):
        brk = make(clock, half_open_probes=2)
        for _ in range(3):
            brk.record_failure()
        clock.now = 11.0
        assert brk.allow()
        brk.record_failure()  # settles the probe and re-opens
        assert brk.state == "open"
        clock.now = 22.0  # fresh cooldown elapses
        assert brk.allow()  # slot was not leaked by the failed probe

    def test_probe_successes_close(self, clock):
        brk = make(clock, half_open_probes=2)
        for _ in range(3):
            brk.record_failure()
        clock.now = 11.0
        assert brk.allow()
        brk.record_success()
        assert brk.state == "half_open"
        assert brk.allow()
        brk.record_success()
        assert brk.state == "closed"

    def test_probe_failure_reopens(self, clock):
        brk = make(clock)
        for _ in range(3):
            brk.record_failure()
        clock.now = 11.0
        assert brk.allow()
        brk.record_failure()
        assert brk.state == "open"
        assert not brk.allow()  # fresh cooldown from the re-open

    def test_success_after_cooldown_counts_as_probe(self, clock):
        """Primary-path traffic is not gated by allow(); a success landing
        on an open breaker past its cooldown must still drive recovery."""
        brk = make(clock, half_open_probes=1)
        for _ in range(3):
            brk.record_failure()
        clock.now = 11.0
        brk.record_success()
        assert brk.state == "closed"

    def test_slo_violations_trip_separately(self, clock):
        brk = make(clock, slo_violation_threshold=2)
        brk.record_slo_violation()
        assert brk.state == "closed"
        brk.record_slo_violation()
        assert brk.state == "open"


class TestBoard:
    def test_lazily_creates_per_backend(self, clock):
        board = BreakerBoard(BreakerConfig(), clock=clock)
        assert board.allow("x") and board.allow("y")
        assert board.get("x") is board.get("x")
        assert set(board.states()) == {"x", "y"}

    def test_backends_are_independent(self, clock):
        board = BreakerBoard(BreakerConfig(failure_threshold=1), clock=clock)
        board.get("sick").record_failure()
        assert not board.allow("sick")
        assert board.allow("healthy")


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(failure_threshold=0),
            dict(slo_violation_threshold=0),
            dict(cooldown_s=-1.0),
            dict(half_open_probes=0),
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ParameterError):
            BreakerConfig(**kw)
