"""The seeded chaos plan: determinism, rates, and kill degradation."""

import pytest

from repro.errors import InjectedFault, ParameterError, WireFormatError
from repro.robustness.chaos import ChaosConfig, FaultDecision, FaultPlan
from repro.serving.request import ModExpRequest
from repro.serving.wire import decode_batch_frame, encode_batch_frame


class TestConfig:
    def test_inactive_by_default(self):
        assert not ChaosConfig().active

    def test_any_rate_activates(self):
        assert ChaosConfig(bitflip_rate=0.01).active
        assert ChaosConfig(target_prefix="storm").active

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ParameterError):
            ChaosConfig(bitflip_rate=1.5)
        with pytest.raises(ParameterError):
            ChaosConfig(worker_kill_rate=-0.1)

    def test_rate_sum_capped(self):
        with pytest.raises(ParameterError):
            ChaosConfig(worker_kill_rate=0.6, bitflip_rate=0.6)


class TestDecide:
    def test_deterministic_per_request_and_attempt(self):
        plan = FaultPlan(ChaosConfig(seed=4, bitflip_rate=0.5))
        a = [plan.decide(f"r{i}", 0) for i in range(50)]
        b = [plan.decide(f"r{i}", 0) for i in range(50)]
        assert a == b

    def test_attempts_draw_independently(self):
        plan = FaultPlan(ChaosConfig(seed=4, bitflip_rate=0.5))
        kinds = {plan.decide("r1", a).kind for a in range(30)}
        assert None in kinds and "bitflip" in kinds

    def test_aggregate_rate_matches_config(self):
        plan = FaultPlan(ChaosConfig(seed=0, exception_rate=0.2))
        hits = sum(bool(plan.decide(f"r{i}", 0)) for i in range(2000))
        assert 0.15 < hits / 2000 < 0.25

    def test_kill_degrades_to_exception_without_permission(self):
        plan = FaultPlan(ChaosConfig(seed=0, worker_kill_rate=1.0))
        assert plan.decide("x", 0, allow_kill=True).kind == "kill"
        assert plan.decide("x", 0, allow_kill=False).kind == "exception"

    def test_target_prefix_faults_first_attempt_only(self):
        plan = FaultPlan(ChaosConfig(seed=0, target_prefix="storm"))
        assert plan.decide("storm7", 0).kind == "exception"
        assert plan.decide("storm7", 1).kind is None
        assert plan.decide("normal", 0).kind is None

    def test_inactive_plan_never_faults(self):
        plan = FaultPlan(ChaosConfig())
        assert not any(plan.decide(f"r{i}", 0) for i in range(100))


class TestApply:
    def test_exception_decision_raises_injected_fault(self):
        plan = FaultPlan(ChaosConfig(seed=0, exception_rate=1.0))
        with pytest.raises(InjectedFault):
            plan.apply_pre(FaultDecision(kind="exception"), "r0")

    def test_none_decision_is_a_noop(self):
        FaultPlan(ChaosConfig(seed=0, exception_rate=1.0)).apply_pre(
            FaultDecision(), "r0"
        )

    def test_corrupt_result_flips_one_in_range_bit(self):
        plan = FaultPlan(ChaosConfig(seed=0, bitflip_rate=1.0))
        n = 197
        for bit in (0, 5, 300):
            corrupted = plan.corrupt_result(
                FaultDecision(kind="bitflip", bit=bit), 42, n
            )
            assert corrupted != 42
            assert bin(corrupted ^ 42).count("1") == 1
            assert (corrupted ^ 42).bit_length() <= n.bit_length()


class TestFrameFaults:
    """Per-batch wire faults: seeded decisions, surgical frame damage."""

    def _frame(self) -> bytes:
        return encode_batch_frame(
            7, [ModExpRequest(4, 13, 497, request_id="f")]
        )

    def test_frame_decisions_deterministic_per_batch_and_attempt(self):
        plan = FaultPlan(ChaosConfig(seed=3, corrupt_frame_rate=0.5))
        a = [plan.decide_frame(i, 0) for i in range(50)]
        b = [plan.decide_frame(i, 0) for i in range(50)]
        assert a == b

    def test_frame_attempts_draw_independently(self):
        plan = FaultPlan(ChaosConfig(seed=3, corrupt_frame_rate=0.5))
        kinds = {plan.decide_frame(7, a).kind for a in range(30)}
        assert None in kinds and "corrupt_frame" in kinds

    def test_inactive_config_never_faults_the_wire(self):
        plan = FaultPlan(ChaosConfig(seed=3, bitflip_rate=0.5))
        assert not any(plan.decide_frame(i, 0) for i in range(50))

    def test_corrupt_frame_flips_one_byte_past_the_header(self):
        plan = FaultPlan(ChaosConfig(seed=0, corrupt_frame_rate=1.0))
        frame = self._frame()
        mangled = plan.mangle_frame(
            FaultDecision(kind="corrupt_frame", bit=1234), frame
        )
        assert len(mangled) == len(frame)
        assert mangled[:9] == frame[:9]  # receiver can still requeue
        diffs = [i for i, (x, y) in enumerate(zip(frame, mangled)) if x != y]
        assert len(diffs) == 1 and diffs[0] >= 9
        with pytest.raises(WireFormatError, match="checksum mismatch"):
            decode_batch_frame(mangled)

    def test_truncate_frame_keeps_at_least_the_header(self):
        plan = FaultPlan(ChaosConfig(seed=0, truncate_frame_rate=1.0))
        frame = self._frame()
        mangled = plan.mangle_frame(
            FaultDecision(kind="truncate_frame", bit=5), frame
        )
        assert 9 <= len(mangled) < len(frame)
        assert mangled == frame[: len(mangled)]  # a prefix, not damage

    def test_slow_frame_leaves_the_bytes_alone(self):
        plan = FaultPlan(ChaosConfig(seed=0, slow_frame_rate=1.0))
        frame = self._frame()
        assert plan.mangle_frame(FaultDecision(kind="slow_frame"), frame) == frame
