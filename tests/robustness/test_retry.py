"""Retry backoff determinism and the service-wide retry budget."""

import threading

import pytest

from repro.errors import ParameterError
from repro.robustness.retry import RetryBudget, RetryPolicy


class TestBackoff:
    def test_deterministic_per_request_attempt(self):
        p = RetryPolicy(max_attempts=4, backoff_s=0.1, seed=9)
        assert p.backoff("r1", 2) == p.backoff("r1", 2)
        assert p.backoff("r1", 2) != p.backoff("r2", 2)

    def test_exponential_growth_within_jitter_band(self):
        p = RetryPolicy(max_attempts=5, backoff_s=0.1, multiplier=2.0, jitter=0.25)
        for attempt in (1, 2, 3):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            delay = p.backoff("r", attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_zero_base_means_no_sleep(self):
        p = RetryPolicy(max_attempts=3, backoff_s=0.0)
        assert p.backoff("r", 1) == 0.0

    def test_attempt_zero_never_waits(self):
        assert RetryPolicy().backoff("r", 0) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter=2.0)


class TestDeadlineClamp:
    """Backoff bounded by the remaining deadline; fail fast when it
    cannot cover another attempt."""

    def test_backoff_clamped_to_remaining_budget(self):
        p = RetryPolicy(max_attempts=4, backoff_s=0.1, jitter=0.0)
        assert p.backoff("r", 1) == pytest.approx(0.1)
        assert p.backoff("r", 1, remaining_s=0.02) == pytest.approx(0.02)

    def test_negative_remaining_means_no_sleep(self):
        p = RetryPolicy(max_attempts=4, backoff_s=0.1, jitter=0.0)
        assert p.backoff("r", 1, remaining_s=-1.0) == 0.0

    def test_no_deadline_retries_up_to_max_attempts(self):
        p = RetryPolicy(max_attempts=3, backoff_s=0.1)
        assert p.worth_retrying(2, None)  # attempt 3 is the last allowed
        assert not p.worth_retrying(3, None)  # attempt 4 would exceed

    def test_fails_fast_when_budget_cannot_cover_the_backoff(self):
        # Floor for attempt 1's sleep is backoff_s × (1 − jitter) = 0.1.
        p = RetryPolicy(max_attempts=5, backoff_s=0.1, jitter=0.0)
        assert p.worth_retrying(1, 0.2)
        assert not p.worth_retrying(1, 0.05)

    def test_attempt_cost_counts_against_the_budget(self):
        # 0.2 s remaining covers the 0.1 s sleep but not sleep + a
        # 0.15 s attempt: retrying would only miss the deadline later.
        p = RetryPolicy(max_attempts=5, backoff_s=0.1, jitter=0.0)
        assert not p.worth_retrying(1, 0.2, attempt_cost_s=0.15)
        assert p.worth_retrying(1, 0.3, attempt_cost_s=0.15)

    def test_first_retry_of_zero_backoff_policy_needs_any_budget(self):
        p = RetryPolicy(max_attempts=3, backoff_s=0.0)
        assert p.worth_retrying(1, 0.001)
        assert not p.worth_retrying(1, 0.0)


class TestBudget:
    def test_bounds_concurrent_retries(self):
        b = RetryBudget(2)
        assert b.try_acquire() and b.try_acquire()
        assert not b.try_acquire()
        b.release()
        assert b.try_acquire()

    def test_outstanding_tracks(self):
        b = RetryBudget(4)
        b.try_acquire()
        b.try_acquire()
        assert b.outstanding == 2
        b.release()
        assert b.outstanding == 1

    def test_thread_safe_under_contention(self):
        b = RetryBudget(50)
        acquired = []

        def worker():
            got = sum(b.try_acquire() for _ in range(10))
            acquired.append(got)

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(acquired) == 50  # exactly the budget, no over-grant
