"""Online result verification: the residue witness and the Walter bound."""

import pytest

from repro.errors import FaultDetected, ParameterError
from repro.robustness.verify import (
    ResultVerifier,
    VerifyPolicy,
    residue_witness,
    walter_bound_ok,
)
from repro.serving.request import ModExpRequest

N = 0xC96F4F3C6D21E1F1A9F5A8B7 | 1


def _req(base=7, exponent=65537, rid="r0"):
    return ModExpRequest(base=base, exponent=exponent, modulus=N, request_id=rid)


class TestWalterBound:
    def test_accepts_the_open_interval(self):
        assert walter_bound_ok(0, 197)
        assert walter_bound_ok(2 * 197 - 1, 197)

    def test_rejects_outside(self):
        assert not walter_bound_ok(-1, 197)
        assert not walter_bound_ok(2 * 197, 197)


class TestResidueWitness:
    def test_matches_direct_computation(self):
        r = 1009  # prime
        for base, e in ((7, 65537), (123456, 3), (r * 5, 17)):
            assert residue_witness(base, e, r) == pow(base, e, r)

    def test_base_divisible_by_witness(self):
        assert residue_witness(2018, 5, 1009) == 0


class TestVerifyPolicy:
    def test_off_by_default(self):
        assert not VerifyPolicy().enabled

    def test_full_always_verifies(self):
        p = VerifyPolicy(mode="full")
        assert all(p.should_verify(f"r{i}") for i in range(20))

    def test_sampled_rate_is_roughly_honoured_and_deterministic(self):
        p = VerifyPolicy(mode="sampled", sample_rate=0.3, seed=1)
        picks = [p.should_verify(f"r{i}") for i in range(1000)]
        again = [p.should_verify(f"r{i}") for i in range(1000)]
        assert picks == again
        assert 0.2 < sum(picks) / len(picks) < 0.4

    def test_retried_attempts_always_verify(self):
        p = VerifyPolicy(mode="sampled", sample_rate=0.0)
        assert not p.should_verify("r0", attempt=0)
        assert p.should_verify("r0", attempt=1)

    def test_bad_mode_rejected(self):
        with pytest.raises(ParameterError):
            VerifyPolicy(mode="always")

    def test_bad_rate_rejected(self):
        with pytest.raises(ParameterError):
            VerifyPolicy(mode="sampled", sample_rate=1.5)


class TestResultVerifier:
    def test_accepts_the_true_value(self):
        v = ResultVerifier(VerifyPolicy(mode="full"))
        req = _req()
        v.check(req, pow(req.base, req.exponent, N))  # no raise

    def test_rejects_out_of_range(self):
        v = ResultVerifier(VerifyPolicy(mode="full"))
        with pytest.raises(FaultDetected) as e:
            v.check(_req(), N + 1)
        assert e.value.check == "range"

    @pytest.mark.parametrize("bit", [0, 1, 17, 50, 90])
    def test_rejects_every_single_bit_flip(self, bit):
        req = _req()
        good = pow(req.base, req.exponent, N)
        bad = good ^ (1 << bit)
        if not 0 <= bad < N:
            pytest.skip("flip left the range; caught by the range check")
        with pytest.raises(FaultDetected) as e:
            ResultVerifier(VerifyPolicy(mode="full")).check(req, bad)
        assert e.value.check == "residue"

    def test_witness_choice_is_deterministic_per_request(self):
        v = ResultVerifier(VerifyPolicy(mode="full", seed=3))
        req = _req(rid="stable")
        good = pow(req.base, req.exponent, N)
        # Same request id -> same witness -> same (accepting) verdict.
        v.check(req, good)
        v.check(req, good)
