"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestMultiply:
    def test_mmmc_model(self):
        code, text = run_cli("multiply", "300", "150", "197")
        assert code == 0
        assert "golden agrees: True" in text
        assert "cycles: 29" in text

    def test_gate_model(self):
        code, text = run_cli("multiply", "3", "5", "11", "--model", "gate")
        assert code == 0
        assert "golden agrees: True" in text

    def test_golden_model_no_cycles(self):
        code, text = run_cli("multiply", "3", "5", "11", "--model", "golden")
        assert code == 0
        assert "cycles" not in text

    def test_hex_operands(self):
        code, text = run_cli("multiply", "0x12C", "0x96", "0xC5")
        assert code == 0

    def test_paper_arch(self):
        code, text = run_cli(
            "multiply", "10", "20", "139", "--model", "rtl", "--arch", "paper"
        )
        assert code == 0
        assert "cycles: 28" in text  # 3l+4 for l=8


class TestExponentiate:
    def test_golden(self):
        code, text = run_cli("exponentiate", "55", "123", "197")
        assert code == 0
        assert f"= {pow(55, 123, 197)}" in text

    def test_rtl(self):
        code, text = run_cli("exponentiate", "7", "5", "197", "--engine", "rtl")
        assert code == 0
        assert "multiplications" in text


class TestReports:
    def test_experiments(self):
        code, text = run_cli("experiments")
        assert code == 0
        assert "table2" in text and "overflow-finding" in text

    def test_census(self):
        code, text = run_cli("census", "8")
        assert code == 0
        assert "slices" in text and "LUT depth" in text

    def test_fault(self):
        code, text = run_cli("fault", "--l", "8", "--samples", "30")
        assert code == 0
        assert "corruption rate" in text
        assert "ALL" in text


class TestTables:
    def test_tables_command(self):
        code, text = run_cli("tables")
        assert code == 0
        assert "Table 2" in text and "Table 1" in text
        # the l = 1024 row with the paper's slice count alongside ours
        assert "5706" in text


class TestReportAndVerilog:
    def test_report_to_stdout(self, tmp_path):
        out_path = tmp_path / "r.md"
        code, text = run_cli("report", "--out", str(out_path), "--seed", "1")
        assert code == 0
        assert "Live reproduction report" in text
        assert "Table 2" in text
        assert out_path.exists()
        assert "3l+4" in out_path.read_text()

    def test_verilog_export(self, tmp_path):
        out_path = tmp_path / "m.v"
        code, text = run_cli("verilog", "6", "--out", str(out_path))
        assert code == 0
        assert "co-simulation checked" in text
        content = out_path.read_text()
        assert content.startswith("// generated")
        assert "endmodule" in content


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
