"""Tests for the experiment registry."""

import importlib
import os

import pytest

from repro.analysis.experiments import EXPERIMENTS, get_experiment
from repro.errors import ParameterError

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestRegistry:
    def test_core_artifacts_present(self):
        for eid in ("table1", "table2", "fig1", "fig2", "fig34", "eq10"):
            assert eid in EXPERIMENTS

    def test_lookup(self):
        e = get_experiment("table2")
        assert "Slices" in e.description or "slice" in e.description.lower()

    def test_unknown_id(self):
        with pytest.raises(ParameterError, match="unknown experiment"):
            get_experiment("table99")

    def test_module_references_importable(self):
        for e in EXPERIMENTS.values():
            for mod in e.modules:
                importlib.import_module(mod)

    def test_benchmark_files_exist(self):
        for e in EXPERIMENTS.values():
            path = os.path.join(REPO_ROOT, e.benchmark)
            assert os.path.exists(path), f"{e.id}: missing {e.benchmark}"

    def test_ids_unique_and_match_keys(self):
        for key, e in EXPERIMENTS.items():
            assert key == e.id
