"""Tests for the side-channel trace analysis (Section 5 claim)."""

import random

import pytest

from repro.analysis.sidechannel import (
    leakage_summary,
    subtraction_trace,
    timing_histogram,
)
from repro.errors import ParameterError


class TestSubtractionTrace:
    def test_result_correct(self):
        tr = subtraction_trace(197, 55, 123)
        assert tr.result == pow(55, 123, 197)

    def test_one_flag_per_multiplication(self):
        e = 0b1011
        tr = subtraction_trace(197, 5, e)
        # pre + squares + multiplies + post.
        expected = 2 + (e.bit_length() - 1) + (bin(e).count("1") - 1)
        assert len(tr.subtractions) == expected

    def test_subtractions_actually_occur(self):
        """Algorithm 1's leak is real: across random operands, some
        multiplications subtract and some do not."""
        rng = random.Random(1)
        n = 251
        saw_true = saw_false = False
        for _ in range(20):
            tr = subtraction_trace(n, rng.randrange(n), rng.randrange(1, 1 << 16))
            saw_true |= any(tr.subtractions)
            saw_false |= not all(tr.subtractions)
        assert saw_true and saw_false

    def test_validation(self):
        with pytest.raises(ParameterError):
            subtraction_trace(197, 197, 3)
        with pytest.raises(ParameterError):
            subtraction_trace(197, 1, 0)


class TestTimingHistogram:
    def test_two_classes_for_alg1(self):
        rng = random.Random(2)
        tr = subtraction_trace(251, rng.randrange(251), 0xBEEF)
        hist = timing_histogram(tr)
        assert 1 <= len(hist) <= 2
        assert sum(hist.values()) == len(tr.subtractions)

    def test_penalty_separates_classes(self):
        tr = subtraction_trace(251, 123, 0xABC)
        hist = timing_histogram(tr, subtraction_penalty=7)
        costs = sorted(hist)
        if len(costs) == 2:
            assert costs[1] - costs[0] == 7


class TestLeakageSummary:
    def test_alg1_exhibits_variance(self):
        rng = random.Random(3)
        traces = [
            subtraction_trace(251, rng.randrange(251), rng.randrange(1, 1 << 20))
            for _ in range(12)
        ]
        s = leakage_summary(traces)
        assert s["mean_leak_fraction"] > 0
        assert s["leak_count_variance"] > 0
        assert s["timing_classes"] == 2

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            leakage_summary([])
