"""Tests for the sweep driver."""

from repro.analysis.sweep import sweep


class TestSweep:
    def test_cartesian_product(self):
        points = sweep(lambda a, b: {"s": a + b}, {"a": [1, 2], "b": [10, 20]})
        assert len(points) == 4
        assert points[0].params == {"a": 1, "b": 10}
        assert points[-1].result == {"s": 22}

    def test_order_deterministic(self):
        p1 = sweep(lambda a: {"v": a}, {"a": [3, 1, 2]})
        p2 = sweep(lambda a: {"v": a}, {"a": [3, 1, 2]})
        assert [p.params for p in p1] == [p.params for p in p2]
        assert [p.params["a"] for p in p1] == [3, 1, 2]

    def test_row_projection(self):
        points = sweep(lambda l: {"cycles": 3 * l + 4}, {"l": [32]})
        assert points[0].row(["l", "cycles", "missing"]) == [32, 100, None]

    def test_single_axis(self):
        points = sweep(lambda x: {"sq": x * x}, {"x": range(3)})
        assert [p.result["sq"] for p in points] == [0, 1, 4]

    def test_empty_grid_axis(self):
        assert sweep(lambda x: {"v": x}, {"x": []}) == []
