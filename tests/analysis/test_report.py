"""Tests for the live report generator."""

import os

from repro.analysis.report import generate_report


class TestGenerateReport:
    def test_sections_present(self):
        text = generate_report(bits=(32,), seed=3)
        for heading in (
            "# Live reproduction report",
            "## Measured multiplication latency",
            "## Table 2",
            "## Table 1",
            "## Array census",
            "## The leftmost-cell carry-loss finding",
            "## Formulas verified",
        ):
            assert heading in text, heading

    def test_measured_latency_rows(self):
        text = generate_report(bits=(32,), seed=3)
        # l = 32 row: formula 100, corrected measurement 101.
        assert "100" in text and "101" in text

    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "report.md")
        text = generate_report(path, bits=(32,), seed=1)
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read().strip() == text.strip()

    def test_deterministic_given_seed(self):
        assert generate_report(bits=(32,), seed=7) == generate_report(
            bits=(32,), seed=7
        )
