"""Tests for the table renderer."""

from repro.analysis.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["l", "Tp"], [[32, 9.256], [1024, 10.458]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "l" in lines[0] and "Tp" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert "9.256" in lines[2]

    def test_title(self):
        out = render_table(["a"], [[1]], title="Table 2")
        assert out.splitlines()[0] == "Table 2"

    def test_precision(self):
        out = render_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out and "1.23" not in out

    def test_none_rendered_as_dash(self):
        out = render_table(["a", "b"], [[1, None]])
        assert "-" in out.splitlines()[-1]

    def test_numeric_right_alignment(self):
        out = render_table(["v"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("1") and rows[1].endswith("100")
        assert rows[0].startswith("  ")

    def test_text_left_alignment(self):
        out = render_table(["name", "v"], [["ab", 1], ["abcdef", 2]])
        rows = out.splitlines()[2:]
        assert rows[0].startswith("ab ")

    def test_short_rows_padded(self):
        out = render_table(["a", "b", "c"], [[1]])
        assert out.splitlines()[-1].count("-") >= 2
