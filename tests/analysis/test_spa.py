"""Tests for the SPA attack simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spa import recover_exponent_sqm, spa_resistance_report
from repro.errors import ParameterError
from repro.montgomery.exponent import montgomery_modexp
from repro.montgomery.params import MontgomeryContext


class TestRecovery:
    @given(st.integers(1, 1 << 64))
    @settings(max_examples=200)
    def test_recovers_any_exponent_from_sqm_trace(self, e):
        """The attacker reads the exponent straight off Algorithm 3's
        operation sequence — for every exponent."""
        ctx = MontgomeryContext(197)
        _, trace = montgomery_modexp(ctx, 5, e)
        kinds = [op.kind for op in trace.operations]
        assert recover_exponent_sqm(kinds) == e

    def test_single_bit_exponent(self):
        ctx = MontgomeryContext(197)
        _, trace = montgomery_modexp(ctx, 5, 1)
        assert recover_exponent_sqm([op.kind for op in trace.operations]) == 1

    def test_malformed_trace(self):
        with pytest.raises(ParameterError):
            recover_exponent_sqm(["multiply", "square"])


class TestReport:
    def test_sqm_leaks_ladder_does_not(self):
        rep = spa_resistance_report(197, 55, 0xBEEF)
        assert rep["square-multiply"].exact
        assert rep["square-multiply"].recovered == 0xBEEF
        assert rep["square-multiply"].leaked_bits == 16
        assert not rep["ladder"].exact
        assert rep["ladder"].recovered is None
        assert rep["ladder"].leaked_bits == 0

    @given(st.integers(1, 1 << 32))
    @settings(max_examples=50)
    def test_always_total_leak_vs_zero_leak(self, e):
        rep = spa_resistance_report(251, 100, e)
        assert rep["square-multiply"].exact
        assert rep["ladder"].leaked_bits == 0
