"""Tests for the fault-injection harness — including the shadow-lattice
prediction that validates the RTL microarchitecture."""

import pytest

from repro.analysis.fault import (
    FaultSite,
    campaign_summary,
    fault_campaign,
    inject_fault,
)
from repro.errors import ParameterError


L, N, X, Y = 8, 197, 300, 150


class TestInjection:
    def test_result_register_fault_always_corrupts_if_before_out(self):
        """Flipping an already-captured result bit corrupts the output."""
        out = inject_fault(L, X, Y, N, FaultSite(cycle=3 * L + 2, register="result", index=0))
        assert out.corrupted
        assert out.observed == out.fault_free ^ 1

    def test_late_x_shift_fault_harmless(self):
        """The X register is exhausted late in the run: flipping its MSB
        after every bit has been consumed cannot matter."""
        out = inject_fault(
            L, X, Y, N, FaultSite(cycle=3 * L, register="x_shift", index=L)
        )
        assert not out.corrupted

    def test_early_x_lsb_fault_corrupts(self):
        """Flipping X(0) before it is consumed changes the product
        (x=300 has its bit 1 set: flip makes a different multiplier)."""
        out = inject_fault(L, X, Y, N, FaultSite(cycle=0, register="x_shift", index=1))
        assert out.corrupted

    def test_validation(self):
        with pytest.raises(ParameterError):
            inject_fault(L, X, Y, N, FaultSite(cycle=999, register="t", index=0))
        with pytest.raises(ParameterError):
            inject_fault(L, X, Y, N, FaultSite(cycle=0, register="t", index=99))
        with pytest.raises(ParameterError):
            inject_fault(L, X, Y, N, FaultSite(cycle=0, register="flux", index=0))


class TestShadowLatticePrediction:
    """The microarchitectural theory: T(j) captured at the end of an
    off-parity cycle holds a shadow value that no productive computation
    ever reads — flipping it must be invisible.  Flipping the same
    register at on-parity ends hits a live value."""

    @pytest.mark.parametrize("j", [2, 3, 4])
    def test_shadow_flips_invisible_live_flips_corrupt(self, j):
        shadow = live = 0
        shadow_n = live_n = 0
        # T(j) productive captures happen at ends of cycles with parity j;
        # mid-run flips (away from start-up and drain edge cases).
        for tau in range(6, 2 * L):
            out = inject_fault(L, X, Y, N, FaultSite(cycle=tau, register="t", index=j))
            if tau % 2 == j % 2:
                live += out.corrupted
                live_n += 1
            else:
                shadow += out.corrupted
                shadow_n += 1
        assert shadow == 0, "shadow-lattice flips must never corrupt"
        assert live == live_n, "live-value flips in mid-run must corrupt"


class TestCampaign:
    def test_summary_structure(self):
        outs = fault_campaign(L, X, Y, N, samples=60, seed=2)
        s = campaign_summary(outs)
        assert "ALL" in s
        assert s["ALL"]["injections"] == 60
        assert 0.0 <= s["ALL"]["corruption_rate"] <= 1.0

    def test_overall_rate_near_half(self):
        """The 2-slow array: roughly half of random single-bit flips land
        in the shadow lattice (or after last use) and are absorbed."""
        outs = fault_campaign(L, X, Y, N, samples=400, seed=3)
        rate = campaign_summary(outs)["ALL"]["corruption_rate"]
        assert 0.3 <= rate <= 0.7

    def test_explicit_sites(self):
        sites = [FaultSite(cycle=0, register="t", index=1)]
        outs = fault_campaign(L, X, Y, N, sites=sites)
        assert len(outs) == 1 and outs[0].site == sites[0]

    def test_empty_summary_rejected(self):
        with pytest.raises(ParameterError):
            campaign_summary([])

    def test_deterministic_given_seed(self):
        a = fault_campaign(L, X, Y, N, samples=30, seed=5)
        b = fault_campaign(L, X, Y, N, samples=30, seed=5)
        assert [(o.site, o.corrupted) for o in a] == [(o.site, o.corrupted) for o in b]


class TestGateLevelEngines:
    """The same FaultSite addressing through the real netlist: the
    interpreted and compiled engines must agree bit-for-bit with each
    other on every injected fault's outcome."""

    def test_gate_campaign_runs_and_reuses_one_netlist(self):
        outs = fault_campaign(L, X, Y, N, samples=20, seed=4, engine="gate")
        assert len(outs) == 20
        s = campaign_summary(outs)
        assert 0.0 <= s["ALL"]["corruption_rate"] <= 1.0

    def test_compiled_and_interpreted_agree_exactly(self):
        a = fault_campaign(L, X, Y, N, samples=25, seed=6, engine="gate")
        b = fault_campaign(L, X, Y, N, samples=25, seed=6, engine="compiled")
        assert [(o.site, o.observed, o.detected) for o in a] == [
            (o.site, o.observed, o.detected) for o in b
        ]

    def test_gate_fault_corrupts_known_live_site(self):
        out = inject_fault(
            L, X, Y, N, FaultSite(cycle=3 * L + 3, register="result", index=0),
            engine="gate",
        )
        assert out.corrupted

    def test_gate_instance_recovers_after_fault(self):
        """An injected fault must not contaminate later multiplications
        on the same (reused) netlist instance."""
        from repro.systolic.mmmc_netlist import GateLevelMMMC

        mmmc = GateLevelMMMC(L, mode="corrected", simulator="interpreted")
        site = FaultSite(cycle=5, register="t", index=2)
        faulty = inject_fault(L, X, Y, N, site, engine="gate", _mmmc=mmmc)
        clean = mmmc.multiply(X, Y, N).result
        assert clean == faulty.fault_free

    def test_gate_cycle_window_validated(self):
        with pytest.raises(ParameterError):
            inject_fault(
                L, X, Y, N, FaultSite(cycle=3 * L + 6, register="t", index=0),
                engine="gate",
            )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ParameterError):
            inject_fault(
                L, X, Y, N, FaultSite(cycle=0, register="t", index=0),
                engine="fpga",
            )
        with pytest.raises(ParameterError):
            fault_campaign(L, X, Y, N, samples=1, engine="fpga")

    def test_rtl_and_gate_rates_comparable(self):
        """Both substrates model the same microarchitecture; their random
        corruption rates land in the same broad band."""
        rtl = campaign_summary(fault_campaign(L, X, Y, N, samples=120, seed=8))
        gate = campaign_summary(
            fault_campaign(L, X, Y, N, samples=120, seed=8, engine="gate")
        )
        assert abs(rtl["ALL"]["corruption_rate"] - gate["ALL"]["corruption_rate"]) < 0.25
