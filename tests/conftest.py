"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.montgomery.params import MontgomeryContext


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


def odd_modulus(min_bits: int = 2, max_bits: int = 96) -> st.SearchStrategy[int]:
    """Hypothesis strategy: odd modulus with exact bit length in range."""

    def build(bits: int, body: int) -> int:
        top = 1 << (bits - 1)
        return top | ((body % max(top >> 1, 1)) << 1) | 1

    return st.builds(
        build,
        st.integers(min_value=min_bits, max_value=max_bits),
        st.integers(min_value=0),
    )


def context_and_operands(
    min_bits: int = 2, max_bits: int = 96
) -> st.SearchStrategy:
    """Strategy producing (MontgomeryContext, x, y) with x, y in [0, 2N)."""

    def build(n: int, fx: int, fy: int):
        ctx = MontgomeryContext(n)
        return ctx, fx % (2 * n), fy % (2 * n)

    return st.builds(
        build,
        odd_modulus(min_bits, max_bits),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
