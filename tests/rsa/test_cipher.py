"""Tests for RSA primitives over the hardware exponentiator model."""

import random

import pytest

from repro.errors import ParameterError
from repro.rsa.cipher import RSACipher
from repro.rsa.keygen import generate_keypair
from repro.systolic.timing import mmm_cycles_corrected


@pytest.fixture(scope="module")
def key():
    return generate_keypair(64, random.Random(0xA11CE))


@pytest.fixture(scope="module")
def cipher(key):
    return RSACipher(key, engine="golden")


class TestRoundTrips:
    def test_encrypt_decrypt(self, cipher, key):
        for m in (0, 1, 0xDEADBEEF % key.modulus, key.modulus - 1):
            c = cipher.encrypt(m)
            assert cipher.decrypt(c.value).value == m

    def test_crt_matches_direct(self, cipher, key):
        rng = random.Random(3)
        for _ in range(6):
            m = rng.randrange(key.modulus)
            c = cipher.encrypt(m).value
            assert cipher.decrypt_crt(c).value == cipher.decrypt(c).value == m

    def test_sign_verify(self, cipher, key):
        m = 0x1234567 % key.modulus
        sig = cipher.sign(m)
        assert cipher.verify(m, sig.value)
        assert not cipher.verify((m + 1) % key.modulus, sig.value)

    def test_rtl_engine_small_key(self):
        key = generate_keypair(16, random.Random(2))
        ci = RSACipher(key, engine="rtl")
        m = 12345 % key.modulus
        assert ci.decrypt(ci.encrypt(m).value).value == m


class TestCycleAccounting:
    def test_crt_cheaper_than_direct(self, cipher, key):
        c = cipher.encrypt(42).value
        direct = cipher.decrypt(c)
        crt = cipher.decrypt_crt(c)
        assert crt.cycles < direct.cycles

    def test_encrypt_cycles_scale_with_e(self, key):
        """e = 65537 = 2^16+1: 16 squares + 1 multiply + pre/post."""
        ci = RSACipher(key)
        op = ci.encrypt(7)
        per = mmm_cycles_corrected(key.bits)
        assert op.cycles == (2 + 16 + 1) * per
        assert op.multiplications == 19

    def test_total_cycles_accumulate(self, key):
        ci = RSACipher(key)
        ci.encrypt(5)
        ci.decrypt_crt(ci.encrypt(6).value)
        assert ci.total_cycles > 0


class TestValidation:
    def test_message_window(self, cipher, key):
        with pytest.raises(ParameterError):
            cipher.encrypt(key.modulus)
        with pytest.raises(ParameterError):
            cipher.decrypt(-1)
