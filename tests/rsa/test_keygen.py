"""Tests for RSA key generation (paper Section 4.5 conventions)."""

import math
import random

import pytest

from repro.errors import ParameterError
from repro.rsa.keygen import generate_keypair
from repro.rsa.primes import is_probable_prime


class TestGenerateKeypair:
    def test_structure(self):
        key = generate_keypair(64, random.Random(1))
        assert key.modulus == key.p * key.q
        assert key.modulus.bit_length() == 64
        assert is_probable_prime(key.p) and is_probable_prime(key.q)
        assert key.p != key.q

    def test_carmichael_convention(self):
        """E·D ≡ 1 mod lcm(p-1, q-1) — exactly the paper's statement."""
        key = generate_keypair(48, random.Random(2))
        lam = math.lcm(key.p - 1, key.q - 1)
        assert (key.public_exponent * key.private_exponent) % lam == 1
        assert key.carmichael == lam

    def test_modulus_is_odd(self):
        key = generate_keypair(32, random.Random(3))
        assert key.modulus % 2 == 1

    def test_crt_constants(self):
        key = generate_keypair(48, random.Random(4))
        assert key.d_p == key.private_exponent % (key.p - 1)
        assert key.d_q == key.private_exponent % (key.q - 1)
        assert (key.q_inv * key.q) % key.p == 1
        assert key.p > key.q

    def test_roundtrip_property(self):
        key = generate_keypair(40, random.Random(5))
        for m in (0, 1, 2, 12345 % key.modulus, key.modulus - 1):
            assert pow(pow(m, key.public_exponent, key.modulus),
                       key.private_exponent, key.modulus) == m

    def test_custom_public_exponent(self):
        key = generate_keypair(40, random.Random(6), public_exponent=17)
        assert key.public_exponent == 17

    def test_validation(self):
        with pytest.raises(ParameterError):
            generate_keypair(4, random.Random(0))
        with pytest.raises(ParameterError):
            generate_keypair(64, random.Random(0), public_exponent=4)

    def test_deterministic(self):
        k1 = generate_keypair(48, random.Random(9))
        k2 = generate_keypair(48, random.Random(9))
        assert k1 == k2
