"""Tests for primality testing and prime generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.rsa.primes import SMALL_PRIMES, generate_prime, is_probable_prime


KNOWN_PRIMES = [2, 3, 5, 97, 197, 65537, (1 << 61) - 1, 2**127 - 1]
KNOWN_COMPOSITES = [
    1,
    0,
    4,
    1001,
    65535,
    561,  # Carmichael
    41041,  # Carmichael
    (1 << 61) - 3,
    3215031751,  # strong pseudoprime to bases 2,3,5,7
]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c):
        assert not is_probable_prime(c)

    def test_negative(self):
        assert not is_probable_prime(-7)

    def test_agrees_with_sieve_below_10000(self):
        sieve = [True] * 10000
        sieve[0] = sieve[1] = False
        for i in range(2, 100):
            if sieve[i]:
                for j in range(i * i, 10000, i):
                    sieve[j] = False
        for n in range(10000):
            assert is_probable_prime(n) == sieve[n], n

    def test_large_prime_random_witness_path(self):
        # Above the deterministic limit: exercise the random-witness branch.
        p = 2**521 - 1  # Mersenne prime
        assert is_probable_prime(p, rounds=10, rng=random.Random(0))
        assert not is_probable_prime(p + 2, rounds=10, rng=random.Random(0))

    def test_rejects_non_int(self):
        with pytest.raises(ParameterError):
            is_probable_prime("97")


class TestGeneratePrime:
    def test_exact_bits_and_primality(self):
        rng = random.Random(11)
        for bits in (8, 16, 48):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_deterministic_given_seed(self):
        assert generate_prime(24, random.Random(5)) == generate_prime(
            24, random.Random(5)
        )

    def test_too_few_bits(self):
        with pytest.raises(ParameterError):
            generate_prime(1, random.Random(0))

    def test_small_primes_table(self):
        assert SMALL_PRIMES[0] == 2
        assert 997 in SMALL_PRIMES
        assert all(is_probable_prime(p) for p in SMALL_PRIMES[:20])
