"""Tests for the Blum-Paar comparison model."""

import pytest
from hypothesis import given, settings

from repro.baselines.blum_paar import (
    BlumPaarModel,
    blum_paar_exponentiation_cycles,
    blum_paar_mmm_cycles,
    blum_paar_montgomery,
)
from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext

from tests.conftest import context_and_operands


class TestAlgorithm:
    @given(context_and_operands(2, 64))
    @settings(max_examples=150)
    def test_congruence_with_extra_iteration(self, cxy):
        """Output is x·y·2^-(l+3) mod N and stays in the window."""
        ctx, x, y = cxy
        t = blum_paar_montgomery(ctx, x, y)
        n = ctx.modulus
        r_inv = pow(1 << (ctx.l + 3), -1, n)
        assert 0 <= t < 2 * n
        assert t % n == (x * y * r_inv) % n

    def test_relation_to_paper_algorithm(self):
        """One extra iteration = one extra halving mod N."""
        from repro.montgomery.algorithms import montgomery_no_subtraction

        ctx = MontgomeryContext(197)
        x, y = 300, 150
        ours = montgomery_no_subtraction(ctx, x, y)
        theirs = blum_paar_montgomery(ctx, x, y)
        inv2 = pow(2, -1, 197)
        assert theirs % 197 == (ours * inv2) % 197


class TestCycleCounts:
    def test_mmm_two_more_cycles(self):
        from repro.systolic.timing import mmm_cycles

        for l in (32, 1024):
            assert blum_paar_mmm_cycles(l) == mmm_cycles(l) + 2

    def test_exponentiation_count(self):
        l, e = 128, 0b1011
        per = blum_paar_mmm_cycles(l)
        assert blum_paar_exponentiation_cycles(l, e) == (2 + 3 + 2) * per

    def test_paper_always_faster_same_clock(self):
        from repro.systolic.timing import exponentiation_cycles_paper

        for l in (64, 512, 1024):
            e = (1 << l) - 1
            ours = exponentiation_cycles_paper(l, e).total
            theirs = blum_paar_exponentiation_cycles(l, e)
            assert ours < theirs

    def test_validation(self):
        with pytest.raises(ParameterError):
            blum_paar_exponentiation_cycles(8, 0)


class TestWallClockModel:
    def test_penalty_applied(self):
        m = BlumPaarModel(l=64, clock_penalty=1.5)
        assert m.mmm_time_ns(10.0) == blum_paar_mmm_cycles(64) * 15.0

    def test_default_penalty_above_one(self):
        assert BlumPaarModel(l=64).clock_penalty > 1.0
