"""Tests for the high-radix latency model."""

import pytest

from repro.baselines.highradix import HighRadixModel
from repro.errors import ParameterError


class TestIterations:
    def test_alpha_one_is_paper(self):
        m = HighRadixModel(l=1024, alpha=1)
        assert m.iterations == 1026

    def test_iterations_shrink_with_alpha(self):
        its = [HighRadixModel(l=1024, alpha=a).iterations for a in (1, 2, 4, 8, 16)]
        assert its == sorted(its, reverse=True)
        assert its[-1] == 65


class TestLatency:
    def test_alpha_one_clock_unchanged(self):
        m = HighRadixModel(l=64, alpha=1)
        assert m.clock_period_ns(10.0) == 10.0

    def test_clock_grows_with_alpha(self):
        tps = [
            HighRadixModel(l=64, alpha=a).clock_period_ns(10.0) for a in (1, 2, 4, 8)
        ]
        assert tps == sorted(tps)

    def test_cycle_count_vs_wall_clock_tradeoff(self):
        """Higher radix always cuts cycles; wall clock improves only while
        the cell penalty stays below the iteration saving."""
        base = HighRadixModel(l=1024, alpha=1)
        r16 = HighRadixModel(l=1024, alpha=16)
        assert r16.mmm_cycles < base.mmm_cycles
        # with the default penalty, radix-16 still wins on wall clock
        assert r16.mmm_time_ns(10.0) < base.mmm_time_ns(10.0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            HighRadixModel(l=1, alpha=1)
        with pytest.raises(ParameterError):
            HighRadixModel(l=64, alpha=0)
