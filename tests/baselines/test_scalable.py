"""Tests for the Tenca-Koç scalable architecture model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.scalable import (
    ScalableUnit,
    scalable_mmm_cycles,
    scalable_montgomery,
)
from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext

from tests.conftest import odd_modulus


class TestFunctionalModel:
    @given(
        odd_modulus(2, 72),
        st.integers(0, 1 << 80),
        st.integers(0, 1 << 80),
        st.sampled_from([4, 8, 16, 32]),
    )
    @settings(max_examples=150)
    def test_matches_classical_montgomery(self, n, xr, yr, w):
        ctx = MontgomeryContext(n)
        x, y = xr % n, yr % n
        got = scalable_montgomery(ctx, x, y, w)
        assert got == (x * y * pow(1 << ctx.l, -1, n)) % n

    def test_rejects_unreduced(self):
        ctx = MontgomeryContext(11)
        with pytest.raises(ParameterError):
            scalable_montgomery(ctx, 11, 1, 8)

    def test_word_size_independence(self):
        """All word sizes compute the same function."""
        ctx = MontgomeryContext(0xC5)
        outs = {scalable_montgomery(ctx, 100, 150, w) for w in (2, 4, 8, 16, 64)}
        assert len(outs) == 1


class TestLatencyModel:
    def test_more_stages_fewer_cycles(self):
        cycles = [scalable_mmm_cycles(1024, 8, p) for p in (2, 4, 8, 16, 32)]
        assert cycles == sorted(cycles, reverse=True)

    def test_saturates_at_iteration_bound(self):
        """Beyond enough stages the bit loop itself is the bound."""
        big = scalable_mmm_cycles(256, 8, 64)
        bigger = scalable_mmm_cycles(256, 8, 128)
        assert big == bigger

    def test_paper_array_is_faster_but_larger(self):
        """The paper's full array beats any modest scalable config on
        latency; the scalable unit wins on area — the intended trade."""
        from repro.systolic.timing import mmm_cycles

        n_bits = 1024
        unit = ScalableUnit(word=8, stages=16)
        assert mmm_cycles(n_bits) < unit.mmm_cycles(n_bits)
        paper_area_cells = n_bits + 1  # one cell per bit
        assert unit.area_cells < paper_area_cells

    def test_validation(self):
        with pytest.raises(ParameterError):
            scalable_mmm_cycles(0, 8, 4)
        with pytest.raises(ParameterError):
            scalable_mmm_cycles(64, 0, 4)
        with pytest.raises(ParameterError):
            scalable_mmm_cycles(64, 8, 0)


class TestUnit:
    def test_tradeoff_metric(self):
        u = ScalableUnit(word=8, stages=8)
        assert u.speedup_area_tradeoff(512) == u.mmm_cycles(512) * u.area_cells
