"""Tests for the pre-Montgomery baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import (
    interleaved_modmul,
    naive_cycle_model,
    schoolbook_modmul,
)
from repro.errors import ParameterError


class TestSchoolbook:
    @given(st.integers(2, 1 << 64), st.integers(0, 1 << 64), st.integers(0, 1 << 64))
    @settings(max_examples=150)
    def test_matches_builtin(self, n, xr, yr):
        x, y = xr % n, yr % n
        assert schoolbook_modmul(x, y, n) == (x * y) % n

    def test_rejects_unreduced(self):
        with pytest.raises(ParameterError):
            schoolbook_modmul(11, 1, 11)
        with pytest.raises(ParameterError):
            schoolbook_modmul(-1, 1, 11)
        with pytest.raises(ParameterError):
            schoolbook_modmul(1, 1, 0)


class TestInterleaved:
    @given(st.integers(2, 1 << 64), st.integers(0, 1 << 64), st.integers(0, 1 << 64))
    @settings(max_examples=150)
    def test_matches_builtin(self, n, xr, yr):
        x, y = xr % n, yr % n
        assert interleaved_modmul(x, y, n) == (x * y) % n

    def test_zero_operands(self):
        assert interleaved_modmul(0, 5, 7) == 0
        assert interleaved_modmul(5, 0, 7) == 0


class TestCycleModel:
    def test_iteration_cost(self):
        m = naive_cycle_model(1024, word=32)
        assert m.cycles_per_iteration == 1 + 2 * 32
        assert m.multiplication_cycles == 1024 * 65

    def test_montgomery_wins(self):
        """The point of the paper: Montgomery's 3l+4 beats the naive
        multiplier's l x (1 + 2·l/w) for realistic sizes."""
        from repro.systolic.timing import mmm_cycles

        for l in (256, 512, 1024):
            assert mmm_cycles(l) < naive_cycle_model(l).multiplication_cycles

    def test_exponentiation_scaling(self):
        m = naive_cycle_model(64)
        assert m.exponentiation_cycles(64) == (64 + 32) * m.multiplication_cycles

    def test_validation(self):
        with pytest.raises(ParameterError):
            naive_cycle_model(0)
        with pytest.raises(ParameterError):
            naive_cycle_model(8, word=0)
