"""Tests for the Virtex-E device model."""

from repro.fpga.virtex import V812E, VirtexEDevice


class TestDevice:
    def test_slice_shape(self):
        assert V812E.slice_luts == 2
        assert V812E.slice_ffs == 2

    def test_net_delay_monotone_in_width(self):
        prev = 0.0
        for bits in (32, 64, 128, 256, 512, 1024):
            d = V812E.net_delay_ns(bits)
            assert d >= prev
            prev = d

    def test_net_delay_floor_below_32(self):
        assert V812E.net_delay_ns(8) == V812E.net_delay_ns(32)

    def test_net_delay_growth_is_mild(self):
        """The paper's Tp drifts ~13% over 32..1024; the net model must
        stay in that regime (l-independence of the architecture)."""
        ratio = V812E.net_delay_ns(1024) / V812E.net_delay_ns(32)
        assert 1.0 < ratio < 1.35

    def test_custom_device(self):
        dev = VirtexEDevice(name="test", t_lut_ns=1.0)
        assert dev.t_lut_ns == 1.0
        assert dev.name == "test"
