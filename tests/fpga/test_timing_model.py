"""Tests for the clock-period model."""

import pytest

from repro.fpga.techmap import technology_map
from repro.fpga.timing_model import estimate_clock_period
from repro.fpga.virtex import V812E, VirtexEDevice
from repro.systolic.mmmc_netlist import build_mmmc


class TestClockPeriod:
    def test_depth_three_for_the_cell_path(self):
        """2 FA + 1 HA in carry chain = 3 LUT levels after mapping."""
        p = build_mmmc(32, "paper")
        t = estimate_clock_period(p.circuit, 32)
        assert t.lut_depth == 3

    def test_tp_in_paper_band(self):
        """Tp lands in the paper's 9.2-10.5 ns band across all sizes."""
        for l in (32, 128, 1024):
            p = build_mmmc(l, "paper")
            t = estimate_clock_period(p.circuit, l)
            assert 8.8 <= t.clock_period_ns <= 11.0

    def test_tp_weakly_increasing(self):
        tps = []
        for l in (32, 128, 512):
            p = build_mmmc(l, "paper")
            tps.append(estimate_clock_period(p.circuit, l).clock_period_ns)
        assert tps == sorted(tps)
        assert tps[-1] / tps[0] < 1.2, "near-constant Tp is the claim"

    def test_frequency_consistent(self):
        p = build_mmmc(32, "paper")
        t = estimate_clock_period(p.circuit, 32)
        assert t.frequency_mhz == pytest.approx(1000.0 / t.clock_period_ns)

    def test_carry_chain_never_critical(self):
        """The counter/comparator carry chain stays below the cell path."""
        p = build_mmmc(1024, "paper")
        t = estimate_clock_period(p.circuit, 1024)
        assert t.carry_chain_path_ns < t.clock_period_ns

    def test_reuses_precomputed_mapping(self):
        p = build_mmmc(32, "paper")
        m = technology_map(p.circuit)
        t1 = estimate_clock_period(p.circuit, 32, mapped=m)
        t2 = estimate_clock_period(p.circuit, 32)
        assert t1.clock_period_ns == t2.clock_period_ns

    def test_slower_device_slower_clock(self):
        slow = VirtexEDevice(name="slow", t_lut_ns=V812E.t_lut_ns * 2)
        p = build_mmmc(32, "paper")
        t_fast = estimate_clock_period(p.circuit, 32)
        t_slow = estimate_clock_period(p.circuit, 32, device=slow)
        assert t_slow.clock_period_ns > t_fast.clock_period_ns
