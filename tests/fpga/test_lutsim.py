"""Tests for the LUT materialization and mapping verification."""

import pytest

from repro.errors import HardwareModelError
from repro.fpga.lutsim import extract_luts, verify_mapping
from repro.fpga.techmap import technology_map
from repro.hdl.gates import full_adder
from repro.hdl.netlist import Circuit
from repro.systolic.array_netlist import build_array
from repro.systolic.mmmc_netlist import build_mmmc


class TestExtractLuts:
    def test_full_adder_truth_tables(self):
        """The two FA LUTs must be XOR3 (0x96) and majority (0xE8)."""
        c = Circuit()
        a, b, ci = (c.add_input(n) for n in "abc")
        s, co = full_adder(c, a, b, ci)
        c.mark_output("s", s)
        c.mark_output("co", co)
        masks = sorted(l.mask for l in extract_luts(c))
        assert masks == [0x96, 0xE8]

    def test_not_gate(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.not_(a))
        (lut,) = extract_luts(c)
        assert lut.inputs == (a.index,)
        assert lut.mask == 0b01  # output 1 when input 0

    def test_constant_inputs_folded(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.and_(a, c.const1))
        (lut,) = extract_luts(c)
        assert lut.inputs == (a.index,)
        assert lut.mask == 0b10  # identity

    def test_lut_count_matches_mapping(self):
        circ = build_array(8, "paper").circuit
        m = technology_map(circ)
        assert len(extract_luts(circ, m)) == m.luts


class TestVerifyMapping:
    @pytest.mark.parametrize("l", [4, 8, 16])
    def test_array_mapping_functional(self, l):
        circ = build_array(l, "paper").circuit
        assert verify_mapping(circ, vectors=12, seed=l) > 0

    def test_mmmc_mapping_functional(self):
        circ = build_mmmc(8, "corrected").circuit
        assert verify_mapping(circ, vectors=12) > 0

    def test_detects_a_corrupted_cover(self):
        """Sabotage one LUT's cut and the verifier must notice."""
        c = Circuit()
        a, b, d = (c.add_input(n) for n in "abd")
        out = c.xor(c.and_(a, b), d)
        c.mark_output("o", out)
        m = technology_map(c)
        # Corrupt: claim the root only depends on (a, b).
        root = next(iter(m.cut_of_root))
        m.cut_of_root[root] = frozenset([a.index, b.index])
        with pytest.raises(HardwareModelError):
            verify_mapping(c, m, vectors=64)
