"""Tests for the LUT4 cut-mapper and slice packer."""

import itertools

import pytest

from repro.fpga.techmap import technology_map
from repro.hdl.gates import full_adder
from repro.hdl.netlist import Circuit
from repro.hdl.simulator import Simulator
from repro.systolic.array_netlist import build_array
from repro.systolic.mmmc_netlist import build_mmmc


class TestSmallCircuits:
    def test_single_gate_is_one_lut(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.mark_output("o", c.and_(a, b))
        m = technology_map(c)
        assert m.luts == 1
        assert m.lut_depth == 1

    def test_four_input_cone_fits_one_lut(self):
        """(a&b) ^ (c|d): 3 gates, 4 inputs — exactly one LUT4."""
        c = Circuit()
        a, b, d, e = (c.add_input(n) for n in "abde")
        c.mark_output("o", c.xor(c.and_(a, b), c.or_(d, e)))
        m = technology_map(c)
        assert m.luts == 1
        assert m.lut_depth == 1

    def test_five_input_cone_needs_two_luts(self):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(5)]
        w = ins[0]
        for x in ins[1:]:
            w = c.xor(w, x)
        c.mark_output("o", w)
        m = technology_map(c)
        assert m.luts == 2
        assert m.lut_depth == 2

    def test_full_adder_maps_to_two_luts_depth_one(self):
        """FA has 3 inputs: both outputs fit in one LUT each, depth 1 —
        the property that makes the cell path 3 LUT levels, not 7."""
        c = Circuit()
        a, b, ci = (c.add_input(n) for n in "abc")
        s, co = full_adder(c, a, b, ci)
        c.mark_output("s", s)
        c.mark_output("co", co)
        m = technology_map(c)
        assert m.lut_depth == 1
        assert m.luts == 2

    def test_buf_dissolves(self):
        c = Circuit()
        a, b = c.add_input("a"), c.add_input("b")
        c.mark_output("o", c.buf(c.and_(a, b)))
        m = technology_map(c)
        assert m.luts == 1

    def test_constants_are_free(self):
        c = Circuit()
        a = c.add_input("a")
        c.mark_output("o", c.and_(a, c.const1))
        m = technology_map(c)
        assert m.luts == 1

    def test_ff_only_circuit(self):
        c = Circuit()
        d = c.add_input("d")
        q = c.dff(d)
        c.mark_output("o", q)
        m = technology_map(c)
        assert m.luts == 0 and m.flip_flops == 1
        assert m.slices == 1


class TestArrayMapping:
    def test_depth_independent_of_l(self):
        """The paper's critical-path claim: one regular cell, any l."""
        depths = set()
        for l in (8, 16, 32, 64):
            m = technology_map(build_array(l, "paper").circuit)
            depths.add(m.lut_depth)
        assert len(depths) == 1

    def test_luts_linear_in_l(self):
        m16 = technology_map(build_array(16, "paper").circuit).luts
        m32 = technology_map(build_array(32, "paper").circuit).luts
        m64 = technology_map(build_array(64, "paper").circuit).luts
        assert abs((m64 - m32) - 2 * (m32 - m16)) <= 8

    def test_mmmc_slice_sanity_vs_paper(self):
        """Within 35% of the paper's slice count at l=32 and l=64."""
        from repro.fpga.calibration import PAPER_TABLE2

        for l in (32, 64):
            m = technology_map(build_mmmc(l, "paper").circuit)
            paper = PAPER_TABLE2[l].slices
            assert paper * 0.65 <= m.slices <= paper * 1.35


class TestMappingIsConservative:
    def test_cover_reaches_every_visible_wire(self):
        """Every FF D input and primary output is either covered by a
        selected LUT or a free wire (input/FF/const)."""
        ports = build_mmmc(8, "corrected")
        c = ports.circuit
        m = technology_map(c)
        producers = {g.output for g in c.gates}
        import repro.fpga.techmap as tm

        for f in c.dffs:
            d = f.d
            # resolve through BUF aliases the same way the mapper does
            from repro.hdl.gates import GateKind

            alias = {g.output: g.inputs[0] for g in c.gates if g.kind is GateKind.BUF}
            while d in alias:
                d = alias[d]
            if d in producers and d not in alias:
                assert d in m.root_of_wire or any(
                    g.output == d and g.kind is GateKind.BUF for g in c.gates
                )
