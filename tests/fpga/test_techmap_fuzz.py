"""Random-circuit fuzzing of the technology mapper.

The strongest check a mapper can get: generate random gate DAGs (random
kinds, random fan-in wiring, random registers with enables/clears),
map them, materialize the LUTs, and co-simulate against the netlist.
Any covering bug — wrong cut, dropped cone member, bad BUF aliasing —
shows up as a functional mismatch.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.lutsim import verify_mapping
from repro.fpga.techmap import technology_map
from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit

BINARY = [
    GateKind.AND,
    GateKind.OR,
    GateKind.XOR,
    GateKind.NAND,
    GateKind.NOR,
    GateKind.XNOR,
]
UNARY = [GateKind.NOT, GateKind.BUF]


def random_circuit(seed: int, n_inputs: int, n_gates: int, n_ffs: int) -> Circuit:
    rng = random.Random(seed)
    c = Circuit(f"fuzz{seed}")
    wires = [c.const0, c.const1]
    wires += [c.add_input(f"i{k}") for k in range(n_inputs)]
    # Pre-create FFs on placeholder D wires so gates can read them.
    from repro.hdl.registers import _drive

    ff_d = []
    for k in range(n_ffs):
        d = c.new_wire(f"ff{k}.d")
        en = rng.choice([None] + wires[2 : 2 + n_inputs])
        clr = rng.choice([None] + wires[2 : 2 + n_inputs])
        q = c.dff(d, name=f"ff{k}", enable=en, clear=clr)
        ff_d.append(d)
        wires.append(q)
    for g in range(n_gates):
        kind = rng.choice(BINARY + UNARY)
        if kind in UNARY:
            out = c._gate(kind, (rng.choice(wires),), f"g{g}")
        else:
            out = c._gate(kind, (rng.choice(wires), rng.choice(wires)), f"g{g}")
        wires.append(out)
    # Wire the FF inputs to late gates and mark some outputs.
    gate_wires = wires[2 + n_inputs + n_ffs :]
    for k, d in enumerate(ff_d):
        _drive(c, d, rng.choice(gate_wires) if gate_wires else c.const0)
    for k in range(min(4, len(gate_wires))):
        c.mark_output(f"o{k}", rng.choice(gate_wires))
    return c


class TestFuzz:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_circuits_map_functionally(self, seed):
        c = random_circuit(seed, n_inputs=5, n_gates=40, n_ffs=4)
        checked = verify_mapping(c, vectors=24, seed=seed)
        assert checked > 0

    @pytest.mark.parametrize("seed", range(8))
    def test_large_random_circuits(self, seed):
        c = random_circuit(1000 + seed, n_inputs=8, n_gates=200, n_ffs=10)
        verify_mapping(c, vectors=12, seed=seed)

    @given(st.integers(0, 10000))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_driven(self, seed):
        c = random_circuit(seed, n_inputs=4, n_gates=25, n_ffs=2)
        verify_mapping(c, vectors=8, seed=seed)

    @pytest.mark.parametrize("seed", range(6))
    def test_mapping_invariants(self, seed):
        c = random_circuit(2000 + seed, n_inputs=6, n_gates=80, n_ffs=6)
        m = technology_map(c)
        # Every selected cut fits a LUT4 and every root is a real gate.
        for root, cut in m.cut_of_root.items():
            assert len(cut) <= 4
            assert c.gates[root].kind is not GateKind.BUF
        # Depth is consistent: no root deeper than the reported maximum.
        if m.depth_by_root:
            assert max(m.depth_by_root.values()) == m.lut_depth
