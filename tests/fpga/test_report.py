"""Tests for the Table 1 / Table 2 regeneration."""

import pytest

from repro.fpga.calibration import PAPER_TABLE1, PAPER_TABLE2
from repro.fpga.report import implementation_report, table1_rows, table2_rows


class TestTable2:
    def test_rows_cover_paper_bit_lengths(self):
        rows = table2_rows(bit_lengths=(32, 64))
        assert [r.l for r in rows] == [32, 64]
        for r in rows:
            assert r.paper_slices == PAPER_TABLE2[r.l].slices

    def test_slices_within_25_percent(self):
        for r in table2_rows(bit_lengths=(32, 64, 128)):
            assert r.slices == pytest.approx(r.paper_slices, rel=0.25)

    def test_tp_within_10_percent(self):
        for r in table2_rows(bit_lengths=(32, 128)):
            assert r.tp_ns == pytest.approx(r.paper_tp_ns, rel=0.10)

    def test_t_mmm_is_cycles_times_tp(self):
        r = implementation_report(32)
        assert r.t_mmm_us == pytest.approx(r.mmm_cycles * r.tp_ns / 1e3)
        assert r.mmm_cycles == 100  # 3*32+4 in paper mode

    def test_ta_product(self):
        r = implementation_report(32)
        assert r.ta_slice_ns == pytest.approx(r.slices * r.tp_ns)

    def test_corrected_mode_costs_one_cycle(self):
        rp = implementation_report(32, mode="paper")
        rc = implementation_report(32, mode="corrected")
        assert rc.mmm_cycles == rp.mmm_cycles + 1
        assert rc.slices >= rp.slices

    def test_cache_returns_same_object(self):
        assert implementation_report(32) is implementation_report(32)

    def test_optimizer_option_is_near_noop_for_mapping(self):
        """The cut mapper already absorbs what the netlist optimizer
        folds: pre-optimization changes slices by <2% (and never the
        depth) — evidence the area model is not inflated by elaboration
        artifacts."""
        base = implementation_report(64)
        opt = implementation_report(64, optimize_netlist=True)
        assert opt.lut_depth == base.lut_depth
        assert abs(opt.slices - base.slices) <= max(2, base.slices // 50)
        assert opt is implementation_report(64, optimize_netlist=True)  # cached


class TestTable1:
    def test_rows(self):
        rows = table1_rows(bit_lengths=(32, 128))
        for r in rows:
            assert r.paper_avg_exp_ms == PAPER_TABLE1[r.l].avg_exp_ms

    def test_avg_exp_within_10_percent(self):
        for r in table1_rows(bit_lengths=(32, 128)):
            assert r.avg_exp_ms == pytest.approx(r.paper_avg_exp_ms, rel=0.10)

    def test_avg_exp_formula(self):
        r = implementation_report(32)
        assert r.avg_exp_ms == pytest.approx(r.avg_exp_cycles * r.tp_ns / 1e6)


class TestCalibrationData:
    def test_paper_table2_internal_consistency(self):
        """TA = S x Tp in the paper's own rows (sanity on transcription)."""
        for row in PAPER_TABLE2.values():
            assert row.ta_slice_ns == pytest.approx(row.slices * row.tp_ns, rel=1e-3)

    def test_table1_table2_tp_agree(self):
        for l, r1 in PAPER_TABLE1.items():
            if l in PAPER_TABLE2:
                assert r1.tp_ns == PAPER_TABLE2[l].tp_ns
