"""Tests for the overlapped-issue scheduler."""

import pytest

from repro.errors import ParameterError
from repro.systolic.pipeline import (
    IssuePlanner,
    exponentiation_cycles_overlapped,
    issue_interval,
    precomputation_overlapped,
)
from repro.systolic.timing import precomputation_cycles


class TestIssueIntervals:
    def test_values(self):
        l = 64
        assert issue_interval(l, "independent") == 2 * (l + 2) + 1
        assert issue_interval(l, "stream_x") == 2 * l + 3
        assert issue_interval(l, "full_drain") == 3 * l + 4

    def test_ordering(self):
        """Streamed issue is tightest; full drain loosest."""
        l = 128
        assert (
            issue_interval(l, "stream_x")
            < issue_interval(l, "independent")
            < issue_interval(l, "full_drain")
        )

    def test_stream_x_never_starves(self):
        """Result bit b at 2l+3+b; consumer bit i at start + 2i.  At the
        tightest start the producer is always ahead."""
        l = 32
        start = issue_interval(l, "stream_x")
        for i in range(l + 1):
            produced_at = 2 * l + 3 + i
            needed_at = start + 2 * i
            assert produced_at <= needed_at

    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            issue_interval(8, "psychic")


class TestPlanner:
    def test_empty(self):
        assert IssuePlanner(8).total_cycles() == 0

    def test_single_op_is_full_multiplication(self):
        p = IssuePlanner(8).add("independent")
        assert p.total_cycles() == 3 * 8 + 4

    def test_chain_of_drains_equals_serial(self):
        l, k = 16, 5
        p = IssuePlanner(l)
        for _ in range(k):
            p.add("full_drain")
        assert p.total_cycles() == k * (3 * l + 4)

    def test_streaming_saves_per_op(self):
        l = 16
        serial = IssuePlanner(l).extend(["full_drain"] * 4).total_cycles()
        streamed = (
            IssuePlanner(l)
            .extend(["full_drain", "stream_x", "full_drain", "stream_x"])
            .total_cycles()
        )
        assert streamed == serial - 2 * (l + 1)


class TestPaperPrecomputation:
    def test_formula_recovered(self):
        """The paper's 5l+10 is two independent issues plus an l-drain —
        the pipelined reading our planner supports to within its ±1
        register-swap convention."""
        for l in (32, 1024):
            assert precomputation_overlapped(l) == precomputation_cycles(l)
            planner = IssuePlanner(l).extend(["independent", "independent"])
            assert abs(planner.total_cycles() - precomputation_overlapped(l)) <= 1


class TestExponentiation:
    def test_overlap_saves_on_multiplies_only(self):
        l = 64
        e_sparse = 1 << 40  # squarings only: nothing to overlap
        ov, nov = exponentiation_cycles_overlapped(l, e_sparse)
        assert nov - ov == 0 or nov - ov == 0  # no stream_x ops
        assert ov == nov
        e_dense = (1 << 40) - 1
        ov2, nov2 = exponentiation_cycles_overlapped(l, e_dense)
        saving = nov2 - ov2
        # one (l+1)-cycle saving per multiply op
        assert saving == 39 * (l + 1)

    def test_saving_fraction_about_one_sixth(self):
        """Balanced exponent: multiplies are 1/3 of ops, each saving
        ~(l+1)/(3l+4) ≈ 1/3 of its cost → ~11% total."""
        import random

        l = 512
        e = random.Random(1).getrandbits(l) | (1 << (l - 1)) | 1
        ov, nov = exponentiation_cycles_overlapped(l, e)
        assert 0.07 <= (nov - ov) / nov <= 0.15

    def test_validation(self):
        with pytest.raises(ParameterError):
            exponentiation_cycles_overlapped(8, 0)
