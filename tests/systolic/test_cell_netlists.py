"""Gate netlists of Fig. 1 vs the behavioral equations — exhaustive."""

import itertools

from repro.hdl.census import census
from repro.hdl.gates import GateKind
from repro.hdl.netlist import Circuit
from repro.hdl.simulator import Simulator
from repro.systolic.cell_netlists import (
    build_first_bit_cell,
    build_leftmost_cell,
    build_no_modulus_cell,
    build_regular_cell,
    build_rightmost_cell,
    build_top_cell,
)
from repro.systolic.cells import (
    first_bit_cell,
    leftmost_cell,
    regular_cell,
    rightmost_cell,
)

BITS = (0, 1)


def _harness(builder, n_inputs):
    c = Circuit("cell")
    ins = [c.add_input(f"i{k}") for k in range(n_inputs)]
    outs = builder(c, *ins)
    for i, w in enumerate(outs):
        c.mark_output(f"o{i}", w)
    return c, ins, outs, Simulator(c)


class TestRegularEquivalence:
    def test_exhaustive(self):
        c, ins, outs, sim = _harness(build_regular_cell, 7)
        for combo in itertools.product(BITS, repeat=7):
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            ref = regular_cell(*combo)
            assert (sim.peek(outs.t), sim.peek(outs.c0), sim.peek(outs.c1)) == ref

    def test_paper_inventory_2fa_1ha_2and(self):
        """2 FA + 1 HA + 2 AND = 5 XOR + 7 AND + 2 OR in our decomposition."""
        c, *_ = _harness(build_regular_cell, 7)
        cen = census(c)
        assert cen.get(GateKind.XOR) == 5
        assert cen.get(GateKind.AND) == 7
        assert cen.get(GateKind.OR) == 2


class TestRightmostEquivalence:
    def test_exhaustive(self):
        c, ins, outs, sim = _harness(build_rightmost_cell, 3)
        for combo in itertools.product(BITS, repeat=3):
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            ref = rightmost_cell(*combo)
            assert (sim.peek(outs.m), sim.peek(outs.c0)) == ref

    def test_paper_inventory_1and_1or_1xor(self):
        c, *_ = _harness(build_rightmost_cell, 3)
        cen = census(c)
        assert cen.as_row() == {"and": 1, "or": 1, "xor": 1, "FF": 0, "total_gates": 3}

    def test_single_gate_level_each_output(self):
        """The rightmost cell is two gates deep at most — it sits on the
        m-broadcast critical path."""
        c, *_ , sim = _harness(build_rightmost_cell, 3)
        assert sim.max_depth <= 2


class TestFirstBitEquivalence:
    def test_exhaustive(self):
        c, ins, outs, sim = _harness(build_first_bit_cell, 6)
        for combo in itertools.product(BITS, repeat=6):
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            ref = first_bit_cell(*combo)
            assert (sim.peek(outs.t), sim.peek(outs.c0), sim.peek(outs.c1)) == ref

    def test_paper_inventory_1fa_2ha_2and(self):
        c, *_ = _harness(build_first_bit_cell, 6)
        cen = census(c)
        assert cen.get(GateKind.XOR) == 4  # FA(2) + 2 HA(1 each)
        assert cen.get(GateKind.AND) == 6  # FA(2) + 2 HA + 2 product ANDs
        assert cen.get(GateKind.OR) == 1  # FA only


class TestLeftmostEquivalence:
    def test_exhaustive_on_reachable_inputs(self):
        """Gate cell == behavioral cell on every input the T < 2N bound
        permits; on the unreachable overflow inputs the XOR is lossy by
        design (checked separately)."""
        c, ins, outs, sim = _harness(build_leftmost_cell, 5)
        for combo in itertools.product(BITS, repeat=5):
            t_in, x, yl, c0i, c1i = combo
            total = t_in + x * yl + 2 * c1i + c0i
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            got = (sim.peek(outs.t), sim.peek(outs.t_next))
            if total < 4:
                assert got == leftmost_cell(*combo)
            else:
                ref = leftmost_cell(*combo, check=False)
                assert got == ref, "lossy behaviour must at least be deterministic"

    def test_paper_inventory_1fa_1and_1xor(self):
        c, *_ = _harness(build_leftmost_cell, 5)
        cen = census(c)
        assert cen.get(GateKind.XOR) == 3  # FA(2) + top XOR
        assert cen.get(GateKind.AND) == 3  # FA(2) + product AND
        assert cen.get(GateKind.OR) == 1


class TestCorrectedCells:
    def test_no_modulus_cell_is_regular_with_n_zero(self):
        c, ins, outs, sim = _harness(build_no_modulus_cell, 5)
        for combo in itertools.product(BITS, repeat=5):
            t_in, x, yl, c0i, c1i = combo
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            ref = regular_cell(t_in, x, yl, 0, 0, c0i, c1i)
            assert (sim.peek(outs.t), sim.peek(outs.c0), sim.peek(outs.c1)) == ref

    def test_top_cell_exact_on_bounded_sums(self):
        c, ins, outs, sim = _harness(build_top_cell, 3)
        for combo in itertools.product(BITS, repeat=3):
            t_in, c0i, c1i = combo
            total = t_in + c0i + 2 * c1i
            for w, v in zip(ins, combo):
                sim.poke(w, v)
            sim.settle()
            if total < 4:  # always true: max = 1 + 1 + 2 = 4 only if all 1
                got = (sim.peek(outs.t), sim.peek(outs.t_next))
                assert got == (total & 1, (total >> 1) & 1)

    def test_top_cell_cost(self):
        """1 HA + 1 XOR: the corrected architecture's whole extra logic."""
        c, *_ = _harness(build_top_cell, 3)
        cen = census(c)
        assert cen.total_gates == 3
