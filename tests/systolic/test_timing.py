"""The paper's closed-form cycle formulas (Sections 4.4-4.5, Eq. 10)."""

import pytest

from repro.errors import ParameterError
from repro.systolic.timing import (
    average_exponentiation_cycles,
    exponentiation_cycle_bounds,
    exponentiation_cycles_measured_model,
    exponentiation_cycles_paper,
    mmm_cycles,
    mmm_cycles_corrected,
    postprocessing_cycles,
    precomputation_cycles,
)


class TestMMMCycles:
    @pytest.mark.parametrize(
        "l,expect", [(32, 100), (64, 196), (128, 388), (1024, 3076)]
    )
    def test_paper_values(self, l, expect):
        """3l+4 — cross-checked against Table 2: T_MMM / Tp."""
        assert mmm_cycles(l) == expect

    def test_corrected_is_one_more(self):
        for l in (2, 32, 1024):
            assert mmm_cycles_corrected(l) == mmm_cycles(l) + 1

    def test_table2_consistency(self):
        """Table 2's T_MMM column equals (3l+4) x Tp within rounding."""
        from repro.fpga.calibration import PAPER_TABLE2

        for l, row in PAPER_TABLE2.items():
            assert row.t_mmm_us == pytest.approx(
                mmm_cycles(l) * row.tp_ns / 1000.0, rel=1e-3
            )


class TestPrePost:
    def test_pre_5l_plus_10(self):
        assert precomputation_cycles(1024) == 5130
        assert precomputation_cycles(32) == 170

    def test_pre_formula_shape(self):
        """2(2(l+2)+1) + l, as printed."""
        for l in (2, 7, 100):
            assert precomputation_cycles(l) == 2 * (2 * (l + 2) + 1) + l

    def test_post_l_plus_2(self):
        assert postprocessing_cycles(1024) == 1026


class TestEq10:
    @pytest.mark.parametrize("l", [2, 32, 128, 1024])
    def test_bounds_formulas(self, l):
        lo, hi = exponentiation_cycle_bounds(l)
        assert lo == 3 * l * l + 10 * l + 12
        assert hi == 6 * l * l + 14 * l + 12

    def test_bounds_are_attained_by_paper_accounting(self):
        """Single-one exponent hits the lower bound; all-ones the upper."""
        l = 64
        lo, hi = exponentiation_cycle_bounds(l)
        single = exponentiation_cycles_paper(l, 1 << l)  # l+1 bits, weight 1
        allones = exponentiation_cycles_paper(l, (1 << (l + 1)) - 1)
        assert single.total == lo
        assert allones.total == hi

    def test_average_is_midpoint(self):
        l = 1024
        lo, hi = exponentiation_cycle_bounds(l)
        assert average_exponentiation_cycles(l) == (lo + hi) / 2

    def test_table1_consistency(self):
        """Table 1's avg T_mod-exp equals the average formula x Tp within
        1% (the paper's own rounding/bookkeeping)."""
        from repro.fpga.calibration import PAPER_TABLE1

        for l, row in PAPER_TABLE1.items():
            model_ms = average_exponentiation_cycles(l) * row.tp_ns / 1e6
            assert model_ms == pytest.approx(row.avg_exp_ms, rel=0.03)


class TestConcreteExponent:
    def test_breakdown_components(self):
        b = exponentiation_cycles_paper(128, 0b1011)
        assert b.squares == 3 and b.multiplies == 2
        assert b.square_cycles == 3 * mmm_cycles(128)
        assert b.total == b.pre + b.square_cycles + b.multiply_cycles + b.post

    def test_measured_model_uses_full_mults_for_pre_post(self):
        b = exponentiation_cycles_measured_model(128, 0b1011)
        assert b.pre == mmm_cycles_corrected(128)
        assert b.post == mmm_cycles_corrected(128)

    def test_measured_model_paper_mode(self):
        b = exponentiation_cycles_measured_model(128, 3, mode="paper")
        assert b.pre == mmm_cycles(128)

    def test_validation(self):
        with pytest.raises(ParameterError):
            mmm_cycles(0)
        with pytest.raises(ParameterError):
            exponentiation_cycles_paper(8, 0)
