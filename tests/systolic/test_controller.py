"""Tests for the Fig. 4 ASM controller."""

import pytest

from repro.errors import ProtocolError
from repro.systolic.controller import MMMController, State


class TestStateSequence:
    def test_idle_until_start(self):
        c = MMMController(4)
        for _ in range(3):
            sig = c.tick()
            assert sig.state is State.IDLE
            assert not sig.done

    def test_full_sequence_small_l(self):
        """IDLE -> (MUL1 MUL2)* -> OUT -> IDLE, with the Fig. 4 strobes."""
        l = 4
        c = MMMController(l, datapath_cycles=3 * l + 3)
        c.start()
        load = c.tick()
        assert load.state is State.IDLE and load.load_registers
        states = []
        for _ in range(3 * l + 3):
            sig = c.tick()
            states.append(sig.state)
            assert sig.clock_array
            assert sig.shift_x == (sig.state is State.MUL2)
            assert sig.latch_m_pipe == (sig.state is State.MUL1)
        assert states[0] is State.MUL1
        for a, b in zip(states, states[1:]):
            assert {a, b} == {State.MUL1, State.MUL2}, "strict alternation"
        out = c.tick()
        assert out.state is State.OUT and out.done
        assert c.tick().state is State.IDLE

    def test_counter_counts_mul_cycles(self):
        c = MMMController(4, datapath_cycles=15)
        c.start()
        c.tick()
        for expect in range(15):
            assert c.counter == expect
            c.tick()
        assert c.state is State.OUT


class TestProtocol:
    def test_start_outside_idle_rejected(self):
        c = MMMController(4)
        c.start()
        c.tick()  # load
        with pytest.raises(ProtocolError):
            c.start()

    def test_state_log_records_everything(self):
        c = MMMController(2, datapath_cycles=9)
        c.start()
        for _ in range(11):
            c.tick()
        log = c.state_log
        assert log[0] is State.IDLE
        assert log.count(State.OUT) == 1
        assert log.count(State.MUL1) + log.count(State.MUL2) == 9


class TestCountEnd:
    def test_comparator_value(self):
        c = MMMController(8)  # default: paper datapath 3l+3
        assert c.count_end_value == 3 * 8 + 2

    def test_count_end_property(self):
        c = MMMController(2, datapath_cycles=3)
        c.start()
        c.tick()
        assert not c.count_end
        c.tick()
        c.tick()
        assert c.count_end  # counter == 2 == datapath-1
