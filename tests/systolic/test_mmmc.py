"""Tests for the behavioral MMMC (Fig. 3): controller + datapath."""

import random

import pytest

from repro.errors import ProtocolError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.controller import State
from repro.systolic.mmmc import MMMC


class TestMultiplication:
    def test_result_and_latency_corrected(self):
        ctx = MontgomeryContext(197)
        mmmc = MMMC(ctx.l)
        run = mmmc.multiply(300, 150, 197)
        assert run.result == montgomery_no_subtraction(ctx, 300, 150)
        assert run.cycles == 3 * ctx.l + 5

    def test_result_and_latency_paper(self):
        # N = 139: 3N < 2^(l+1) so paper mode is safe here.
        ctx = MontgomeryContext(139)
        mmmc = MMMC(ctx.l, mode="paper")
        run = mmmc.multiply(100, 200, 139)
        assert run.result == montgomery_no_subtraction(ctx, 100, 200)
        assert run.cycles == 3 * ctx.l + 4

    def test_state_sequence_shape(self):
        ctx = MontgomeryContext(11)
        run = MMMC(ctx.l).multiply(3, 5, 11)
        seq = run.state_sequence
        assert seq[0] is State.IDLE  # the load cycle
        assert seq[-1] is State.OUT
        muls = [s for s in seq if s in (State.MUL1, State.MUL2)]
        assert len(muls) == 3 * ctx.l + 4  # corrected datapath

    def test_many_backtoback_multiplications(self):
        rng = random.Random(17)
        n = 211
        ctx = MontgomeryContext(n)
        mmmc = MMMC(ctx.l)
        for _ in range(8):
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            run = mmmc.multiply(x, y, n)
            assert run.result == montgomery_no_subtraction(ctx, x, y)
        assert mmmc.multiplications == 8
        assert mmmc.total_cycles == 8 * (3 * ctx.l + 5)

    def test_different_moduli_same_circuit(self):
        mmmc = MMMC(8)
        for n in (131, 197, 255):
            ctx = MontgomeryContext(n)
            run = mmmc.multiply(n + 3, 2 * n - 1, n)
            assert run.result == montgomery_no_subtraction(ctx, n + 3, 2 * n - 1)


class TestProtocol:
    def test_start_while_busy_rejected(self):
        mmmc = MMMC(4)
        mmmc.start(1, 1, 11)
        mmmc.step()
        mmmc.step()
        with pytest.raises(ProtocolError):
            mmmc.start(2, 2, 11)

    def test_stepwise_done_timing(self):
        """DONE rises exactly at the OUT cycle, not before."""
        l = 4
        mmmc = MMMC(l)
        mmmc.start(3, 5, 11)
        steps_until_done = 0
        while not mmmc.done:
            mmmc.step()
            steps_until_done += 1
            assert steps_until_done < 100
        # load + datapath(3l+4) + OUT = 3l+6 step() calls.
        assert steps_until_done == 3 * l + 6
        # but the charged cycles exclude the IDLE/load cycle:
        assert mmmc._cycles_this_run == 3 * l + 5

    def test_run_to_done_guard(self):
        mmmc = MMMC(4)
        mmmc.start(1, 1, 11)
        with pytest.raises(ProtocolError):
            mmmc.run_to_done(max_cycles=3)
