"""Tests for the GF(2^m) (dual-field) arrays."""

import random

import pytest

from repro.errors import ParameterError
from repro.montgomery.gf2 import AES_POLY, NIST_B163_POLY, GF2MontgomeryContext
from repro.systolic.gf2_array import Gf2ArrayBroadcast, Gf2ArraySystolic


POLYS = [0b111, 0b1011, 0b10011, AES_POLY, (1 << 16) | (1 << 5) | (1 << 3) | 2 | 1]


class TestBroadcastArray:
    @pytest.mark.parametrize("poly", POLYS)
    def test_matches_golden(self, poly):
        ctx = GF2MontgomeryContext(poly)
        arr = Gf2ArrayBroadcast(ctx)
        rng = random.Random(poly)
        for _ in range(20):
            a, b = rng.getrandbits(ctx.m), rng.getrandbits(ctx.m)
            assert arr.multiply(a, b).value == ctx.multiply(a, b)

    def test_latency_m_plus_one(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        res = Gf2ArrayBroadcast(ctx).multiply(3, 5)
        assert res.total_cycles == ctx.m + 1

    def test_broadcast_clock_grows_with_m(self):
        small = Gf2ArrayBroadcast(GF2MontgomeryContext(AES_POLY))
        large = Gf2ArrayBroadcast(GF2MontgomeryContext(NIST_B163_POLY))
        assert large.clock_period_ns() > small.clock_period_ns()


class TestSystolicArray:
    @pytest.mark.parametrize("poly", POLYS)
    def test_matches_golden(self, poly):
        ctx = GF2MontgomeryContext(poly)
        arr = Gf2ArraySystolic(ctx)
        rng = random.Random(poly + 1)
        for _ in range(20):
            a, b = rng.getrandbits(ctx.m), rng.getrandbits(ctx.m)
            assert arr.multiply(a, b).value == ctx.multiply(a, b)

    def test_latency_3m_minus_1(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        res = Gf2ArraySystolic(ctx).multiply(3, 5)
        assert res.datapath_cycles == 3 * ctx.m - 1
        assert res.total_cycles == 3 * ctx.m

    def test_no_extra_bound_iterations(self):
        """GF(2^m) needs exactly m rows — no +2 window margin, because
        XOR accumulation has no magnitude to overflow."""
        ctx = GF2MontgomeryContext(NIST_B163_POLY)
        arr = Gf2ArraySystolic(ctx)
        rng = random.Random(9)
        for _ in range(5):
            a, b = rng.getrandbits(163), rng.getrandbits(163)
            res = arr.multiply(a, b)
            assert res.value == ctx.multiply(a, b)
            assert res.value.bit_length() <= 163

    def test_reuse_across_operands(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        arr = Gf2ArraySystolic(ctx)
        rng = random.Random(10)
        for _ in range(10):
            a, b = rng.getrandbits(8), rng.getrandbits(8)
            assert arr.multiply(a, b).value == ctx.multiply(a, b)

    def test_minimum_degree(self):
        with pytest.raises(ParameterError):
            Gf2ArraySystolic(GF2MontgomeryContext(0b10))  # m = 1

    def test_cell_cost_much_smaller_than_gfp(self):
        cost = Gf2ArraySystolic.cell_gate_count()
        assert cost == {"and": 2, "xor": 2, "or": 0}


class TestArchitectureComparison:
    def test_broadcast_fewer_cycles_systolic_better_clock(self):
        """The dual-field architecture trade at B-163 size."""
        ctx = GF2MontgomeryContext(NIST_B163_POLY)
        bc = Gf2ArrayBroadcast(ctx)
        sy = Gf2ArraySystolic(ctx)
        r_bc = bc.multiply(1, 1)
        r_sy = sy.multiply(1, 1)
        assert r_bc.total_cycles < r_sy.total_cycles
        # wall-clock: cycles x clock; the systolic clock is the flat
        # cell-local one (use the GF(p) base as the reference).
        base = 9.3
        t_bc = r_bc.total_cycles * bc.clock_period_ns(base)
        t_sy = r_sy.total_cycles * base
        # Both in the same order of magnitude; broadcast wins at m=163
        # under this fanout model.
        assert 0.1 < t_bc / t_sy < 1.5
