"""Exhaustive tests of the behavioral cell equations (Eqs. 4-9)."""

import itertools

import pytest

from repro.errors import ParameterError, SimulationError
from repro.systolic.cells import (
    first_bit_cell,
    leftmost_cell,
    regular_cell,
    rightmost_cell,
)


BITS = (0, 1)


class TestRegularCell:
    def test_eq4_exhaustive(self):
        """Eq. (4): 4c1 + 2c0 + t = t_in + x·y + m·n + 2·c1_in + c0_in."""
        for t_in, x, y, m, n, c0i, c1i in itertools.product(BITS, repeat=7):
            out = regular_cell(t_in, x, y, m, n, c0i, c1i)
            total = t_in + x * y + m * n + 2 * c1i + c0i
            assert 4 * out.c1 + 2 * out.c0 + out.t == total

    def test_max_sum_is_six(self):
        out = regular_cell(1, 1, 1, 1, 1, 1, 1)
        assert (out.t, out.c0, out.c1) == (0, 1, 1)  # 6 = 0b110

    def test_bit_validation(self):
        with pytest.raises(ParameterError):
            regular_cell(2, 0, 0, 0, 0, 0, 0)


class TestRightmostCell:
    def test_eq5_m_generation(self):
        """m = t_in XOR x·y0 (Eq. 5) — the quotient digit, N' = 1."""
        for t_in, x, y0 in itertools.product(BITS, repeat=3):
            out = rightmost_cell(t_in, x, y0)
            assert out.m == t_in ^ (x & y0)

    def test_eq7_carry(self):
        """c0 = t_in OR x·y0 (Eq. 7)."""
        for t_in, x, y0 in itertools.product(BITS, repeat=3):
            out = rightmost_cell(t_in, x, y0)
            assert out.c0 == (t_in | (x & y0))

    def test_eq6_sum_bit_always_zero(self):
        """2c0 + t = t_in + x·y0 + m with t = 0 — m is chosen to cancel."""
        for t_in, x, y0 in itertools.product(BITS, repeat=3):
            out = rightmost_cell(t_in, x, y0)
            assert 2 * out.c0 == t_in + (x & y0) + out.m


class TestFirstBitCell:
    def test_eq8_exhaustive(self):
        for t_in, x, y1, m, n1, c0i in itertools.product(BITS, repeat=6):
            out = first_bit_cell(t_in, x, y1, m, n1, c0i)
            total = t_in + x * y1 + m * n1 + c0i
            assert 4 * out.c1 + 2 * out.c0 + out.t == total

    def test_c1_reachable(self):
        assert first_bit_cell(1, 1, 1, 1, 1, 1).c1 == 1


class TestLeftmostCell:
    def test_eq9_on_safe_inputs(self):
        for t_in, x, yl, c0i, c1i in itertools.product(BITS, repeat=5):
            total = t_in + x * yl + 2 * c1i + c0i
            if total >= 4:
                continue
            out = leftmost_cell(t_in, x, yl, c0i, c1i)
            assert 2 * out.t_next + out.t == total

    def test_overflow_detected(self):
        """The reproduction finding: sum = 4 cannot be represented."""
        with pytest.raises(SimulationError, match="overflow"):
            leftmost_cell(1, 1, 1, 1, 1)
        with pytest.raises(SimulationError):
            leftmost_cell(0, 1, 1, 1, 1)  # 1 + 2 + 1 = 4

    def test_overflow_check_can_be_disabled(self):
        """check=False reproduces the printed (lossy) XOR behaviour."""
        out = leftmost_cell(1, 1, 1, 1, 1, check=False)
        # 5 = 0b101 -> XOR silently drops the weight-4 carry: t_next=0, t=1.
        assert (out.t, out.t_next) == (1, 0)
