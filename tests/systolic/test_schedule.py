"""Tests for the 2i+j wavefront schedule."""

import pytest

from repro.errors import ParameterError
from repro.systolic.schedule import WavefrontSchedule


class TestBasics:
    def test_sizes(self):
        s = WavefrontSchedule(8)
        assert s.num_cells == 9
        assert s.num_rows == 10

    def test_l_too_small(self):
        with pytest.raises(ParameterError):
            WavefrontSchedule(1)

    def test_compute_cycle(self):
        s = WavefrontSchedule(8)
        assert s.compute_cycle(0, 0) == 0
        assert s.compute_cycle(3, 5) == 11
        assert s.compute_cycle(9, 8) == 26  # last digit: 2(l+1)+l = 3l+2

    def test_bounds_checked(self):
        s = WavefrontSchedule(4)
        with pytest.raises(ParameterError):
            s.compute_cycle(6, 0)
        with pytest.raises(ParameterError):
            s.compute_cycle(0, 5)


class TestTiming:
    def test_last_compute_cycle_3l_plus_2(self):
        for l in (2, 8, 32, 100):
            assert WavefrontSchedule(l).last_compute_cycle == 3 * l + 2

    def test_datapath_cycles_3l_plus_3(self):
        for l in (2, 8, 32):
            assert WavefrontSchedule(l).datapath_cycles == 3 * l + 3

    def test_result_bit_ready_diagonal(self):
        s = WavefrontSchedule(8)
        # bit b finalized at 2(l+1) + b + 1.
        assert s.result_bit_ready(0) == 19
        assert s.result_bit_ready(8) == 27
        with pytest.raises(ParameterError):
            s.result_bit_ready(9)


class TestActivity:
    def test_parity(self):
        s = WavefrontSchedule(8)
        assert s.active_row(10, 4) == 3
        assert s.active_row(11, 4) is None  # wrong parity

    def test_out_of_window(self):
        s = WavefrontSchedule(8)
        assert s.active_row(0, 2) is None  # row would be negative
        assert s.active_row(100, 0) is None  # row past l+1

    def test_each_digit_computed_exactly_once(self):
        s = WavefrontSchedule(5)
        seen = set()
        for act in s:
            key = (act.row, act.cell)
            assert key not in seen
            seen.add(key)
        assert len(seen) == s.num_rows * s.num_cells

    def test_occupancy_peaks_near_half(self):
        """The two-cycle issue interval caps utilization at ~50%."""
        s = WavefrontSchedule(32)
        peak = max(s.occupancy(c) for c in range(s.datapath_cycles))
        assert 0.45 <= peak <= 0.55

    def test_x_consumption(self):
        s = WavefrontSchedule(4)
        assert s.x_consumption_schedule() == [(0, 0), (2, 1), (4, 2), (6, 3), (8, 4), (10, 5)]
