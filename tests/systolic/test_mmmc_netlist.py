"""The complete gate-level MMMC vs the behavioral MMMC and the golden model."""

import random

import pytest

from repro.hdl.census import census
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.mmmc import MMMC
from repro.systolic.mmmc_netlist import GateLevelMMMC, build_mmmc


def _modulus(rng: random.Random, l: int) -> int:
    return (rng.getrandbits(l - 1) | (1 << (l - 1))) | 1


class TestEquivalence:
    @pytest.mark.parametrize("l", [2, 4, 8])
    def test_gate_mmmc_matches_golden_corrected(self, l):
        rng = random.Random(300 + l)
        g = GateLevelMMMC(l, "corrected")
        for _ in range(6):
            n = _modulus(rng, l)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            run = g.multiply(x, y, n)
            assert run.result == montgomery_no_subtraction(ctx, x, y)
            assert run.cycles == 3 * l + 5

    def test_gate_mmmc_matches_behavioral_paper(self):
        l = 6
        g = GateLevelMMMC(l, "paper")
        b = MMMC(l, mode="paper")
        rng = random.Random(7)
        for _ in range(6):
            n = _modulus(rng, l)
            if 3 * n > 1 << (l + 1):
                continue
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            rg = g.multiply(x, y, n)
            rb = b.multiply(x, y, n)
            assert rg.result == rb.result
            assert rg.cycles == rb.cycles == 3 * l + 4

    def test_reuse_with_changing_operands(self):
        """Back-to-back multiplications through one netlist instance —
        the load strobe must fully re-initialize the array state."""
        g = GateLevelMMMC(8, "corrected")
        rng = random.Random(23)
        for _ in range(5):
            n = _modulus(rng, 8)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            assert g.multiply(x, y, n).result == montgomery_no_subtraction(ctx, x, y)


class TestStructure:
    def test_validates_and_scales(self):
        small = build_mmmc(8).circuit.stats()
        large = build_mmmc(32).circuit.stats()
        assert large["gates"] > small["gates"]
        assert large["dffs"] > small["dffs"]

    def test_interface_ports(self):
        p = build_mmmc(8)
        assert len(p.x_in) == 9 and len(p.y_in) == 9 and len(p.n_in) == 9
        assert len(p.result) == 9
        assert "DONE" in p.circuit.outputs

    def test_register_inventory(self):
        """Fig. 3 inventory: X/Y/N (l+1 each), array state (~4l), result
        (l+1), token, counter, 2 state bits."""
        l = 16
        cen = census(build_mmmc(l, "paper").circuit)
        expected_min = 3 * (l + 1) + 4 * l + (l + 1) + l + 2
        assert cen.flip_flops >= expected_min
        assert cen.flip_flops <= expected_min + 16  # counter + slack

    def test_done_low_while_idle(self):
        g = GateLevelMMMC(4)
        g.sim.settle()
        assert g.sim.peek(g.ports.done) == 0
