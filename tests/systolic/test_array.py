"""The RTL array model vs the golden Algorithm 2 — the core equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, SimulationError
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import ARRAY_MODES, SystolicArrayRTL


def _modulus(bits: int, body: int) -> int:
    top = 1 << (bits - 1)
    return top | ((body % max(top >> 1, 1)) << 1) | 1


mod_xy = st.builds(
    lambda bits, body, fx, fy: (_modulus(bits, body), fx, fy),
    bits=st.integers(2, 24),
    body=st.integers(min_value=0),
    fx=st.integers(min_value=0),
    fy=st.integers(min_value=0),
)


class TestCorrectedMode:
    @given(mod_xy)
    @settings(max_examples=120, deadline=None)
    def test_matches_golden(self, nxy):
        n, fx, fy = nxy
        x, y = fx % (2 * n), fy % (2 * n)
        ctx = MontgomeryContext(n)
        arr = SystolicArrayRTL(n.bit_length(), mode="corrected")
        res = arr.run_multiplication(x, y, n)
        assert res.value == montgomery_no_subtraction(ctx, x, y)

    def test_latency_3l_plus_5(self):
        for l in (2, 5, 16):
            n = (1 << (l - 1)) | 1 if l > 1 else 3
            arr = SystolicArrayRTL(l, mode="corrected")
            res = arr.run_multiplication(1, 1, n)
            assert res.total_cycles == 3 * l + 5
            assert res.datapath_cycles == 3 * l + 4

    def test_worst_case_corner_large_modulus(self):
        """The operand corner that breaks paper mode: N near 2^l."""
        n = (1 << 16) - 1  # all-ones modulus, N/2^l maximal
        ctx = MontgomeryContext(n)
        arr = SystolicArrayRTL(16, mode="corrected")
        res = arr.run_multiplication(2 * n - 1, 2 * n - 1, n)
        assert res.value == montgomery_no_subtraction(ctx, 2 * n - 1, 2 * n - 1)

    def test_reusable_across_operand_sets(self):
        """One array instance, many multiplications, no state leakage."""
        rng = random.Random(5)
        arr = SystolicArrayRTL(12)
        for _ in range(10):
            n = _modulus(12, rng.getrandbits(16))
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
                ctx, x, y
            )


class TestPaperMode:
    def test_correct_when_modulus_small_enough(self):
        """N <= (2/3)·2^l keeps intermediate sums inside the printed array."""
        rng = random.Random(9)
        checked = 0
        for _ in range(80):
            l = rng.choice([4, 8, 12, 16])
            n = _modulus(l, rng.getrandbits(24))
            if 3 * n > 1 << (l + 1):
                continue
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            arr = SystolicArrayRTL(l, mode="paper")
            assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
                ctx, x, y
            )
            checked += 1
        assert checked > 10

    def test_latency_3l_plus_4(self):
        l = 8
        arr = SystolicArrayRTL(l, mode="paper")
        res = arr.run_multiplication(1, 1, 0x81)
        assert res.total_cycles == 3 * l + 4

    def test_overflow_detected_on_known_case(self):
        """The reproduction finding: the printed array loses a carry."""
        l, n, x, y = 31, 2094037023, 2652540660, 2813059522
        arr = SystolicArrayRTL(l, mode="paper")
        with pytest.raises(SimulationError, match="lost a carry"):
            arr.run_multiplication(x, y, n)

    def test_overflow_or_correct_never_silent(self):
        """Paper mode must never return a wrong value silently."""
        rng = random.Random(31)
        mismatches = overflows = 0
        for _ in range(120):
            l = rng.choice([4, 6, 8, 10])
            n = _modulus(l, rng.getrandbits(16))
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            arr = SystolicArrayRTL(l, mode="paper")
            try:
                got = arr.run_multiplication(x, y, n).value
            except SimulationError:
                overflows += 1
                continue
            if got != montgomery_no_subtraction(ctx, x, y):
                mismatches += 1
        assert mismatches == 0
        assert overflows > 0, "the sweep should hit some overflow cases"


class TestValidation:
    def test_l_minimum(self):
        with pytest.raises(ParameterError):
            SystolicArrayRTL(1)

    def test_bad_mode(self):
        with pytest.raises(ParameterError):
            SystolicArrayRTL(8, mode="bogus")
        assert set(ARRAY_MODES) == {"corrected", "paper"}

    def test_operand_window_enforced(self):
        arr = SystolicArrayRTL(8)
        with pytest.raises(ParameterError):
            arr.run_multiplication(2 * 197, 1, 197)
        with pytest.raises(ParameterError):
            arr.run_multiplication(1, 1, 196)  # even modulus
        with pytest.raises(ParameterError):
            arr.run_multiplication(1, 1, 1 << 9)  # too wide

    def test_probe_called_every_cycle(self):
        calls = []
        arr = SystolicArrayRTL(4, probe=lambda a: calls.append(a.cycle))
        arr.run_multiplication(3, 5, 11)
        assert len(calls) == arr.datapath_cycles


class TestMicroarchitecture:
    def test_phase_alternates(self):
        arr = SystolicArrayRTL(4)
        arr.load(1, 1, 11)
        phases = []
        for _ in range(4):
            phases.append(arr.phase)
            arr.step()
        assert phases == ["MUL1", "MUL2", "MUL1", "MUL2"]

    def test_x_register_drains_to_zero(self):
        arr = SystolicArrayRTL(4)
        arr.load(0b10110 % 22, 3, 11)
        for _ in range(arr.datapath_cycles):
            arr.step()
        assert arr.x_shift == 0, "MSB zero-fill guarantees x_{l+1} = 0"

    def test_result_register_stable_after_capture(self):
        """Extra clocking beyond the datapath must not corrupt RESULT."""
        arr = SystolicArrayRTL(6)
        n = 43
        ctx = MontgomeryContext(n)
        res = arr.run_multiplication(17, 29, n)
        for _ in range(20):
            arr.step()
        assert arr.result_value() == res.value == montgomery_no_subtraction(ctx, 17, 29)
