"""Tests for the modular exponentiator (Section 4.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.montgomery.params import MontgomeryContext
from repro.systolic.exponentiator import ModularExponentiator
from repro.systolic.timing import (
    exponentiation_cycle_bounds,
    exponentiation_cycles_measured_model,
)


class TestCorrectness:
    def test_rtl_small(self):
        ctx = MontgomeryContext(197)
        exp = ModularExponentiator(ctx, engine="rtl")
        run = exp.exponentiate(55, 123)
        assert run.result == pow(55, 123, 197)

    @given(st.integers(0, 1 << 48), st.integers(1, 1 << 16))
    @settings(max_examples=60, deadline=None)
    def test_golden_engine_matches_pow(self, m_raw, e):
        n = (1 << 47) | 0x2B  # fixed 48-bit odd modulus
        ctx = MontgomeryContext(n)
        exp = ModularExponentiator(ctx, engine="golden")
        m = m_raw % n
        assert exp.exponentiate(m, e).result == pow(m, e, n)

    def test_rtl_and_golden_agree_in_cycles_and_value(self):
        ctx = MontgomeryContext(241)
        r1 = ModularExponentiator(ctx, engine="rtl").exponentiate(99, 0b101101)
        r2 = ModularExponentiator(ctx, engine="golden").exponentiate(99, 0b101101)
        assert r1.result == r2.result
        assert r1.cycles == r2.cycles, "golden accounting must equal measured RTL"

    def test_paper_mode_engine(self):
        # Small modulus where the printed array is safe.
        ctx = MontgomeryContext(139)
        exp = ModularExponentiator(ctx, engine="rtl", mode="paper")
        run = exp.exponentiate(100, 19)
        assert run.result == pow(100, 19, 139)


class TestCycleAccounting:
    def test_matches_closed_form(self):
        ctx = MontgomeryContext(197)
        e = 0xB5
        run = ModularExponentiator(ctx, engine="golden").exponentiate(12, e)
        assert run.cycles == exponentiation_cycles_measured_model(ctx.l, e).total

    def test_within_eq10_bounds_modulo_model_delta(self):
        """Our measured cycles fall inside Eq. (10) once the known
        accounting deltas are added: the paper's pre/post differ from a
        full multiplication, and the corrected array costs +1/multiply."""
        ctx = MontgomeryContext((1 << 31) | 11)
        l = ctx.l
        e = (1 << l) - 1  # worst case: all ones, l bits
        run = ModularExponentiator(ctx, engine="golden").exponentiate(3, e)
        lo, hi = exponentiation_cycle_bounds(l)
        ops = 2 * l + 1  # pre + (l-1 squares + l-1 mults... ) bounded above
        assert run.cycles <= hi + ops  # +1 cycle per op vs the paper count
        assert run.cycles >= lo

    def test_operation_log(self):
        ctx = MontgomeryContext(197)
        run = ModularExponentiator(ctx, engine="golden").exponentiate(5, 0b1001)
        kinds = [k for k, _ in run.operations]
        assert kinds == ["pre", "square", "square", "square", "multiply", "post"]
        assert run.num_multiplications == 6

    def test_cumulative_cycles(self):
        ctx = MontgomeryContext(197)
        exp = ModularExponentiator(ctx, engine="golden")
        c1 = exp.exponentiate(5, 3).cycles
        c2 = exp.exponentiate(6, 7).cycles
        assert exp.cycles == c1 + c2


class TestWindowedThroughEngine:
    def test_matches_binary_result(self):
        ctx = MontgomeryContext(197)
        exp = ModularExponentiator(ctx, engine="rtl")
        e = 0xBEEF
        assert (
            exp.exponentiate_windowed(55, e, window=3).result
            == exp.exponentiate(55, e).result
            == pow(55, e, 197)
        )

    def test_saves_cycles_on_dense_exponents(self):
        ctx = MontgomeryContext(241)
        exp = ModularExponentiator(ctx, engine="golden")
        e = (1 << 48) - 1
        win = exp.exponentiate_windowed(5, e, window=4)
        binr = exp.exponentiate(5, e)
        assert win.result == binr.result
        assert win.cycles < binr.cycles

    def test_methods(self):
        ctx = MontgomeryContext(197)
        exp = ModularExponentiator(ctx, engine="golden")
        for method in ("binary", "mary", "sliding"):
            assert exp.exponentiate_windowed(7, 1234, method=method).result == pow(
                7, 1234, 197
            )
        with pytest.raises(ParameterError):
            exp.exponentiate_windowed(7, 3, method="psychic")

    def test_cycles_accounted_per_pass(self):
        from repro.systolic.timing import mmm_cycles_corrected

        ctx = MontgomeryContext(197)
        exp = ModularExponentiator(ctx, engine="golden")
        run = exp.exponentiate_windowed(7, 0xFF, window=2)
        assert run.cycles == run.num_multiplications * mmm_cycles_corrected(ctx.l)


class TestValidation:
    def test_bad_engine(self):
        with pytest.raises(ParameterError):
            ModularExponentiator(MontgomeryContext(11), engine="fpga")

    def test_bad_message(self):
        exp = ModularExponentiator(MontgomeryContext(11), engine="golden")
        with pytest.raises(ParameterError):
            exp.exponentiate(11, 3)

    def test_bad_exponent(self):
        exp = ModularExponentiator(MontgomeryContext(11), engine="golden")
        with pytest.raises(ParameterError):
            exp.exponentiate(3, 0)
