"""Tests for the gate-level GF(2^m) array."""

import random

import pytest

from repro.errors import ParameterError
from repro.hdl.census import census
from repro.montgomery.gf2 import AES_POLY, GF2MontgomeryContext
from repro.systolic.gf2_array import Gf2ArraySystolic
from repro.systolic.gf2_array_netlist import GateLevelGf2Array, build_gf2_array


class TestEquivalence:
    @pytest.mark.parametrize("poly", [0b111, 0b1011, 0b10011, AES_POLY])
    def test_gate_matches_golden(self, poly):
        ctx = GF2MontgomeryContext(poly)
        g = GateLevelGf2Array(ctx)
        rng = random.Random(poly)
        for _ in range(15):
            a, b = rng.getrandbits(ctx.m), rng.getrandbits(ctx.m)
            assert g.multiply(a, b).value == ctx.multiply(a, b)

    def test_gate_matches_rtl_latency(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        gate = GateLevelGf2Array(ctx)
        rtl = Gf2ArraySystolic(ctx)
        assert gate.datapath_cycles == rtl.datapath_cycles
        r1 = gate.multiply(0x57, 0x83)
        r2 = rtl.multiply(0x57, 0x83)
        assert r1.value == r2.value
        assert r1.total_cycles == r2.total_cycles

    def test_element_validation(self):
        ctx = GF2MontgomeryContext(AES_POLY)
        with pytest.raises(ParameterError):
            GateLevelGf2Array(ctx).multiply(0x100, 1)

    def test_minimum_degree(self):
        with pytest.raises(ParameterError):
            build_gf2_array(1)


class TestDualFieldCensus:
    def test_carry_free_array_much_smaller(self):
        """At equal width the GF(2^m) array is ~1/3 the logic of GF(p)."""
        from repro.systolic.array_netlist import build_array

        m = 32
        gfp = census(build_array(m, "paper").circuit)
        gf2 = census(build_gf2_array(m).circuit)
        assert gf2.total_gates * 2 < gfp.total_gates
        assert gf2.by_kind.get("or", 0) == 0, "no carries => no OR gates"
        assert gf2.flip_flops < gfp.flip_flops

    def test_cell_inventory_2and_2xor(self):
        """Interior cells: exactly 2 AND + 2 XOR each (plus the pipes)."""
        m = 16
        cen = census(build_gf2_array(m).circuit)
        # cells 1..m-1: 2 AND + 2 XOR; cell 0: 1 AND + 1 XOR; cell m: 1 AND.
        assert cen.by_kind.get("and", 0) == 2 * (m - 1) + 1 + 1
        assert cen.by_kind.get("xor", 0) == 2 * (m - 1) + 1

    def test_ff_inventory_no_carry_registers(self):
        """T(m) + pipes(2·⌈m/2⌉-ish) + phase ≈ 2m + 1 — half of GF(p)'s 4l."""
        m = 16
        cen = census(build_gf2_array(m).circuit)
        assert abs(cen.flip_flops - (2 * m + 1)) <= 2
