"""Gate-level array ≡ RTL array ≡ golden algorithm (small l)."""

import random

import pytest

from repro.errors import ParameterError
from repro.hdl.census import census
from repro.montgomery.algorithms import montgomery_no_subtraction
from repro.montgomery.params import MontgomeryContext
from repro.systolic.array import SystolicArrayRTL
from repro.systolic.array_netlist import GateLevelArray, build_array


def _modulus(rng: random.Random, l: int) -> int:
    return (rng.getrandbits(l - 1) | (1 << (l - 1))) | 1


class TestGateVsGolden:
    @pytest.mark.parametrize("l", [2, 3, 5, 8])
    def test_corrected_random_operands(self, l):
        rng = random.Random(100 + l)
        arr = GateLevelArray(l, "corrected")
        for _ in range(8):
            n = _modulus(rng, l)
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
                ctx, x, y
            )

    @pytest.mark.parametrize("l", [3, 6, 9])
    def test_paper_mode_on_safe_moduli(self, l):
        rng = random.Random(200 + l)
        arr = GateLevelArray(l, "paper")
        checked = 0
        for _ in range(30):
            n = _modulus(rng, l)
            if 3 * n > 1 << (l + 1):
                continue
            x, y = rng.randrange(2 * n), rng.randrange(2 * n)
            ctx = MontgomeryContext(n)
            assert arr.run_multiplication(x, y, n).value == montgomery_no_subtraction(
                ctx, x, y
            )
            checked += 1
        assert checked >= 3


class TestGateVsRTL:
    @pytest.mark.parametrize("mode", ["corrected", "paper"])
    def test_cycle_by_cycle_t_registers(self, mode):
        """The two models are the same machine: identical T registers at
        every clock, not just identical results."""
        l, n, x, y = 6, 37, 51, 40  # 3n < 2^(l+1): safe for paper mode too
        rtl = SystolicArrayRTL(l, mode=mode)
        gate = GateLevelArray(l, mode)
        rtl.load(x, y, n)
        sim, ports = gate.sim, gate.ports
        sim.reset()
        sim.poke(ports.y, y)
        sim.poke(ports.n, n)
        for tau in range(rtl.datapath_cycles):
            sim.poke(ports.x0, (x >> (tau // 2)) & 1)
            sim.settle()
            sim.clock()
            rtl.step()
            gate_t = sim.peek(ports.core.t_regs)
            rtl_t = sum(int(b) << i for i, b in enumerate(rtl.t_reg[1:]))
            assert gate_t == rtl_t, f"T registers diverge at cycle {tau}"

    def test_latency_match(self):
        for mode in ("corrected", "paper"):
            assert (
                GateLevelArray(5, mode).datapath_cycles
                == SystolicArrayRTL(5, mode=mode).datapath_cycles
            )


class TestStructure:
    def test_netlist_validates(self):
        for mode in ("corrected", "paper"):
            ports = build_array(6, mode)
            ports.circuit.validate()
            assert not ports.circuit.undriven_wires()

    def test_ff_count_near_4l(self):
        """Paper Section 4.3: the array holds 4l flip-flops.  Ours adds
        one phase toggle; the corrected mode ~4 more."""
        l = 16
        paper = build_array(l, "paper").circuit
        ffs = census(paper).flip_flops
        assert abs(ffs - 4 * l) <= 2

    def test_corrected_adds_constant_overhead(self):
        l = 16
        c_paper = census(build_array(l, "paper").circuit)
        c_corr = census(build_array(l, "corrected").circuit)
        assert 0 < c_corr.flip_flops - c_paper.flip_flops <= 4
        assert 0 < c_corr.total_gates - c_paper.total_gates <= 12

    def test_gate_count_linear_in_l(self):
        g16 = census(build_array(16, "paper").circuit).total_gates
        g32 = census(build_array(32, "paper").circuit).total_gates
        g64 = census(build_array(64, "paper").circuit).total_gates
        assert (g64 - g32) == (g32 - g16) * 2 or abs((g64 - g32) - 2 * (g32 - g16)) <= 4

    def test_bad_inputs(self):
        with pytest.raises(ParameterError):
            build_array(1)
        with pytest.raises(ParameterError):
            build_array(8, "nope")
        arr = GateLevelArray(4)
        with pytest.raises(ParameterError):
            arr.run_multiplication(100, 1, 11)
