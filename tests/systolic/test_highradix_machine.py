"""Tests for the cycle-accurate high-radix Montgomery machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.montgomery.params import MontgomeryContext
from repro.systolic.highradix_machine import HighRadixMachine

from tests.conftest import odd_modulus


class TestCorrectness:
    @given(
        odd_modulus(2, 64),
        st.integers(min_value=0),
        st.integers(min_value=0),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    @settings(max_examples=200)
    def test_postcondition_all_radices(self, n, xr, yr, alpha):
        ctx = MontgomeryContext(n, word_bits=alpha)
        x, y = xr % (2 * n), yr % (2 * n)
        run = HighRadixMachine(ctx).multiply(x, y)
        assert 0 <= run.result < 2 * n
        assert run.result % n == (x * y * pow(ctx.R, -1, n)) % n

    def test_alpha_one_matches_radix2_cycles(self):
        """α = 1 degenerates to the paper's iteration count l+2."""
        ctx = MontgomeryContext(197, word_bits=1)
        m = HighRadixMachine(ctx)
        assert m.datapath_cycles == ctx.l + 2
        run = m.multiply(300, 150)
        assert run.cycles == ctx.l + 3

    def test_all_radices_same_residue(self):
        n = 0xC5
        results = set()
        for alpha in (1, 2, 4, 8):
            ctx = MontgomeryContext(n, word_bits=alpha)
            run = HighRadixMachine(ctx).multiply(100, 150)
            # different R per radix: compare after removing it
            results.add((run.result * ctx.R) % n)
        assert len(results) == 1


class TestCycleCounts:
    def test_iteration_formula(self):
        """⌈(l+2)/α⌉, Section 2's count from [1]."""
        for alpha, expect in ((1, 1026), (2, 513), (4, 257), (16, 65)):
            ctx = MontgomeryContext((1 << 1023) | 5, word_bits=alpha)
            assert HighRadixMachine(ctx).datapath_cycles == expect

    def test_measured_equals_formula(self):
        ctx = MontgomeryContext(0xF123456789ABCDEF % (1 << 60) | 1, word_bits=4)
        m = HighRadixMachine(ctx)
        run = m.multiply(5, 7)
        assert run.cycles == m.datapath_cycles + 1

    def test_digit_products_two_per_cycle(self):
        ctx = MontgomeryContext(197, word_bits=4)
        run = HighRadixMachine(ctx).multiply(3, 5)
        assert run.digit_products == 2 * HighRadixMachine(ctx).datapath_cycles

    def test_exponentiation_scaling(self):
        ctx = MontgomeryContext(197, word_bits=4)
        m = HighRadixMachine(ctx)
        e = 0b1011
        ops = 2 + 3 + 2
        assert m.exponentiation_cycles(e) == ops * (m.datapath_cycles + 1)


class TestWindow:
    def test_corner_operands(self):
        for alpha in (2, 4, 8):
            n = (1 << 31) | 11
            ctx = MontgomeryContext(n, word_bits=alpha)
            run = HighRadixMachine(ctx).multiply(2 * n - 1, 2 * n - 1)
            assert run.result < 2 * n
