"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.utils.bits import (
    bit_array_to_int,
    bit_length_words,
    bits_to_int,
    hamming_weight,
    int_to_bit_array,
    int_to_bits,
    iter_bits_lsb_first,
    iter_bits_msb_first,
)


class TestIntToBits:
    def test_basic(self):
        assert int_to_bits(6, 4) == [0, 1, 1, 0]

    def test_zero_width(self):
        assert int_to_bits(0, 0) == []

    def test_full_width(self):
        assert int_to_bits(15, 4) == [1, 1, 1, 1]

    def test_overflow_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bits(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bits(-1, 4)

    def test_negative_width_rejected(self):
        with pytest.raises(ParameterError):
            int_to_bits(0, -1)


class TestBitsToInt:
    def test_basic(self):
        assert bits_to_int([0, 1, 1, 0]) == 6

    def test_empty(self):
        assert bits_to_int([]) == 0

    def test_bad_bit_rejected(self):
        with pytest.raises(ParameterError):
            bits_to_int([0, 2])

    @given(st.integers(min_value=0, max_value=1 << 200), st.integers(0, 30))
    def test_roundtrip(self, value, extra):
        width = value.bit_length() + extra
        assert bits_to_int(int_to_bits(value, width)) == value


class TestBitArrays:
    def test_array_roundtrip(self):
        arr = int_to_bit_array(0b1011, 6)
        assert arr.dtype == np.uint8
        assert list(arr) == [1, 1, 0, 1, 0, 0]
        assert bit_array_to_int(arr) == 0b1011

    @given(st.integers(min_value=0, max_value=1 << 300))
    def test_wide_values_exact(self, value):
        width = max(value.bit_length(), 1)
        assert bit_array_to_int(int_to_bit_array(value, width)) == value


class TestIterators:
    def test_lsb_first(self):
        assert list(iter_bits_lsb_first(6)) == [0, 1, 1]

    def test_msb_first(self):
        assert list(iter_bits_msb_first(6)) == [1, 1, 0]

    def test_zero_yields_nothing(self):
        assert list(iter_bits_lsb_first(0)) == []
        assert list(iter_bits_msb_first(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            list(iter_bits_lsb_first(-1))
        with pytest.raises(ParameterError):
            list(iter_bits_msb_first(-1))

    @given(st.integers(min_value=0, max_value=1 << 128))
    def test_iterators_agree(self, v):
        assert list(iter_bits_msb_first(v)) == list(reversed(list(iter_bits_lsb_first(v))))


class TestHammingWeight:
    @pytest.mark.parametrize("v,w", [(0, 0), (1, 1), (0b1011, 3), ((1 << 64) - 1, 64)])
    def test_known(self, v, w):
        assert hamming_weight(v) == w

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            hamming_weight(-3)


class TestBitLengthWords:
    @pytest.mark.parametrize(
        "bits,word,expect", [(0, 8, 0), (1, 8, 1), (8, 8, 1), (9, 8, 2), (1026, 32, 33)]
    )
    def test_ceiling(self, bits, word, expect):
        assert bit_length_words(bits, word) == expect

    def test_bad_args(self):
        with pytest.raises(ParameterError):
            bit_length_words(8, 0)
        with pytest.raises(ParameterError):
            bit_length_words(-1, 8)
