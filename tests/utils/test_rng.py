"""Unit tests for repro.utils.rng."""

import random

import pytest

from repro.errors import ParameterError
from repro.utils.rng import (
    operand_batch,
    random_odd_modulus,
    random_operand_pair,
    random_residue,
)


class TestRandomOddModulus:
    def test_exact_bit_length_and_oddness(self):
        rng = random.Random(1)
        for bits in range(2, 40):
            n = random_odd_modulus(bits, rng)
            assert n.bit_length() == bits
            assert n % 2 == 1

    def test_one_bit_rejected(self):
        with pytest.raises(ParameterError):
            random_odd_modulus(1, random.Random(0))


class TestRandomResidue:
    def test_window(self):
        rng = random.Random(2)
        for _ in range(200):
            assert 0 <= random_residue(11, rng) < 11
            assert 0 <= random_residue(11, rng, doubled=True) < 22

    def test_doubled_window_actually_used(self):
        rng = random.Random(3)
        assert any(random_residue(11, rng, doubled=True) >= 11 for _ in range(200))


class TestOperandBatch:
    def test_deterministic(self):
        assert operand_batch(16, 5, seed=9) == operand_batch(16, 5, seed=9)

    def test_seed_changes_output(self):
        assert operand_batch(16, 5, seed=1) != operand_batch(16, 5, seed=2)

    def test_shapes(self):
        batch = operand_batch(12, 7, seed=0, doubled=True)
        assert len(batch) == 7
        for n, x, y in batch:
            assert n.bit_length() == 12 and n % 2 == 1
            assert 0 <= x < 2 * n and 0 <= y < 2 * n

    def test_count_positive(self):
        with pytest.raises(ParameterError):
            operand_batch(12, 0)


class TestRandomOperandPair:
    def test_pair_in_window(self):
        rng = random.Random(5)
        n, x, y = random_operand_pair(20, rng, doubled=True)
        assert n.bit_length() == 20
        assert 0 <= x < 2 * n and 0 <= y < 2 * n
