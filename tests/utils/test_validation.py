"""Unit tests for repro.utils.validation."""

import pytest

from repro.errors import ParameterError
from repro.utils.validation import (
    ensure_in_range,
    ensure_int,
    ensure_nonnegative,
    ensure_odd,
    ensure_positive,
)


class TestEnsureInt:
    def test_accepts_int(self):
        assert ensure_int("x", 5) == 5

    def test_rejects_bool(self):
        with pytest.raises(ParameterError, match="x must be an int"):
            ensure_int("x", True)

    @pytest.mark.parametrize("bad", [1.5, "3", None, [1]])
    def test_rejects_non_int(self, bad):
        with pytest.raises(ParameterError):
            ensure_int("x", bad)


class TestEnsureNonnegative:
    def test_accepts_zero(self):
        assert ensure_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError, match=">= 0"):
            ensure_nonnegative("x", -1)


class TestEnsurePositive:
    def test_accepts_one(self):
        assert ensure_positive("x", 1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ParameterError, match="> 0"):
            ensure_positive("x", 0)


class TestEnsureOdd:
    def test_accepts_odd(self):
        assert ensure_odd("n", 7) == 7

    def test_rejects_even(self):
        with pytest.raises(ParameterError, match="odd"):
            ensure_odd("n", 8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            ensure_odd("n", -3)


class TestEnsureInRange:
    def test_half_open(self):
        assert ensure_in_range("x", 0, 0, 4) == 0
        assert ensure_in_range("x", 3, 0, 4) == 3
        with pytest.raises(ParameterError):
            ensure_in_range("x", 4, 0, 4)

    def test_message_names_argument(self):
        with pytest.raises(ParameterError, match="operand"):
            ensure_in_range("operand", 9, 0, 4)
